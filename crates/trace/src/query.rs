//! Event search — §4.3's "fast location of events of interest".
//!
//! A small composable filter over a [`TraceStore`]: combine constraints on
//! kind, rank, function, tag, endpoints, label and time window, then
//! iterate matches in canonical order. The debugger's `find` command and
//! the visualizers' click-to-locate both sit on this.

use crate::event::{EventKind, TraceRecord};
use crate::history::{EventId, TraceStore};
use crate::ids::{Rank, SiteId, Tag};
use crate::source::{Select, SourceError, TraceSource};
use std::collections::HashSet;

/// A conjunctive event filter. All set constraints must hold.
#[derive(Clone, Debug, Default)]
pub struct EventQuery {
    kind: Option<EventKind>,
    rank: Option<Rank>,
    func: Option<String>,
    tag: Option<Tag>,
    msg_src: Option<Rank>,
    msg_dst: Option<Rank>,
    label: Option<String>,
    t_min: Option<u64>,
    t_max: Option<u64>,
    marker_min: Option<u64>,
}

impl EventQuery {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn kind(mut self, k: EventKind) -> Self {
        self.kind = Some(k);
        self
    }

    pub fn rank(mut self, r: impl Into<Rank>) -> Self {
        self.rank = Some(r.into());
        self
    }

    /// Events whose site belongs to this function.
    pub fn in_function(mut self, func: impl Into<String>) -> Self {
        self.func = Some(func.into());
        self
    }

    pub fn tag(mut self, t: Tag) -> Self {
        self.tag = Some(t);
        self
    }

    pub fn msg_from(mut self, src: impl Into<Rank>) -> Self {
        self.msg_src = Some(src.into());
        self
    }

    pub fn msg_to(mut self, dst: impl Into<Rank>) -> Self {
        self.msg_dst = Some(dst.into());
        self
    }

    pub fn label(mut self, l: impl Into<String>) -> Self {
        self.label = Some(l.into());
        self
    }

    /// Restrict to events completing in `[lo, hi]`.
    pub fn in_window(mut self, lo: u64, hi: u64) -> Self {
        self.t_min = Some(lo);
        self.t_max = Some(hi);
        self
    }

    /// Only events at or after this marker (search "from here forward").
    pub fn after_marker(mut self, m: u64) -> Self {
        self.marker_min = Some(m);
        self
    }

    /// Pre-resolve the function constraint to site ids — one table scan
    /// per `find`, not one string materialization per event. `None` means
    /// no function constraint; an empty set means the function never
    /// executed (nothing can match).
    fn resolve_func(&self, store: &TraceStore) -> Option<HashSet<SiteId>> {
        self.func
            .as_deref()
            .map(|f| store.sites().find_function(f).into_iter().collect())
    }

    fn matches(
        &self,
        store: &TraceStore,
        id: EventId,
        func_sites: Option<&HashSet<SiteId>>,
    ) -> bool {
        self.matches_record(store.record(id), func_sites)
    }

    fn matches_record(&self, rec: &TraceRecord, func_sites: Option<&HashSet<SiteId>>) -> bool {
        if let Some(k) = self.kind {
            if rec.kind != k {
                return false;
            }
        }
        if let Some(r) = self.rank {
            if rec.rank != r {
                return false;
            }
        }
        if let Some(m) = self.marker_min {
            if rec.marker < m {
                return false;
            }
        }
        if let Some(lo) = self.t_min {
            if rec.t_end < lo {
                return false;
            }
        }
        if let Some(hi) = self.t_max {
            if rec.t_start > hi {
                return false;
            }
        }
        if let Some(sites) = func_sites {
            if !sites.contains(&rec.site) {
                return false;
            }
        }
        if self.tag.is_some() || self.msg_src.is_some() || self.msg_dst.is_some() {
            let Some(msg) = &rec.msg else { return false };
            if let Some(t) = self.tag {
                if msg.tag != t {
                    return false;
                }
            }
            if let Some(s) = self.msg_src {
                if msg.src != s {
                    return false;
                }
            }
            if let Some(d) = self.msg_dst {
                if msg.dst != d {
                    return false;
                }
            }
        }
        if let Some(l) = &self.label {
            if rec.label.as_deref() != Some(l.as_str()) {
                return false;
            }
        }
        true
    }

    /// The narrowest index selection this query can ride. Rank lanes are
    /// deliberately never chosen: lane order is per-rank program order, and
    /// `find` promises canonical order across ranks.
    fn selection(&self) -> Select {
        if let Some(k) = self.kind {
            Select::Kind(k)
        } else if let Some(t) = self.tag {
            Select::Tag(t)
        } else if let (Some(lo), Some(hi)) = (self.t_min, self.t_max) {
            Select::TimeWindow(lo, hi)
        } else {
            Select::All
        }
    }

    /// All matching records from any [`TraceSource`], in canonical order.
    ///
    /// Index-aware: the most selective constraint (kind, then tag, then
    /// time window) is pushed down to the source as a [`Select`], so an
    /// on-disk store answers from its zone indexes without a full scan;
    /// remaining constraints are applied per record.
    pub fn find_records(&self, src: &dyn TraceSource) -> Result<Vec<TraceRecord>, SourceError> {
        let fs: Option<HashSet<SiteId>> = self
            .func
            .as_deref()
            .map(|f| src.source_sites().find_function(f).into_iter().collect());
        let mut out = Vec::new();
        for rec in src.select(self.selection())? {
            let rec = rec?;
            if self.matches_record(&rec, fs.as_ref()) {
                out.push(rec);
            }
        }
        Ok(out)
    }

    /// All matches in canonical order.
    pub fn find_all(&self, store: &TraceStore) -> Vec<EventId> {
        let fs = self.resolve_func(store);
        store
            .ids()
            .filter(|id| self.matches(store, *id, fs.as_ref()))
            .collect()
    }

    /// The first match.
    pub fn find_first(&self, store: &TraceStore) -> Option<EventId> {
        let fs = self.resolve_func(store);
        store.ids().find(|id| self.matches(store, *id, fs.as_ref()))
    }

    /// Number of matches.
    pub fn count(&self, store: &TraceStore) -> usize {
        let fs = self.resolve_func(store);
        store
            .ids()
            .filter(|id| self.matches(store, *id, fs.as_ref()))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MsgInfo, TraceRecord};
    use crate::loc::SiteTable;

    fn store() -> TraceStore {
        let sites = SiteTable::new();
        let f = sites.site("a.c", 1, "MatrSend");
        let g = sites.site("a.c", 2, "MatrRecv");
        let m = MsgInfo {
            src: Rank(0),
            dst: Rank(7),
            tag: Tag(11),
            bytes: 8,
            seq: 0,
        };
        let recs = vec![
            TraceRecord::basic(0u32, EventKind::FnEnter, 1, 0).with_site(f),
            TraceRecord::basic(0u32, EventKind::Send, 2, 10)
                .with_span(10, 12)
                .with_site(f)
                .with_msg(m),
            TraceRecord::basic(0u32, EventKind::Probe, 3, 15)
                .with_site(g)
                .with_args(6, 0)
                .with_label("jres"),
            TraceRecord::basic(7u32, EventKind::RecvDone, 1, 20)
                .with_span(20, 25)
                .with_msg(m),
        ];
        TraceStore::build(recs, sites, 8)
    }

    #[test]
    fn find_send_to_rank() {
        let s = store();
        let q = EventQuery::new().kind(EventKind::Send).msg_to(7u32);
        assert_eq!(q.count(&s), 1);
        let id = q.find_first(&s).unwrap();
        assert_eq!(s.record(id).marker, 2);
    }

    #[test]
    fn find_by_function() {
        let s = store();
        let q = EventQuery::new().in_function("MatrSend");
        assert_eq!(q.count(&s), 2);
        assert_eq!(EventQuery::new().in_function("nope").count(&s), 0);
    }

    #[test]
    fn find_probe_by_label() {
        let s = store();
        let id = EventQuery::new().label("jres").find_first(&s).unwrap();
        assert_eq!(s.record(id).args[0], 6);
    }

    #[test]
    fn window_and_rank_compose() {
        let s = store();
        let q = EventQuery::new().rank(0u32).in_window(9, 16);
        // send (10..12) and probe (15) on rank 0
        assert_eq!(q.count(&s), 2);
        let none = EventQuery::new().rank(7u32).in_window(0, 5);
        assert_eq!(none.count(&s), 0);
    }

    #[test]
    fn tag_constraint_requires_message() {
        let s = store();
        let q = EventQuery::new().tag(Tag(11));
        assert_eq!(q.count(&s), 2, "send + recv of the tagged message");
        assert_eq!(EventQuery::new().tag(Tag(99)).count(&s), 0);
    }

    #[test]
    fn after_marker() {
        let s = store();
        let q = EventQuery::new().rank(0u32).after_marker(3);
        assert_eq!(q.count(&s), 1);
    }

    #[test]
    fn find_records_matches_find_all() {
        let s = store();
        let queries = [
            EventQuery::new(),
            EventQuery::new().kind(EventKind::Send).msg_to(7u32),
            EventQuery::new().tag(Tag(11)),
            EventQuery::new().rank(0u32).in_window(9, 16),
            EventQuery::new().in_function("MatrSend"),
            EventQuery::new().label("jres"),
        ];
        for q in queries {
            let by_id: Vec<_> = q
                .find_all(&s)
                .iter()
                .map(|id| s.record(*id).clone())
                .collect();
            assert_eq!(q.find_records(&s).unwrap(), by_id);
        }
    }
}
