//! Source locations and the site interner.
//!
//! Both trace visualizers in the paper "provide a way to relate constructs
//! back to the source program" (§3.1): clicking a bar identifies the send or
//! receive in the source. We keep that mapping as an interned table of
//! `file:line function` triples; records carry only the compact [`SiteId`].

use crate::ids::SiteId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// A source location of an instrumented construct.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SourceLoc {
    pub file: String,
    pub line: u32,
    /// Enclosing function name, e.g. `MatrSend`.
    pub func: String,
}

impl SourceLoc {
    pub fn new(file: impl Into<String>, line: u32, func: impl Into<String>) -> Self {
        SourceLoc {
            file: file.into(),
            line,
            func: func.into(),
        }
    }
}

impl fmt::Debug for SourceLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{} ({})", self.file, self.line, self.func)
    }
}

impl fmt::Display for SourceLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.file, self.line, self.func)
    }
}

#[derive(Default)]
struct Inner {
    sites: Vec<SourceLoc>,
    index: HashMap<SourceLoc, SiteId>,
}

/// Thread-safe interner mapping [`SourceLoc`]s to dense [`SiteId`]s.
///
/// Shared (via `Arc`) between the engine and every simulated process so a
/// construct keeps one id across record, replay and analysis.
#[derive(Clone, Default)]
pub struct SiteTable {
    inner: Arc<Mutex<Inner>>,
}

impl SiteTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a location, returning its stable id.
    pub fn intern(&self, loc: SourceLoc) -> SiteId {
        let mut g = self.inner.lock().unwrap();
        if let Some(&id) = g.index.get(&loc) {
            return id;
        }
        let id = SiteId(g.sites.len() as u32);
        g.sites.push(loc.clone());
        g.index.insert(loc, id);
        id
    }

    /// Convenience: intern a `(file, line, func)` triple.
    pub fn site(&self, file: &str, line: u32, func: &str) -> SiteId {
        self.intern(SourceLoc::new(file, line, func))
    }

    /// Resolve an id back to its location (None for [`SiteId::UNKNOWN`] or
    /// ids from another table).
    pub fn resolve(&self, id: SiteId) -> Option<SourceLoc> {
        self.inner.lock().unwrap().sites.get(id.ix()).cloned()
    }

    /// Name of the function at `id`, or `"?"`.
    pub fn func_name(&self, id: SiteId) -> String {
        self.resolve(id)
            .map(|l| l.func)
            .unwrap_or_else(|| "?".into())
    }

    /// Number of interned sites.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().sites.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all interned locations, indexed by `SiteId`.
    pub fn snapshot(&self) -> Vec<SourceLoc> {
        self.inner.lock().unwrap().sites.clone()
    }

    /// All sites belonging to a function name (breakpoint-by-function).
    pub fn find_function(&self, func: &str) -> Vec<SiteId> {
        self.inner
            .lock()
            .unwrap()
            .sites
            .iter()
            .enumerate()
            .filter(|(_, l)| l.func == func)
            .map(|(i, _)| SiteId(i as u32))
            .collect()
    }

    /// All sites at a file:line (breakpoint-by-location).
    pub fn find_line(&self, file: &str, line: u32) -> Vec<SiteId> {
        self.inner
            .lock()
            .unwrap()
            .sites
            .iter()
            .enumerate()
            .filter(|(_, l)| l.file == file && l.line == line)
            .map(|(i, _)| SiteId(i as u32))
            .collect()
    }

    /// Rebuild a table from a snapshot (used when reading trace files).
    pub fn from_snapshot(sites: Vec<SourceLoc>) -> Self {
        let mut inner = Inner::default();
        for (i, s) in sites.iter().enumerate() {
            inner.index.insert(s.clone(), SiteId(i as u32));
        }
        inner.sites = sites;
        SiteTable {
            inner: Arc::new(Mutex::new(inner)),
        }
    }
}

impl fmt::Debug for SiteTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SiteTable({} sites)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let t = SiteTable::new();
        let a = t.site("strassen.c", 161, "MatrSend");
        let b = t.site("strassen.c", 161, "MatrSend");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_lines_get_distinct_ids() {
        let t = SiteTable::new();
        let a = t.site("strassen.c", 161, "MatrSend");
        let b = t.site("strassen.c", 162, "MatrSend");
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_roundtrip() {
        let t = SiteTable::new();
        let id = t.site("lu.f", 10, "ssor");
        let loc = t.resolve(id).unwrap();
        assert_eq!(loc.file, "lu.f");
        assert_eq!(loc.line, 10);
        assert_eq!(loc.func, "ssor");
        assert!(t.resolve(SiteId::UNKNOWN).is_none());
        assert_eq!(t.func_name(SiteId::UNKNOWN), "?");
    }

    #[test]
    fn snapshot_roundtrip() {
        let t = SiteTable::new();
        t.site("a.c", 1, "f");
        t.site("b.c", 2, "g");
        let t2 = SiteTable::from_snapshot(t.snapshot());
        assert_eq!(t2.len(), 2);
        assert_eq!(t2.site("a.c", 1, "f"), SiteId(0));
        assert_eq!(t2.site("c.c", 3, "h"), SiteId(2));
    }

    #[test]
    fn shared_across_clones() {
        let t = SiteTable::new();
        let t2 = t.clone();
        let id = t.site("x.c", 9, "main");
        assert_eq!(t2.resolve(id).unwrap().func, "main");
    }
}
