//! Trace providers and consumers behind one interface.
//!
//! The debugger, the lint engine, and the statistics/viz paths all consume
//! a trace; historically each of them took a `&TraceStore`, which forces
//! the entire run into memory before any question can be asked. The
//! [`TraceSource`] trait decouples "where the events live" from "how they
//! are queried": the in-memory [`TraceStore`] is the *reference
//! implementation* (every query is definable as a linear scan in canonical
//! order), and the on-disk indexed store in `crates/store` must return
//! byte-identical sequences for every selection — an index, never a
//! filter.
//!
//! [`TraceSink`] is the write-side counterpart: a streaming consumer the
//! engine's flush path tees into, so a run can be persisted while it
//! executes instead of being collected and dumped post-mortem.
//!
//! Ordering contract, shared by every implementation:
//!
//! * [`Select::All`], [`Select::Tag`], [`Select::Kind`] and
//!   [`Select::TimeWindow`] yield events in *canonical* order — the stable
//!   sort by `(t_start, rank, marker)` that [`TraceStore::build`]
//!   establishes (ties broken by arrival order);
//! * [`Select::Rank`] yields that rank's events in *program* (marker)
//!   order, matching [`TraceStore::by_rank`].

use crate::event::{EventKind, TraceRecord};
use crate::history::TraceStore;
use crate::ids::{Rank, Tag};
use crate::loc::SiteTable;
use std::fmt;

/// One selection over a trace: which events, in the contract order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Select {
    /// Every event, canonical order.
    All,
    /// One rank's events, program (marker) order.
    Rank(Rank),
    /// Events whose message carries this tag, canonical order.
    Tag(Tag),
    /// Events of one construct kind, canonical order.
    Kind(EventKind),
    /// Events whose `[t_start, t_end]` span intersects `[lo, hi]`,
    /// canonical order.
    TimeWindow(u64, u64),
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Select::All => write!(f, "all"),
            Select::Rank(r) => write!(f, "rank {r}"),
            Select::Tag(t) => write!(f, "tag {t}"),
            Select::Kind(k) => write!(f, "kind {}", k.code()),
            Select::TimeWindow(lo, hi) => write!(f, "window {lo}:{hi}"),
        }
    }
}

/// Why a source could not produce events.
///
/// The in-memory reference implementation never fails; disk-backed sources
/// surface I/O and corruption errors through this type so consumers stay
/// implementation-agnostic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SourceError {
    msg: String,
}

impl SourceError {
    pub fn new(msg: impl Into<String>) -> Self {
        SourceError { msg: msg.into() }
    }
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for SourceError {}

/// An iterator of events from a source; each item can fail independently
/// (a disk-backed cursor discovers corruption lazily).
pub type EventIter<'a> = Box<dyn Iterator<Item = Result<TraceRecord, SourceError>> + 'a>;

/// Direction of a [`CommEdge`] as seen from the rank it was iterated at.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EdgeDir {
    /// The rank sent a message to `peer`.
    Send,
    /// The rank completed a receive of a message from `peer`.
    Recv,
}

impl fmt::Display for EdgeDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeDir::Send => write!(f, "send"),
            EdgeDir::Recv => write!(f, "recv"),
        }
    }
}

/// One communication edge observed at a rank — the per-rank projection of
/// the message graph that `tracedbg localize` aligns between a failing and
/// a passing run. A `Send` event contributes an edge toward its
/// destination; a `RecvDone` event contributes an edge from its source
/// (the *completed* match, not the posted intent).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CommEdge {
    pub dir: EdgeDir,
    /// The peer rank: destination of a send, source of a completed recv.
    pub peer: Rank,
    pub tag: Tag,
    /// Payload size in bytes.
    pub bytes: u32,
    /// Per-channel send sequence number of the message.
    pub seq: u64,
    /// Marker of the event at the iterated rank (program order).
    pub marker: u64,
}

impl CommEdge {
    /// The identity the graph differ keys multisets by: direction, peer
    /// and tag — *which* communication happened, not when or with what
    /// payload.
    pub fn key(&self) -> (EdgeDir, Rank, Tag) {
        (self.dir, self.peer, self.tag)
    }
}

impl fmt::Display for CommEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let arrow = match self.dir {
            EdgeDir::Send => "->",
            EdgeDir::Recv => "<-",
        };
        write!(f, "{} {arrow} {:?} tag {}", self.dir, self.peer, self.tag)
    }
}

/// A queryable provider of one run's trace.
pub trait TraceSource {
    /// Number of process ranks in the run.
    fn source_n_ranks(&self) -> usize;

    /// Total number of events.
    fn source_len(&self) -> u64;

    /// The interned source locations referenced by the events.
    fn source_sites(&self) -> SiteTable;

    /// Smallest `t_start` and largest `t_end` over all events.
    fn source_time_bounds(&self) -> Result<(u64, u64), SourceError>;

    /// Stream the events matching `sel`, in the contract order.
    fn select(&self, sel: Select) -> Result<EventIter<'_>, SourceError>;

    /// All events, canonical order, collected.
    fn events(&self) -> Result<Vec<TraceRecord>, SourceError> {
        collect(self.select(Select::All)?)
    }

    /// One rank's events in program order, collected.
    fn by_rank(&self, rank: Rank) -> Result<Vec<TraceRecord>, SourceError> {
        collect(self.select(Select::Rank(rank))?)
    }

    /// Events carrying `tag`, canonical order, collected.
    fn by_tag(&self, tag: Tag) -> Result<Vec<TraceRecord>, SourceError> {
        collect(self.select(Select::Tag(tag))?)
    }

    /// Events of construct `kind`, canonical order, collected.
    fn by_construct(&self, kind: EventKind) -> Result<Vec<TraceRecord>, SourceError> {
        collect(self.select(Select::Kind(kind))?)
    }

    /// Events intersecting `[lo, hi]`, canonical order, collected.
    fn by_time_window(&self, lo: u64, hi: u64) -> Result<Vec<TraceRecord>, SourceError> {
        collect(self.select(Select::TimeWindow(lo, hi))?)
    }

    /// One rank's communication edges in program order: every `Send` and
    /// completed receive (`RecvDone`), projected to [`CommEdge`]s.
    ///
    /// Streams the rank's cursor and keeps only the communication events,
    /// so a disk-backed store answers from its rank index without
    /// materializing the trace — the accessor the localize graph differ
    /// is built on.
    fn comm_edges(&self, rank: Rank) -> Result<Vec<CommEdge>, SourceError> {
        let mut out = Vec::new();
        for rec in self.select(Select::Rank(rank))? {
            let rec = rec?;
            let dir = match rec.kind {
                EventKind::Send => EdgeDir::Send,
                EventKind::RecvDone => EdgeDir::Recv,
                _ => continue,
            };
            let Some(msg) = &rec.msg else { continue };
            out.push(CommEdge {
                dir,
                peer: match dir {
                    EdgeDir::Send => msg.dst,
                    EdgeDir::Recv => msg.src,
                },
                tag: msg.tag,
                bytes: msg.bytes,
                seq: msg.seq,
                marker: rec.marker,
            });
        }
        Ok(out)
    }
}

fn collect(iter: EventIter<'_>) -> Result<Vec<TraceRecord>, SourceError> {
    iter.collect()
}

/// A streaming consumer of trace records (the write side of a store).
///
/// The engine's flush path tees every record through the attached sink in
/// flush order; implementations must tolerate records arriving out of
/// canonical order and establish their own order on finish.
pub trait TraceSink: Send {
    fn accept(&mut self, rec: &TraceRecord);
}

/// Collect a source into the in-memory reference store.
///
/// This is the bridge for consumers that need random access (`EventId`
/// navigation, marker lookup) rather than streaming selection.
pub fn materialize(src: &dyn TraceSource) -> Result<TraceStore, SourceError> {
    Ok(TraceStore::build(
        src.events()?,
        src.source_sites(),
        src.source_n_ranks(),
    ))
}

impl TraceSource for TraceStore {
    fn source_n_ranks(&self) -> usize {
        self.n_ranks()
    }

    fn source_len(&self) -> u64 {
        self.len() as u64
    }

    fn source_sites(&self) -> SiteTable {
        self.sites().clone()
    }

    fn source_time_bounds(&self) -> Result<(u64, u64), SourceError> {
        Ok(self.time_bounds())
    }

    fn select(&self, sel: Select) -> Result<EventIter<'_>, SourceError> {
        let iter: EventIter<'_> = match sel {
            Select::All => Box::new(self.records().iter().cloned().map(Ok)),
            Select::Rank(rank) => {
                if rank.ix() >= self.n_ranks() {
                    Box::new(std::iter::empty())
                } else {
                    Box::new(
                        self.by_rank(rank)
                            .iter()
                            .map(move |id| Ok(self.record(*id).clone())),
                    )
                }
            }
            Select::Tag(tag) => Box::new(
                self.records()
                    .iter()
                    .filter(move |r| r.msg.as_ref().is_some_and(|m| m.tag == tag))
                    .cloned()
                    .map(Ok),
            ),
            Select::Kind(kind) => Box::new(
                self.records()
                    .iter()
                    .filter(move |r| r.kind == kind)
                    .cloned()
                    .map(Ok),
            ),
            Select::TimeWindow(lo, hi) => Box::new(
                self.records()
                    .iter()
                    .filter(move |r| r.t_start <= hi && r.t_end >= lo)
                    .cloned()
                    .map(Ok),
            ),
        };
        Ok(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind::*;
    use crate::event::MsgInfo;

    fn sample() -> TraceStore {
        let recs = vec![
            TraceRecord::basic(1u32, RecvDone, 1, 0)
                .with_span(0, 15)
                .with_msg(MsgInfo {
                    src: Rank(0),
                    dst: Rank(1),
                    tag: Tag(7),
                    bytes: 8,
                    seq: 1,
                }),
            TraceRecord::basic(0u32, Compute, 1, 0).with_span(0, 10),
            TraceRecord::basic(0u32, Send, 2, 10)
                .with_span(10, 12)
                .with_msg(MsgInfo {
                    src: Rank(0),
                    dst: Rank(1),
                    tag: Tag(7),
                    bytes: 8,
                    seq: 1,
                }),
            TraceRecord::basic(1u32, Compute, 2, 15).with_span(15, 30),
        ];
        TraceStore::build(recs, SiteTable::new(), 0)
    }

    #[test]
    fn reference_select_matches_inherent_queries() {
        let s = sample();
        let src: &dyn TraceSource = &s;
        assert_eq!(src.source_n_ranks(), 2);
        assert_eq!(src.source_len(), 4);
        assert_eq!(src.source_time_bounds().unwrap(), s.time_bounds());
        assert_eq!(src.events().unwrap(), s.records().to_vec());
        for rank in [Rank(0), Rank(1)] {
            let want: Vec<TraceRecord> = s
                .by_rank(rank)
                .iter()
                .map(|id| s.record(*id).clone())
                .collect();
            assert_eq!(src.by_rank(rank).unwrap(), want);
        }
        // Out-of-range rank is empty, not a panic.
        assert!(src.by_rank(Rank(9)).unwrap().is_empty());
        let want: Vec<TraceRecord> = s
            .of_kind(Send)
            .iter()
            .map(|id| s.record(*id).clone())
            .collect();
        assert_eq!(src.by_construct(Send).unwrap(), want);
        let want: Vec<TraceRecord> = s
            .in_window(12, 16)
            .iter()
            .map(|id| s.record(*id).clone())
            .collect();
        assert_eq!(src.by_time_window(12, 16).unwrap(), want);
        assert_eq!(src.by_tag(Tag(7)).unwrap().len(), 2);
        assert!(src.by_tag(Tag(99)).unwrap().is_empty());
    }

    #[test]
    fn comm_edges_projects_sends_and_completed_recvs_in_program_order() {
        let s = sample();
        let src: &dyn TraceSource = &s;
        // Rank 0: Compute (skipped) then Send to rank 1.
        let e0 = src.comm_edges(Rank(0)).unwrap();
        assert_eq!(e0.len(), 1);
        assert_eq!(e0[0].dir, EdgeDir::Send);
        assert_eq!(e0[0].peer, Rank(1));
        assert_eq!(e0[0].tag, Tag(7));
        assert_eq!(e0[0].seq, 1);
        assert_eq!(e0[0].marker, 2);
        // Rank 1: RecvDone from rank 0, Compute skipped.
        let e1 = src.comm_edges(Rank(1)).unwrap();
        assert_eq!(e1.len(), 1);
        assert_eq!(e1[0].dir, EdgeDir::Recv);
        assert_eq!(e1[0].peer, Rank(0));
        assert_eq!(e1[0].marker, 1);
        assert_eq!(e1[0].key(), (EdgeDir::Recv, Rank(0), Tag(7)));
        // Out-of-range rank is empty, matching `by_rank`.
        assert!(src.comm_edges(Rank(9)).unwrap().is_empty());
    }

    #[test]
    fn materialize_roundtrips_the_reference() {
        let s = sample();
        let m = materialize(&s).unwrap();
        assert_eq!(m.records(), s.records());
        assert_eq!(m.n_ranks(), s.n_ranks());
    }
}
