//! The merged, queryable execution history.
//!
//! A [`TraceStore`] holds every record of a run in a canonical total order
//! and provides the navigation primitives the debugger and the visualizers
//! need (§4.3 "fast navigation of history"): locating the event at a marker,
//! slicing a rank's timeline, and finding the latest event of each process
//! at or before a wall of simulated time (the vertical-stopline query).

use crate::event::{EventKind, TraceRecord};
use crate::ids::Rank;
use crate::loc::SiteTable;
use crate::marker::{Marker, MarkerVector};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of an event in a [`TraceStore`]'s canonical order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct EventId(pub u32);

impl EventId {
    #[inline]
    pub fn ix(self) -> usize {
        self.0 as usize
    }
}

/// A complete, immutable execution history.
pub struct TraceStore {
    records: Vec<TraceRecord>,
    /// Event ids of each rank, in that rank's program (marker) order.
    per_rank: Vec<Vec<EventId>>,
    sites: SiteTable,
    n_ranks: usize,
}

impl TraceStore {
    /// Build a store from raw records.
    ///
    /// Records are put in the canonical order `(t_start, rank, marker)`;
    /// `n_ranks` is inferred from the records if 0 is passed.
    pub fn build(mut records: Vec<TraceRecord>, sites: SiteTable, n_ranks: usize) -> Self {
        records.sort_by_key(|r| (r.t_start, r.rank, r.marker));
        // Use the declared rank count, but never less than the records
        // actually reference (robustness against undersized headers).
        let inferred = records.iter().map(|r| r.rank.ix() + 1).max().unwrap_or(0);
        let n_ranks = n_ranks.max(inferred);
        let mut per_rank: Vec<Vec<EventId>> = vec![Vec::new(); n_ranks];
        for (i, r) in records.iter().enumerate() {
            per_rank[r.rank.ix()].push(EventId(i as u32));
        }
        // Within a rank, canonical order must agree with program order.
        for lane in &mut per_rank {
            lane.sort_by_key(|id| records[id.ix()].marker);
        }
        TraceStore {
            records,
            per_rank,
            sites,
            n_ranks,
        }
    }

    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn sites(&self) -> &SiteTable {
        &self.sites
    }

    /// All records in canonical order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// The record of an event.
    pub fn record(&self, id: EventId) -> &TraceRecord {
        &self.records[id.ix()]
    }

    /// Iterate event ids in canonical order.
    pub fn ids(&self) -> impl Iterator<Item = EventId> {
        (0..self.records.len() as u32).map(EventId)
    }

    /// Event ids of `rank` in program order.
    pub fn by_rank(&self, rank: Rank) -> &[EventId] {
        &self.per_rank[rank.ix()]
    }

    /// Locate the event with marker `m` (binary search in program order).
    pub fn find_marker(&self, m: Marker) -> Option<EventId> {
        let lane = self.per_rank.get(m.rank.ix())?;
        let pos = lane
            .binary_search_by_key(&m.count, |id| self.records[id.ix()].marker)
            .ok()?;
        Some(lane[pos])
    }

    /// For each rank, the marker of the last event that *completed*
    /// (`t_end`) at or before `t` — the vertical-slice stopline of §4.1.
    /// Ranks with no completed event by `t` get marker 0 ("stop before the
    /// first event").
    ///
    /// Completion semantics is what makes every vertical slice a consistent
    /// cut: the runtime guarantees a receive completes no earlier than its
    /// send, so "everything completed by `t`" can never contain a receive
    /// without its send.
    pub fn markers_at_time(&self, t: u64) -> MarkerVector {
        let mut v = MarkerVector::zero(self.n_ranks);
        for (r, lane) in self.per_rank.iter().enumerate() {
            // Lanes are in marker order; end times within a rank are
            // nondecreasing because a process is sequential.
            let mut last = 0;
            for id in lane {
                let rec = &self.records[id.ix()];
                if rec.t_end <= t {
                    last = rec.marker;
                } else {
                    break;
                }
            }
            v.set(Rank(r as u32), last);
        }
        v
    }

    /// Smallest `t_start` and largest `t_end` over all records.
    pub fn time_bounds(&self) -> (u64, u64) {
        let lo = self.records.iter().map(|r| r.t_start).min().unwrap_or(0);
        let hi = self.records.iter().map(|r| r.t_end).max().unwrap_or(0);
        (lo, hi)
    }

    /// Events whose `[t_start, t_end]` span intersects `[lo, hi]`.
    pub fn in_window(&self, lo: u64, hi: u64) -> Vec<EventId> {
        self.ids()
            .filter(|id| {
                let r = self.record(*id);
                r.t_start <= hi && r.t_end >= lo
            })
            .collect()
    }

    /// Events of a given kind, canonical order.
    pub fn of_kind(&self, kind: EventKind) -> Vec<EventId> {
        self.ids()
            .filter(|id| self.record(*id).kind == kind)
            .collect()
    }

    /// The latest event of each rank (end of trace), as a marker vector.
    pub fn final_markers(&self) -> MarkerVector {
        let mut v = MarkerVector::zero(self.n_ranks);
        for (r, lane) in self.per_rank.iter().enumerate() {
            if let Some(id) = lane.last() {
                v.set(Rank(r as u32), self.records[id.ix()].marker);
            }
        }
        v
    }
}

impl fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TraceStore({} events, {} ranks)",
            self.records.len(),
            self.n_ranks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind::*;

    fn mk(rank: u32, kind: crate::EventKind, marker: u64, t0: u64, t1: u64) -> TraceRecord {
        TraceRecord::basic(rank, kind, marker, t0).with_span(t0, t1)
    }

    fn sample() -> TraceStore {
        // P0: compute(0..10) send(10..12) recv(20..25)
        // P1: recv(0..15) compute(15..30)
        let recs = vec![
            mk(1, RecvDone, 1, 0, 15),
            mk(0, Compute, 1, 0, 10),
            mk(0, Send, 2, 10, 12),
            mk(1, Compute, 2, 15, 30),
            mk(0, RecvDone, 3, 20, 25),
        ];
        TraceStore::build(recs, SiteTable::new(), 0)
    }

    #[test]
    fn canonical_order_and_rank_inference() {
        let s = sample();
        assert_eq!(s.n_ranks(), 2);
        assert_eq!(s.len(), 5);
        let starts: Vec<u64> = s.records().iter().map(|r| r.t_start).collect();
        let mut sorted = starts.clone();
        sorted.sort();
        assert_eq!(starts, sorted);
    }

    #[test]
    fn per_rank_in_program_order() {
        let s = sample();
        let p0: Vec<u64> = s
            .by_rank(Rank(0))
            .iter()
            .map(|id| s.record(*id).marker)
            .collect();
        assert_eq!(p0, vec![1, 2, 3]);
    }

    #[test]
    fn find_marker_works() {
        let s = sample();
        let id = s.find_marker(Marker::new(0u32, 2)).unwrap();
        assert_eq!(s.record(id).kind, Send);
        assert!(s.find_marker(Marker::new(0u32, 9)).is_none());
        assert!(s.find_marker(Marker::new(5u32, 1)).is_none());
    }

    #[test]
    fn vertical_slice_markers() {
        let s = sample();
        // At t=13: P0 has completed compute (..10) and send (..12) →
        // marker 2; P1's first recv completes at 15 → marker 0.
        let v = s.markers_at_time(13);
        assert_eq!(v.get(Rank(0)), 2);
        assert_eq!(v.get(Rank(1)), 0);
        // At t=16 P1's recv (..15) is in.
        assert_eq!(s.markers_at_time(16).get(Rank(1)), 1);
        // Before anything completed: all zero.
        let v0 = s.markers_at_time(0);
        assert_eq!(v0.counts(), &[0, 0]);
        // At the very end: everything.
        assert_eq!(s.markers_at_time(30).counts(), &[3, 2]);
        let v_none = TraceStore::build(vec![], SiteTable::new(), 2).markers_at_time(100);
        assert_eq!(v_none.counts(), &[0, 0]);
    }

    #[test]
    fn window_and_bounds() {
        let s = sample();
        assert_eq!(s.time_bounds(), (0, 30));
        let w = s.in_window(12, 16);
        // send(10..12), recv P1 (0..15), compute P1 (15..30) intersect
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn final_markers() {
        let s = sample();
        let v = s.final_markers();
        assert_eq!(v.get(Rank(0)), 3);
        assert_eq!(v.get(Rank(1)), 2);
    }

    #[test]
    fn of_kind_filters() {
        let s = sample();
        assert_eq!(s.of_kind(Send).len(), 1);
        assert_eq!(s.of_kind(RecvDone).len(), 2);
        assert_eq!(s.of_kind(Probe).len(), 0);
    }
}
