//! Property tests: both trace file formats round-trip arbitrary records.

use proptest::prelude::*;
use std::io::Cursor;
use tracedbg_trace::file::{
    read_binary, read_jsonl, read_text, write_binary, write_jsonl, write_text, TraceFile,
};
use tracedbg_trace::{EventKind, MsgInfo, Rank, SiteId, SiteTable, Tag, TraceRecord};

fn arb_kind() -> impl Strategy<Value = EventKind> {
    let all = EventKind::all();
    (0..all.len()).prop_map(move |i| all[i])
}

fn arb_label() -> impl Strategy<Value = Option<String>> {
    prop_oneof![
        Just(None),
        // No newlines (the text format is line-oriented); allow spaces
        // and punctuation.
        "[ -~]{0,40}".prop_map(Some),
    ]
}

fn arb_msg() -> impl Strategy<Value = Option<MsgInfo>> {
    prop_oneof![
        Just(None),
        (
            0u32..16,
            0u32..16,
            -2i32..100,
            0u32..1_000_000,
            0u64..10_000
        )
            .prop_map(|(src, dst, tag, bytes, seq)| Some(MsgInfo {
                src: Rank(src),
                dst: Rank(dst),
                tag: Tag(tag),
                bytes,
                seq,
            })),
    ]
}

prop_compose! {
    fn arb_record()(
        rank in 0u32..16,
        kind in arb_kind(),
        marker in 0u64..1_000_000,
        t0 in 0u64..1_000_000_000,
        dt in 0u64..1_000_000,
        site in prop_oneof![Just(SiteId::UNKNOWN), (0u32..50).prop_map(SiteId)],
        a0 in any::<i64>(),
        a1 in any::<i64>(),
        msg in arb_msg(),
        label in arb_label(),
    ) -> TraceRecord {
        TraceRecord {
            rank: Rank(rank),
            kind,
            marker,
            t_start: t0,
            t_end: t0 + dt,
            site,
            msg,
            args: [a0, a1],
            label,
        }
    }
}

fn arb_file() -> impl Strategy<Value = TraceFile> {
    (
        proptest::collection::vec(arb_record(), 0..60),
        proptest::collection::vec(
            ("[a-z./]{1,12}", 0u32..5000, "[A-Za-z_][A-Za-z0-9_]{0,10}"),
            0..10,
        ),
        0usize..16,
    )
        .prop_map(|(records, site_specs, n_ranks)| {
            let sites = SiteTable::new();
            for (f, l, fun) in site_specs {
                sites.site(&f, l, &fun);
            }
            TraceFile::new(records, sites, n_ranks)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn text_roundtrip(f in arb_file()) {
        // The text format stores labels trimmed; empty labels read back as
        // absent. Normalize the expectation the same way.
        let expected: Vec<TraceRecord> = f.records.iter().cloned().map(|mut r| {
            if let Some(l) = r.label.take() {
                let t = l.trim_end().to_string();
                r.label = if t.is_empty() { None } else { Some(t) };
            }
            r
        }).collect();
        let mut buf = Vec::new();
        write_text(&mut buf, &f).unwrap();
        let back = read_text(Cursor::new(&buf)).unwrap();
        prop_assert_eq!(back.n_ranks, f.n_ranks);
        prop_assert_eq!(back.records.len(), expected.len());
        for (b, e) in back.records.iter().zip(&expected) {
            prop_assert_eq!(b, e);
        }
        prop_assert_eq!(back.sites.len(), f.sites.len());
    }

    #[test]
    fn binary_roundtrip(f in arb_file()) {
        let mut buf = Vec::new();
        write_binary(&mut buf, &f).unwrap();
        let back = read_binary(Cursor::new(&buf)).unwrap();
        prop_assert_eq!(back.n_ranks, f.n_ranks);
        prop_assert_eq!(back.records, f.records.clone());
        prop_assert_eq!(back.sites.snapshot(), f.sites.snapshot());
    }

    #[test]
    fn jsonl_roundtrip(f in arb_file()) {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &f).unwrap();
        let back = read_jsonl(Cursor::new(&buf)).unwrap();
        prop_assert_eq!(back.n_ranks, f.n_ranks);
        prop_assert_eq!(back.records, f.records.clone());
    }

    #[test]
    fn markers_at_time_is_monotone(
        f in arb_file(),
        t1 in 0u64..2_000_000_000,
        t2 in 0u64..2_000_000_000,
    ) {
        let store = f.into_store();
        let (lo, hi) = (t1.min(t2), t1.max(t2));
        let early = store.markers_at_time(lo);
        let late = store.markers_at_time(hi);
        for (a, b) in early.counts().iter().zip(late.counts()) {
            prop_assert!(a <= b, "cut must grow with time");
        }
    }
}
