//! Process sets — p2d2's central UI abstraction.
//!
//! The host debugger this paper extends (Hood, *The p2d2 Project*, SPDT'96)
//! organizes every operation around *sets of processes*: the user defines
//! named sets ("workers", "masters") and points debugger commands at a set
//! instead of a single pid. This module provides the set algebra and the
//! `1-6`/`0,2,5`/`all` spec syntax the command interface exposes.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use tracedbg_trace::Rank;

/// A named collection of process sets over `n_ranks` processes.
#[derive(Clone, Debug)]
pub struct ProcSets {
    n_ranks: usize,
    sets: BTreeMap<String, BTreeSet<Rank>>,
}

impl ProcSets {
    pub fn new(n_ranks: usize) -> Self {
        ProcSets {
            n_ranks,
            sets: BTreeMap::new(),
        }
    }

    /// Parse a set spec: `all`, a rank (`3`), a range (`1-6`), a comma
    /// union (`0,2-4,7`), or the name of a previously defined set.
    pub fn parse(&self, spec: &str) -> Result<BTreeSet<Rank>, String> {
        if spec == "all" {
            return Ok((0..self.n_ranks as u32).map(Rank).collect());
        }
        if let Some(named) = self.sets.get(spec) {
            return Ok(named.clone());
        }
        let mut out = BTreeSet::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                return Err(format!("empty component in {spec:?}"));
            }
            if let Some((a, b)) = part.split_once('-') {
                let a: u32 = a.parse().map_err(|_| format!("bad rank {a:?}"))?;
                let b: u32 = b.parse().map_err(|_| format!("bad rank {b:?}"))?;
                if a > b {
                    return Err(format!("reversed range {part:?}"));
                }
                for r in a..=b {
                    out.insert(Rank(r));
                }
            } else {
                let r: u32 = part.parse().map_err(|_| format!("bad rank {part:?}"))?;
                out.insert(Rank(r));
            }
        }
        if let Some(r) = out.iter().find(|r| r.ix() >= self.n_ranks) {
            return Err(format!("{r:?} out of range (0..{})", self.n_ranks));
        }
        Ok(out)
    }

    /// Define (or redefine) a named set from a spec. Specs may reference
    /// previously defined names.
    pub fn define(&mut self, name: &str, spec: &str) -> Result<(), String> {
        if name == "all" || name.chars().any(|c| c.is_ascii_digit()) {
            return Err(format!(
                "set name {name:?} is reserved or ambiguous with a rank spec"
            ));
        }
        let set = self.parse(spec)?;
        self.sets.insert(name.to_string(), set);
        Ok(())
    }

    pub fn remove(&mut self, name: &str) -> bool {
        self.sets.remove(name).is_some()
    }

    pub fn get(&self, name: &str) -> Option<&BTreeSet<Rank>> {
        self.sets.get(name)
    }

    pub fn names(&self) -> Vec<&str> {
        self.sets.keys().map(String::as_str).collect()
    }

    /// Set union of two specs.
    pub fn union(&self, a: &str, b: &str) -> Result<BTreeSet<Rank>, String> {
        let mut s = self.parse(a)?;
        s.extend(self.parse(b)?);
        Ok(s)
    }

    /// Set difference `a \ b`.
    pub fn difference(&self, a: &str, b: &str) -> Result<BTreeSet<Rank>, String> {
        let sb = self.parse(b)?;
        Ok(self
            .parse(a)?
            .into_iter()
            .filter(|r| !sb.contains(r))
            .collect())
    }
}

impl fmt::Display for ProcSets {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sets.is_empty() {
            return write!(f, "(no sets defined)");
        }
        for (name, set) in &self.sets {
            write!(f, "{name} = {{")?;
            for (i, r) in set.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{r}")?;
            }
            writeln!(f, "}}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranks(v: &[u32]) -> BTreeSet<Rank> {
        v.iter().copied().map(Rank).collect()
    }

    #[test]
    fn parse_specs() {
        let s = ProcSets::new(8);
        assert_eq!(s.parse("3").unwrap(), ranks(&[3]));
        assert_eq!(s.parse("1-3").unwrap(), ranks(&[1, 2, 3]));
        assert_eq!(s.parse("0,2-4,7").unwrap(), ranks(&[0, 2, 3, 4, 7]));
        assert_eq!(s.parse("all").unwrap().len(), 8);
    }

    #[test]
    fn parse_errors() {
        let s = ProcSets::new(4);
        assert!(s.parse("9").is_err(), "out of range");
        assert!(s.parse("3-1").is_err(), "reversed");
        assert!(s.parse("x").is_err(), "unknown name");
        assert!(s.parse("1,,2").is_err(), "empty component");
    }

    #[test]
    fn named_sets_and_algebra() {
        let mut s = ProcSets::new(8);
        s.define("workers", "1-7").unwrap();
        s.define("odd", "1,3,5,7").unwrap();
        assert_eq!(s.parse("workers").unwrap().len(), 7);
        // Names can reference names.
        s.define("crew", "workers").unwrap();
        assert_eq!(s.parse("crew").unwrap().len(), 7);
        assert_eq!(s.union("odd", "0").unwrap(), ranks(&[0, 1, 3, 5, 7]));
        assert_eq!(s.difference("workers", "odd").unwrap(), ranks(&[2, 4, 6]));
        assert!(s.remove("crew"));
        assert!(!s.remove("crew"));
        assert_eq!(s.names(), vec!["odd", "workers"]);
    }

    #[test]
    fn reserved_and_ambiguous_names_rejected() {
        let mut s = ProcSets::new(4);
        assert!(s.define("all", "0").is_err());
        assert!(
            s.define("p1", "0").is_err(),
            "digit-bearing names clash with specs"
        );
        assert!(s.define("workers", "0-2").is_ok());
    }

    #[test]
    fn display_lists_sets() {
        let mut s = ProcSets::new(4);
        s.define("w", "1-2").unwrap();
        let txt = format!("{s}");
        assert!(txt.contains("w = {1,2}"), "{txt}");
        assert_eq!(format!("{}", ProcSets::new(2)), "(no sets defined)");
    }
}
