//! A logarithmic backlog of engine checkpoints (§4.2/§6).
//!
//! The paper bounds replay cost by "keeping a logarithmic backlog" of
//! saved states. [`UndoStack`](crate::undo::UndoStack) applies that idea
//! to stop *markers*; this cache applies it to whole
//! [`EngineCheckpoint`]s: every debugger stop may deposit a snapshot, and
//! `replay_to`/`undo` restore the *nearest dominated* checkpoint instead
//! of re-executing from process creation — O(delta) replay.
//!
//! Entries are keyed by their marker vector. A checkpoint is usable for a
//! stopline target iff its markers are component-wise ≤ the target
//! (`MarkerVector::le`): every process in the snapshot still has the
//! target ahead of it. Among usable entries the one with the largest
//! marker sum wins (least remaining re-execution).
//!
//! Thinning mirrors the undo stack: when the cache outgrows its bound the
//! newest half is kept intact and the older half keeps every other entry,
//! so long sessions retain exponentially-spaced restore points.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tracedbg_mpsim::EngineCheckpoint;
use tracedbg_trace::MarkerVector;

/// Lookup behaviour of a [`CheckpointCache`]: how often `best_for` found a
/// usable checkpoint and how much re-execution the served checkpoints
/// still left (summed marker distance from checkpoint to target — the
/// paper's replay cost, in events).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheLookupStats {
    pub hits: u64,
    pub misses: u64,
    pub restore_distance: u64,
}

/// Bounded store of stop-state checkpoints, insertion-ordered (oldest
/// first — debugger stops have monotonically nondecreasing marker sums
/// within an incarnation, so order roughly tracks execution depth).
pub struct CheckpointCache {
    entries: Vec<(MarkerVector, Arc<EngineCheckpoint>)>,
    max_len: usize,
    /// Lookup telemetry (atomics: `best_for` takes `&self`).
    hits: AtomicU64,
    misses: AtomicU64,
    restore_distance: AtomicU64,
}

impl CheckpointCache {
    pub fn new() -> Self {
        Self::with_capacity(32)
    }

    /// `max_len` ≥ 4: how many checkpoints to keep before thinning.
    pub fn with_capacity(max_len: usize) -> Self {
        CheckpointCache {
            entries: Vec::new(),
            max_len: max_len.max(4),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            restore_distance: AtomicU64::new(0),
        }
    }

    /// Deposit a checkpoint. Re-stopping at already-cached markers is a
    /// no-op (a replay landing exactly on a cached stop re-records it).
    pub fn insert(&mut self, cp: EngineCheckpoint) {
        let markers = cp.markers();
        if self.entries.iter().any(|(m, _)| *m == markers) {
            return;
        }
        self.entries.push((markers, Arc::new(cp)));
        if self.entries.len() > self.max_len {
            self.compact();
        }
    }

    /// The best checkpoint to restore for a replay to `target`: dominated
    /// by the target on every rank, maximizing progress already made.
    pub fn best_for(&self, target: &MarkerVector) -> Option<Arc<EngineCheckpoint>> {
        let best = self
            .entries
            .iter()
            .filter(|(m, _)| m.len() == target.len() && m.le(target))
            .max_by_key(|(m, _)| m.counts().iter().sum::<u64>());
        match best {
            Some((m, cp)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                let target_sum: u64 = target.counts().iter().sum();
                let cp_sum: u64 = m.counts().iter().sum();
                self.restore_distance
                    .fetch_add(target_sum.saturating_sub(cp_sum), Ordering::Relaxed);
                Some(Arc::clone(cp))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Lookup telemetry so far. Survives [`CheckpointCache::clear`]: the
    /// counters describe the cache's whole lifetime, not one generation of
    /// entries.
    pub fn stats(&self) -> CacheLookupStats {
        CacheLookupStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            restore_distance: self.restore_distance.load(Ordering::Relaxed),
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Keep the newest half intact; thin the older half to every other
    /// entry (exponential spacing over repeated compactions).
    fn compact(&mut self) {
        let keep_recent = self.max_len / 2;
        let old = self.entries.len() - keep_recent;
        let mut thinned = Vec::with_capacity(old / 2 + keep_recent + 1);
        for (i, e) in self.entries.drain(..).enumerate() {
            if i >= old || i % 2 == 0 {
                thinned.push(e);
            }
        }
        self.entries = thinned;
    }
}

impl Default for CheckpointCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_mpsim::{Engine, EngineConfig, ProgramFn, RecorderConfig};
    use tracedbg_trace::Rank;

    fn checkpoint_at(threshold: u64) -> EngineCheckpoint {
        let p0: ProgramFn = Box::new(|ctx| {
            let s = ctx.site("cc.rs", 1, "p0");
            for _ in 0..20 {
                ctx.compute(10, s);
            }
        });
        let mut e = Engine::launch(
            EngineConfig {
                checkpoints: true,
                recorder: RecorderConfig::full(),
                ..Default::default()
            },
            vec![p0],
        );
        e.set_threshold(Rank(0), Some(threshold));
        assert!(e.run().is_stopped());
        e.snapshot()
    }

    fn mv(c: u64) -> MarkerVector {
        MarkerVector::from_counts(vec![c])
    }

    #[test]
    fn best_for_picks_deepest_dominated() {
        let mut cache = CheckpointCache::new();
        for t in [3, 6, 9] {
            cache.insert(checkpoint_at(t));
        }
        let best = cache.best_for(&mv(7)).expect("6 is dominated by 7");
        assert_eq!(best.markers(), mv(6));
        let exact = cache.best_for(&mv(9)).expect("exact hit");
        assert_eq!(exact.markers(), mv(9));
        assert!(cache.best_for(&mv(2)).is_none(), "nothing at/below 2");
    }

    #[test]
    fn duplicate_markers_are_not_stored_twice() {
        let mut cache = CheckpointCache::new();
        cache.insert(checkpoint_at(5));
        cache.insert(checkpoint_at(5));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn compaction_bounds_size_and_keeps_newest() {
        let mut cache = CheckpointCache::with_capacity(4);
        for t in 1..=12 {
            cache.insert(checkpoint_at(t));
        }
        assert!(cache.len() <= 5, "len {}", cache.len());
        // The newest checkpoint always survives thinning.
        assert_eq!(cache.best_for(&mv(50)).unwrap().markers(), mv(12));
    }

    #[test]
    fn lookup_stats_track_hits_misses_and_distance() {
        let mut cache = CheckpointCache::new();
        cache.insert(checkpoint_at(3));
        assert!(cache.best_for(&mv(2)).is_none());
        assert!(cache.best_for(&mv(7)).is_some());
        let st = cache.stats();
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 1);
        assert_eq!(st.restore_distance, 4, "target 7 minus checkpoint 3");
    }

    #[test]
    fn restored_cache_entry_is_runnable() {
        let mut cache = CheckpointCache::new();
        cache.insert(checkpoint_at(4));
        let cp = cache.best_for(&mv(10)).unwrap();
        let p0: ProgramFn = Box::new(|ctx| {
            let s = ctx.site("cc.rs", 1, "p0");
            for _ in 0..20 {
                ctx.compute(10, s);
            }
        });
        let mut e = Engine::restore(&cp, vec![p0]);
        e.clear_thresholds();
        e.resume_trapped();
        assert!(e.run().is_completed());
        assert_eq!(e.markers().get(Rank(0)), 22);
    }
}
