//! Checkpointed debugging sessions — the §6 improvement, end to end.
//!
//! "Our current implementation of replay and undo is done in
//! straightforward manner by re-executing until an execution marker
//! threshold is encountered. We could improve on this by periodically
//! checkpointing program states and keeping a logarithmic backlog of
//! process states."
//!
//! [`MachineSession`] is that improvement, built on the checkpointable
//! state-machine backend: execution is driven in bounded chunks, a full
//! [`Checkpoint`] is taken every `interval` machine steps, and the
//! retained set is thinned to a logarithmic backlog. `replay_to` and
//! `undo` then restore the nearest checkpoint at or before the target and
//! run only the residue — O(distance to nearest checkpoint) instead of
//! O(history). Because execution is deterministic, checkpoints *after* a
//! rewind stay valid too: the session can jump forward again without
//! re-running from the start.
//!
//! Restrictions (documented, inherent to snapshotting): round-robin
//! scheduling only, and programs expressed as [`MachineProgram`] state
//! machines.

use crate::undo::UndoStack;
use tracedbg_mpsim::machine::{Checkpoint, MachineEngine, MachineOutcome, MachineProgram};
use tracedbg_mpsim::{CostModel, RecorderConfig, SchedPolicy};
use tracedbg_trace::{Marker, MarkerVector, TraceStore};

/// Recreates the machine programs for a from-scratch (re-)execution.
pub type MachineFactory = Box<dyn Fn() -> Vec<Box<dyn MachineProgram>> + Send>;

/// Session status (machine backend).
#[derive(Debug)]
pub enum MachineSessionStatus {
    Idle,
    Stopped(Vec<Marker>),
    Completed,
    Deadlocked,
}

impl MachineSessionStatus {
    pub fn is_stopped(&self) -> bool {
        matches!(self, MachineSessionStatus::Stopped(_))
    }

    pub fn is_completed(&self) -> bool {
        matches!(self, MachineSessionStatus::Completed)
    }
}

/// A debugging session with periodic checkpoints.
pub struct MachineSession {
    factory: MachineFactory,
    recorder: RecorderConfig,
    cost: CostModel,
    engine: MachineEngine,
    /// Retained checkpoints, oldest first, thinned logarithmically.
    checkpoints: Vec<Checkpoint>,
    /// Machine steps between checkpoints.
    interval: usize,
    /// Bound on retained checkpoints before thinning.
    max_checkpoints: usize,
    status: MachineSessionStatus,
    undo: UndoStack,
    /// Wall-clock-ish accounting: machine steps re-executed by
    /// restores+residue runs (ablation measurements read this).
    pub steps_replayed: u64,
}

impl MachineSession {
    /// Launch with a checkpoint every `interval` machine steps.
    pub fn launch(factory: MachineFactory, recorder: RecorderConfig, interval: usize) -> Self {
        let engine = MachineEngine::new(
            factory(),
            recorder.clone(),
            CostModel::default(),
            SchedPolicy::RoundRobin,
            None,
        );
        MachineSession {
            factory,
            recorder,
            cost: CostModel::default(),
            engine,
            checkpoints: Vec::new(),
            interval: interval.max(1),
            max_checkpoints: 24,
            status: MachineSessionStatus::Idle,
            undo: UndoStack::new(),
            steps_replayed: 0,
        }
    }

    pub fn status(&self) -> &MachineSessionStatus {
        &self.status
    }

    pub fn markers(&self) -> MarkerVector {
        self.engine.markers()
    }

    pub fn trace(&mut self) -> TraceStore {
        self.engine.trace_store()
    }

    pub fn n_checkpoints(&self) -> usize {
        self.checkpoints.len()
    }

    /// Run to the next stop/completion, checkpointing along the way.
    pub fn run(&mut self) -> &MachineSessionStatus {
        loop {
            match self.engine.run_bounded(self.interval) {
                Some(outcome) => {
                    self.status = match outcome {
                        MachineOutcome::Completed => MachineSessionStatus::Completed,
                        MachineOutcome::Deadlock(_) => MachineSessionStatus::Deadlocked,
                        MachineOutcome::Stopped(traps) => MachineSessionStatus::Stopped(traps),
                    };
                    self.undo.push(self.engine.markers());
                    return &self.status;
                }
                None => {
                    self.take_checkpoint();
                }
            }
        }
    }

    fn take_checkpoint(&mut self) {
        let cp = self.engine.checkpoint();
        // Keep the backlog ordered by total progress (marker sum) so
        // thinning and nearest-checkpoint selection stay meaningful even
        // after rewinds insert checkpoints "in the past".
        let total = |c: &Checkpoint| c.at.counts().iter().sum::<u64>();
        let t = total(&cp);
        let pos = self.checkpoints.partition_point(|c| total(c) < t);
        // Skip duplicates of an already-retained instant.
        if self.checkpoints.get(pos).map(|c| &c.at) == Some(&cp.at)
            || (pos > 0 && self.checkpoints[pos - 1].at == cp.at)
        {
            return;
        }
        self.checkpoints.insert(pos, cp);
        if self.checkpoints.len() > self.max_checkpoints {
            self.thin();
        }
    }

    /// Thin to a logarithmic backlog: bucket checkpoints by the power of
    /// two of their distance (in total events) from the most advanced
    /// retained point, keeping the newest checkpoint of each bucket. This
    /// gives O(log history) storage with the classic guarantee that a jump
    /// back by distance `d` re-executes O(d) events.
    fn thin(&mut self) {
        let total = |c: &Checkpoint| c.at.counts().iter().sum::<u64>();
        let latest = self.checkpoints.last().map(&total).unwrap_or(0);
        let mut buckets = std::collections::HashSet::new();
        let mut kept: Vec<Checkpoint> = Vec::new();
        for cp in self.checkpoints.drain(..).rev() {
            let d = latest.saturating_sub(total(&cp));
            let bucket = if d == 0 { 0u32 } else { 64 - d.leading_zeros() };
            if buckets.insert(bucket) {
                kept.push(cp);
            }
        }
        kept.reverse();
        self.checkpoints = kept;
    }

    /// The most advanced retained checkpoint dominated by `target`.
    fn best_checkpoint(&self, target: &MarkerVector) -> Option<usize> {
        self.checkpoints
            .iter()
            .enumerate()
            .filter(|(_, cp)| cp.at.le(target))
            .max_by_key(|(_, cp)| cp.at.counts().iter().sum::<u64>())
            .map(|(i, _)| i)
    }

    /// Jump to an exact marker vector: restore the nearest checkpoint at
    /// or before the target (or restart from scratch) and run the residue
    /// under thresholds.
    pub fn replay_to(&mut self, target: &MarkerVector) -> &MachineSessionStatus {
        match self.best_checkpoint(target) {
            Some(ix) => {
                // Clone out to appease the borrow checker; checkpoints are
                // plain data.
                let cp = self.checkpoints[ix].clone();
                self.engine.restore(&cp);
            }
            None => {
                self.engine = MachineEngine::new(
                    (self.factory)(),
                    self.recorder.clone(),
                    self.cost,
                    SchedPolicy::RoundRobin,
                    None,
                );
            }
        }
        // Residue accounting: how far the restored point is from target.
        let here = self.engine.markers();
        self.steps_replayed += target
            .counts()
            .iter()
            .zip(here.counts())
            .map(|(t, h)| t.saturating_sub(*h))
            .sum::<u64>();
        if &here == target {
            self.status =
                MachineSessionStatus::Stopped(here.iter().filter(|m| m.count > 0).collect());
            self.undo.push(here);
            return &self.status;
        }
        self.engine.clear_thresholds();
        for m in target.iter() {
            if here.get(m.rank) >= m.count {
                // Already at (or past — impossible for a valid target) the
                // goal: hold the machine; arming the threshold now would
                // overshoot by one event (the trap fires on generation).
                self.engine.set_paused(m.rank, true);
            } else {
                self.engine.set_threshold(m.rank, Some(m.count));
            }
        }
        self.engine.resume_trapped();
        self.run();
        self.engine.clear_thresholds();
        self.engine.clear_pauses();
        &self.status
    }

    /// Parallel undo via the nearest checkpoint.
    pub fn undo(&mut self) -> bool {
        let Some(target) = self.undo.undo_target() else {
            return false;
        };
        self.replay_to(&target);
        true
    }

    /// Continue from a stop.
    pub fn continue_all(&mut self) -> &MachineSessionStatus {
        self.engine.clear_thresholds();
        self.engine.clear_pauses();
        self.engine.resume_trapped();
        self.run()
    }

    /// Arm a marker threshold (counter breakpoint) on one rank.
    pub fn set_threshold(&mut self, rank: tracedbg_trace::Rank, t: Option<u64>) {
        self.engine.set_threshold(rank, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use tracedbg_mpsim::machine::{MachineCtx, MachineStatus};
    use tracedbg_mpsim::{Payload, Rank, Tag};

    /// Ping-pong machines (same shape as the mpsim machine tests).
    #[derive(Serialize, Deserialize)]
    struct Pinger {
        rank: u32,
        phase: u32,
        rounds: u32,
    }

    impl MachineProgram for Pinger {
        fn step(&mut self, ctx: &mut MachineCtx<'_>) -> MachineStatus {
            let site = ctx.site("pp.rs", 1, "pingpong");
            let peer = Rank(1 - self.rank);
            if self.phase >= 2 * self.rounds {
                return MachineStatus::Finished;
            }
            let my_turn = (self.phase % 2 == 0) == (self.rank == 0);
            if my_turn {
                ctx.send(peer, Tag(0), Payload::from_i64(self.phase as i64), site);
                self.phase += 1;
            } else if ctx.try_recv(Some(peer), Some(Tag(0)), site).is_some() {
                self.phase += 1;
            }
            MachineStatus::Running
        }
        fn snapshot(&self) -> Vec<u8> {
            serde_json::to_vec(self).unwrap()
        }
        fn restore(&mut self, bytes: &[u8]) {
            *self = serde_json::from_slice(bytes).unwrap();
        }
    }

    fn factory(rounds: u32) -> MachineFactory {
        Box::new(move || {
            vec![
                Box::new(Pinger {
                    rank: 0,
                    phase: 0,
                    rounds,
                }) as Box<dyn MachineProgram>,
                Box::new(Pinger {
                    rank: 1,
                    phase: 0,
                    rounds,
                }),
            ]
        })
    }

    #[test]
    fn checkpoints_accumulate_during_run() {
        let mut s = MachineSession::launch(factory(200), RecorderConfig::markers_only(), 50);
        assert!(s.run().is_completed());
        assert!(s.n_checkpoints() > 2, "{}", s.n_checkpoints());
    }

    #[test]
    fn replay_to_uses_nearest_checkpoint() {
        let mut s = MachineSession::launch(factory(300), RecorderConfig::markers_only(), 40);
        assert!(s.run().is_completed());
        let end = s.markers();
        // Jump back to ~75% of rank 0's history.
        let target =
            MarkerVector::from_counts(vec![end.get(Rank(0)) * 3 / 4, end.get(Rank(1)) * 3 / 4]);
        s.steps_replayed = 0;
        assert!(s.replay_to(&target).is_stopped());
        assert_eq!(s.markers(), target);
        // Residue must be much smaller than the full history.
        let total: u64 = end.counts().iter().sum();
        assert!(
            s.steps_replayed < total / 2,
            "replayed {} of {total} events — checkpoint not used",
            s.steps_replayed
        );
    }

    #[test]
    fn jump_back_then_forward_reuses_later_checkpoints() {
        let mut s = MachineSession::launch(factory(300), RecorderConfig::markers_only(), 40);
        assert!(s.run().is_completed());
        let end = s.markers();
        let early = MarkerVector::from_counts(vec![end.get(Rank(0)) / 4, end.get(Rank(1)) / 4]);
        let late =
            MarkerVector::from_counts(vec![end.get(Rank(0)) * 3 / 4, end.get(Rank(1)) * 3 / 4]);
        assert!(s.replay_to(&early).is_stopped());
        assert_eq!(s.markers(), early);
        // Forward jump: a post-rewind checkpoint at ≤ late must be reused.
        s.steps_replayed = 0;
        assert!(s.replay_to(&late).is_stopped());
        assert_eq!(s.markers(), late);
        let total: u64 = end.counts().iter().sum();
        assert!(
            s.steps_replayed < total / 2,
            "forward jump replayed {} of {total}",
            s.steps_replayed
        );
    }

    #[test]
    fn undo_returns_to_previous_stop() {
        let mut s = MachineSession::launch(factory(100), RecorderConfig::markers_only(), 25);
        s.set_threshold(Rank(0), Some(50));
        assert!(s.run().is_stopped());
        let first_stop = s.markers();
        s.set_threshold(Rank(0), Some(80));
        s.continue_all();
        assert_ne!(s.markers(), first_stop);
        assert!(s.undo());
        assert_eq!(s.markers(), first_stop);
    }

    #[test]
    fn backlog_is_logarithmic() {
        let mut s = MachineSession::launch(factory(5000), RecorderConfig::markers_only(), 10);
        assert!(s.run().is_completed());
        // ~20000 events at interval 10 would be ~2000 checkpoints without
        // thinning; the backlog must stay around log2(history) + recent.
        assert!(
            s.n_checkpoints() <= 64,
            "backlog must stay logarithmic: {}",
            s.n_checkpoints()
        );
    }

    #[test]
    fn jump_cost_proportional_to_distance() {
        let mut s = MachineSession::launch(factory(5000), RecorderConfig::markers_only(), 64);
        assert!(s.run().is_completed());
        let end = s.markers();
        let total: u64 = end.counts().iter().sum();
        // A short jump back (2% of history) must not replay the world.
        let target = MarkerVector::from_counts(end.counts().iter().map(|c| c * 98 / 100).collect());
        let distance = total - target.counts().iter().sum::<u64>();
        s.steps_replayed = 0;
        assert!(s.replay_to(&target).is_stopped());
        assert!(
            s.steps_replayed <= 2 * distance + 256,
            "short jump (distance {distance}) replayed {}",
            s.steps_replayed
        );
    }
}
