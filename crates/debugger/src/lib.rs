//! The p2d2-style trace-driven debugger (§4).
//!
//! This crate assembles the substrates into the paper's contribution: a
//! state-based parallel debugger extended with trace-driven features —
//!
//! * **stoplines** ([`Stopline`]) — a breakpoint in the timeline: from a
//!   clicked time (vertical slice) or from a selected event's past/future
//!   frontier, mapped to one execution-marker threshold per process;
//! * **controlled replay** ([`Session::replay_to`]) — restart the target
//!   program, arm the `UserMonitor` thresholds, and force wildcard receive
//!   matches from the recorded history so the re-execution has identical
//!   event causality (§4.2);
//! * **parallel undo** ([`Session::undo`]) — return every process to its
//!   state at the previous debugger stop, implemented — as §6 says — "in
//!   straightforward manner by re-executing until an execution marker
//!   threshold is encountered";
//! * **O(delta) replay** ([`CheckpointCache`]) — every stop may deposit an
//!   engine checkpoint; `replay_to`/`undo` restore the nearest dominated
//!   snapshot and re-execute only the remaining delta instead of starting
//!   from process creation (§6's "logarithmic backlog" of saved states);
//! * **communication supervision** ([`HistoryReport`]) — unmatched
//!   sends/receives, circular-wait deadlocks, message races (§4.4);
//! * a text **command interface** ([`commands::CommandInterface`]) used by
//!   the scripted debugging sessions in the figure-reproduction harnesses.

pub mod analysis;
pub mod checkpoint_cache;
pub mod commands;
pub mod machine_session;
pub mod procset;
pub mod schedule_replay;
pub mod session;
pub mod stopline;
pub mod undo;

pub use analysis::HistoryReport;
pub use checkpoint_cache::{CacheLookupStats, CheckpointCache};
pub use commands::CommandInterface;
pub use machine_session::{MachineFactory, MachineSession, MachineSessionStatus};
pub use procset::ProcSets;
pub use schedule_replay::{
    classify, replay_schedule, replay_schedule_from_checkpoint, CheckpointReplay, ScheduleReplay,
};
pub use session::{ProgramFactory, Session, SessionConfig, SessionStatus, SessionTelemetry};
pub use stopline::Stopline;
pub use undo::UndoStack;
