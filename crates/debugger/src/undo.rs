//! The undo stack (§4.2).
//!
//! "Every time a target process stops, p2d2 records its execution marker.
//! If an undo operation is requested, the debugger replays the program,
//! setting the threshold variables of UserMonitor."
//!
//! The stack also implements the §6 refinement of "keeping a logarithmic
//! backlog": when stop history grows beyond a bound, older entries are
//! thinned to exponentially sparse spacing, so arbitrarily long sessions
//! keep O(log n) undo targets without unbounded memory.

use tracedbg_trace::MarkerVector;

/// Stack of stop states (marker vectors), most recent last.
#[derive(Debug, Clone)]
pub struct UndoStack {
    stops: Vec<MarkerVector>,
    /// Thinning threshold: when `stops` exceeds this, compact.
    max_len: usize,
}

impl UndoStack {
    pub fn new() -> Self {
        Self::with_capacity(64)
    }

    /// `max_len` ≥ 8: how many stops to keep before thinning.
    pub fn with_capacity(max_len: usize) -> Self {
        UndoStack {
            stops: Vec::new(),
            max_len: max_len.max(8),
        }
    }

    /// Record a stop.
    pub fn push(&mut self, markers: MarkerVector) {
        // Re-stopping at the same state (e.g. a replay landing on the
        // recorded stop) does not create a new undo level.
        if self.stops.last() == Some(&markers) {
            return;
        }
        self.stops.push(markers);
        if self.stops.len() > self.max_len {
            self.compact();
        }
    }

    /// The state to replay to for an undo: discards the current stop and
    /// returns (removing it) the previous one. The caller's replay will
    /// push the target back as the new current stop.
    pub fn undo_target(&mut self) -> Option<MarkerVector> {
        if self.stops.len() < 2 {
            return None;
        }
        self.stops.pop();
        self.stops.pop()
    }

    pub fn len(&self) -> usize {
        self.stops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.stops.is_empty()
    }

    pub fn last(&self) -> Option<&MarkerVector> {
        self.stops.last()
    }

    /// Thin old history to exponential spacing: keep the newest half
    /// untouched; in the older half keep every other entry, recursively
    /// biasing retention toward recent stops.
    fn compact(&mut self) {
        let keep_recent = self.max_len / 2;
        let old = self.stops.len() - keep_recent;
        let mut thinned = Vec::with_capacity(self.stops.len() / 2 + keep_recent);
        for (i, s) in self.stops[..old].iter().enumerate() {
            if i % 2 == 0 {
                thinned.push(s.clone());
            }
        }
        thinned.extend_from_slice(&self.stops[old..]);
        self.stops = thinned;
    }
}

impl Default for UndoStack {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mv(a: u64, b: u64) -> MarkerVector {
        MarkerVector::from_counts(vec![a, b])
    }

    #[test]
    fn undo_pops_two() {
        let mut u = UndoStack::new();
        u.push(mv(1, 1));
        u.push(mv(2, 1));
        u.push(mv(3, 1));
        assert_eq!(u.undo_target(), Some(mv(2, 1)));
        assert_eq!(u.len(), 1);
        // Replay would push the target back:
        u.push(mv(2, 1));
        assert_eq!(u.undo_target(), Some(mv(1, 1)));
    }

    #[test]
    fn single_stop_cannot_undo() {
        let mut u = UndoStack::new();
        assert_eq!(u.undo_target(), None);
        u.push(mv(1, 1));
        assert_eq!(u.undo_target(), None);
        assert_eq!(u.len(), 1);
    }

    #[test]
    fn duplicate_stops_are_coalesced() {
        let mut u = UndoStack::new();
        u.push(mv(1, 1));
        u.push(mv(1, 1));
        assert_eq!(u.len(), 1);
    }

    #[test]
    fn compaction_bounds_length_and_keeps_recent() {
        let mut u = UndoStack::with_capacity(16);
        for i in 0..200u64 {
            u.push(mv(i, 0));
        }
        assert!(u.len() <= 16 + 1, "len {}", u.len());
        // The most recent stop survives intact.
        assert_eq!(u.last(), Some(&mv(199, 0)));
    }

    #[test]
    fn compaction_preserves_order() {
        let mut u = UndoStack::with_capacity(8);
        for i in 0..50u64 {
            u.push(mv(i, 0));
        }
        // Drain the stack: retained stops must be strictly decreasing.
        let mut seq = Vec::new();
        while let Some(t) = u.undo_target() {
            seq.push(t.get(tracedbg_trace::Rank(0)));
            u.push(t); // replay pushes the target back as current
        }
        let mut sorted = seq.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        sorted.dedup();
        assert_eq!(seq, sorted, "undo targets go strictly backwards: {seq:?}");
    }
}
