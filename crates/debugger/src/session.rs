//! A debugging session over the simulated runtime.
//!
//! The session owns the target program (as a *factory*, because replay and
//! undo re-execute it from the start — §6: "our current implementation of
//! replay and undo is done in straightforward manner by re-executing until
//! an execution marker threshold is encountered"), the engine incarnation
//! currently running it, the recorded receive-match log, and the undo
//! stack of stop states.

use crate::checkpoint_cache::{CacheLookupStats, CheckpointCache};
use crate::stopline::Stopline;
use crate::undo::UndoStack;
use tracedbg_mpsim::DeadlockReport;
use tracedbg_mpsim::{
    CostModel, Engine, EngineCheckpoint, EngineConfig, EngineMetrics, FaultPlan, RankProgram,
    RecorderConfig, ReplayLog, RunOutcome, SchedPolicy,
};
use tracedbg_trace::{Marker, MarkerVector, Rank, SiteTable, TraceRecord, TraceStore};

/// Recreates the target program for each (re-)execution.
pub type ProgramFactory = Box<dyn Fn() -> Vec<RankProgram> + Send + Sync>;

/// Session construction parameters.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    pub cost: CostModel,
    pub policy: SchedPolicy,
    pub recorder: RecorderConfig,
    /// Faults to inject into every incarnation of the target (explorer
    /// schedule replays carry the fault plan of the run they reproduce).
    pub faults: FaultPlan,
    /// Deposit an [`EngineCheckpoint`] in the session's cache every Nth
    /// debugger stop, so `replay_to`/`undo` restore the nearest dominated
    /// checkpoint and re-execute only the delta. `0` disables
    /// checkpointing entirely (every replay re-executes from scratch, the
    /// pre-checkpoint behavior; also skips the engine's reply logging).
    pub checkpoint_every: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            cost: CostModel::default(),
            policy: SchedPolicy::default(),
            recorder: RecorderConfig::default(),
            faults: FaultPlan::default(),
            checkpoint_every: 1,
        }
    }
}

/// Where the session currently stands.
#[derive(Debug)]
pub enum SessionStatus {
    /// Launched but not yet run.
    Idle,
    /// Stopped at traps and/or pauses.
    Stopped {
        traps: Vec<Marker>,
        paused: Vec<Rank>,
    },
    Completed,
    Deadlocked(DeadlockReport),
    Panicked {
        rank: Rank,
        message: String,
    },
}

impl SessionStatus {
    pub fn is_stopped(&self) -> bool {
        matches!(self, SessionStatus::Stopped { .. })
    }

    pub fn is_completed(&self) -> bool {
        matches!(self, SessionStatus::Completed)
    }

    pub fn is_deadlocked(&self) -> bool {
        matches!(self, SessionStatus::Deadlocked(_))
    }
}

/// A live debugging session.
pub struct Session {
    factory: ProgramFactory,
    cfg: SessionConfig,
    /// One site table for the whole session: location ids are stable
    /// across recording, replay and restart incarnations.
    sites: SiteTable,
    engine: Engine,
    status: SessionStatus,
    undo: UndoStack,
    /// Match log recorded by the most recent from-scratch run.
    recorded_log: Option<ReplayLog>,
    /// Is the current engine incarnation a replay?
    replaying: bool,
    /// Logarithmic backlog of stop-state checkpoints (§6): replay targets
    /// restore the nearest dominated entry instead of starting over.
    ckpts: CheckpointCache,
    /// Stops seen since launch/restart (drives `checkpoint_every`).
    stop_count: usize,
    /// Engine metrics folded in from retired incarnations (replay and
    /// restart replace the engine; its telemetry is absorbed here first).
    retired_metrics: EngineMetrics,
    /// Checkpoint restores performed by `replay_from_checkpoint`.
    restores: u64,
    /// Wall-clock nanoseconds those restores took.
    restore_ns: u64,
    /// Snapshot time folded in from retired incarnations.
    retired_snapshot_ns: u64,
}

/// The session's telemetry snapshot: engine metrics summed over every
/// incarnation, plus checkpoint-cache and restore behaviour.
#[derive(Clone, Debug)]
pub struct SessionTelemetry {
    pub engine: EngineMetrics,
    pub cache: CacheLookupStats,
    pub cache_len: usize,
    pub restores: u64,
    pub restore_ns: u64,
    pub snapshot_ns: u64,
}

impl Session {
    /// Launch the target program (processes created, nothing run yet).
    pub fn launch(cfg: SessionConfig, factory: ProgramFactory) -> Self {
        let sites = SiteTable::new();
        let engine = Engine::launch(
            EngineConfig {
                cost: cfg.cost,
                policy: cfg.policy.clone(),
                recorder: cfg.recorder.clone(),
                replay: None,
                sites: Some(sites.clone()),
                faults: cfg.faults.clone(),
                checkpoints: cfg.checkpoint_every > 0,
                // The debugger is interactive: telemetry is always on (it
                // feeds the `stats` command) and its cost is noise next to
                // a human at the prompt.
                metrics: true,
            },
            factory(),
        );
        let n = engine.n_ranks();
        Session {
            factory,
            cfg,
            sites,
            engine,
            status: SessionStatus::Idle,
            undo: UndoStack::new(),
            recorded_log: None,
            replaying: false,
            ckpts: CheckpointCache::new(),
            stop_count: 0,
            retired_metrics: EngineMetrics::new(n),
            restores: 0,
            restore_ns: 0,
            retired_snapshot_ns: 0,
        }
    }

    pub fn n_ranks(&self) -> usize {
        self.engine.n_ranks()
    }

    pub fn status(&self) -> &SessionStatus {
        &self.status
    }

    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Stream every trace record of the current engine incarnation into a
    /// [`tracedbg_trace::TraceSink`] (e.g. an on-disk store writer) as the
    /// run executes. Replay and restart replace the engine, so attach
    /// before the first `run` of the incarnation you want persisted.
    pub fn attach_trace_sink(&mut self, sink: Box<dyn tracedbg_trace::TraceSink>) {
        self.engine.attach_trace_sink(sink);
    }

    /// Detach the streaming sink so its owner can finish it.
    pub fn detach_trace_sink(&mut self) -> Option<Box<dyn tracedbg_trace::TraceSink>> {
        self.engine.detach_trace_sink()
    }

    /// Run until the next stop/completion/deadlock, recording the stop on
    /// the undo stack.
    pub fn run(&mut self) -> &SessionStatus {
        let outcome = self.engine.run();
        self.status = match outcome {
            RunOutcome::Completed => SessionStatus::Completed,
            RunOutcome::Deadlock(d) => SessionStatus::Deadlocked(d),
            RunOutcome::Stopped(s) => SessionStatus::Stopped {
                traps: s.traps,
                paused: s.paused,
            },
            RunOutcome::Panicked { rank, message } => SessionStatus::Panicked { rank, message },
        };
        // Keep the freshest full match log for replay (only from recording
        // incarnations — a replay's log is just the forced history again).
        if !self.replaying {
            self.recorded_log = Some(self.engine.match_log());
        }
        self.undo.push(self.engine.markers());
        // Deposit a checkpoint at (every Nth) stop: only Stopped states are
        // replay/undo targets, and only they can make further progress.
        if self.status.is_stopped() && self.engine.checkpoints_enabled() {
            self.stop_count += 1;
            let every = self.cfg.checkpoint_every;
            if every > 0 && self.stop_count % every == 0 {
                self.ckpts.insert(self.engine.snapshot());
            }
        }
        &self.status
    }

    /// Resume every trapped process and run on (breakpoint thresholds are
    /// cleared — with counter-threshold semantics a kept threshold would
    /// re-trap on the very next event).
    pub fn continue_all(&mut self) -> &SessionStatus {
        self.engine.clear_thresholds();
        self.engine.clear_pauses();
        self.engine.resume_trapped();
        self.run()
    }

    /// Single-step one process by one instrumentation event; all other
    /// processes hold (the paper's antidote to the fatal "step over" —
    /// execution cannot run away).
    pub fn step(&mut self, rank: Rank) -> &SessionStatus {
        let cur = self.engine.markers().get(rank);
        self.engine.set_threshold(rank, Some(cur + 1));
        for r in 0..self.engine.n_ranks() {
            if r != rank.ix() {
                self.engine.set_paused(Rank(r as u32), true);
            }
        }
        self.engine.resume_rank(rank);
        self.run();
        for r in 0..self.engine.n_ranks() {
            self.engine.set_paused(Rank(r as u32), false);
        }
        self.engine.set_threshold(rank, None);
        &self.status
    }

    /// Step every process in a set by one event while the rest hold —
    /// p2d2's set-oriented stepping.
    pub fn step_set(&mut self, ranks: &std::collections::BTreeSet<Rank>) -> &SessionStatus {
        let markers = self.engine.markers();
        for r in 0..self.engine.n_ranks() {
            let rank = Rank(r as u32);
            if ranks.contains(&rank) {
                if !self.engine.is_finished(rank) {
                    self.engine.set_threshold(rank, Some(markers.get(rank) + 1));
                }
                self.engine.resume_rank(rank);
            } else {
                self.engine.set_paused(rank, true);
            }
        }
        self.run();
        for r in 0..self.engine.n_ranks() {
            let rank = Rank(r as u32);
            self.engine.set_paused(rank, false);
            if ranks.contains(&rank) {
                self.engine.set_threshold(rank, None);
            }
        }
        &self.status
    }

    /// Verify replay fidelity (§4.2's "identical event causality"): re-run
    /// the program from scratch under the recorded match log in a separate
    /// engine and diff its trace against this session's history so far.
    /// Returns the divergences (empty = faithful). Requires a recorded run.
    pub fn verify_replay(&mut self) -> Vec<tracedbg_trace::Divergence> {
        let mut log = self
            .recorded_log
            .clone()
            .unwrap_or_else(|| self.engine.match_log());
        log.reset();
        let mine = self.trace();
        let final_markers = mine.final_markers();
        let mut other = Engine::launch(
            EngineConfig {
                cost: self.cfg.cost,
                policy: self.cfg.policy.clone(),
                recorder: self.cfg.recorder.clone(),
                replay: Some(log),
                sites: Some(self.sites.clone()),
                faults: self.cfg.faults.clone(),
                checkpoints: false,
                metrics: false,
            },
            (self.factory)(),
        );
        // Stop the verification run exactly where this session's history
        // ends, so partial histories (stopped sessions) compare cleanly.
        other.arm_stopline(&final_markers);
        let _ = other.run();
        let theirs = other.trace_store();
        tracedbg_trace::diff_traces(&mine, &theirs, tracedbg_trace::DiffMode::Exact)
    }

    /// Step every non-finished process by one event.
    pub fn step_all(&mut self) -> &SessionStatus {
        let markers = self.engine.markers();
        for m in markers.iter() {
            if !self.engine.is_finished(m.rank) {
                self.engine.set_threshold(m.rank, Some(m.count + 1));
            }
        }
        self.engine.resume_trapped();
        self.run();
        self.engine.clear_thresholds();
        &self.status
    }

    /// Current execution markers.
    pub fn markers(&self) -> MarkerVector {
        self.engine.markers()
    }

    /// Everything traced so far, as a queryable store.
    pub fn trace(&mut self) -> TraceStore {
        self.engine.trace_store()
    }

    /// Arm a stopline and (re-)execute to it under nondeterminism control:
    /// the §4.1/§4.2 replay. The program restarts from scratch; wildcard
    /// receives are forced to their recorded matches; every process stops
    /// when its `UserMonitor` counter reaches the stopline marker.
    pub fn replay_to(&mut self, stopline: &Stopline) -> &SessionStatus {
        if let Some(cp) = self.ckpts.best_for(&stopline.markers) {
            return self.replay_from_checkpoint(&cp, stopline);
        }
        let mut log = self
            .recorded_log
            .clone()
            .unwrap_or_else(|| self.engine.match_log());
        log.reset();
        self.retire_engine_metrics();
        self.engine = Engine::launch(
            EngineConfig {
                cost: self.cfg.cost,
                policy: self.cfg.policy.clone(),
                recorder: self.cfg.recorder.clone(),
                replay: Some(log),
                sites: Some(self.sites.clone()),
                faults: self.cfg.faults.clone(),
                checkpoints: self.cfg.checkpoint_every > 0,
                metrics: true,
            },
            (self.factory)(),
        );
        self.replaying = true;
        self.engine.arm_stopline(&stopline.markers);
        self.run()
    }

    /// Fold the outgoing engine incarnation's telemetry into the
    /// session-level accumulator (called before every engine replacement).
    fn retire_engine_metrics(&mut self) {
        self.retired_snapshot_ns += self.engine.snapshot_ns();
        if let Some(m) = self.engine.take_metrics() {
            self.retired_metrics.merge(&m);
        }
    }

    /// The O(delta) replay path: restore a dominated checkpoint and
    /// re-execute only from its markers to the stopline's.
    fn replay_from_checkpoint(
        &mut self,
        cp: &EngineCheckpoint,
        stopline: &Stopline,
    ) -> &SessionStatus {
        self.retire_engine_metrics();
        let t0 = std::time::Instant::now();
        self.engine = Engine::restore(cp, (self.factory)());
        // A restored engine comes up with telemetry off; re-enable before
        // `set_replay_delta` so the delta length lands in the histogram.
        self.engine.enable_metrics();
        // Pin the remaining wildcard matches from the recorded history:
        // the engine advances the log's cursors past everything the
        // checkpoint already consumed, so only the delta is forced.
        if let Some(log) = self.recorded_log.clone() {
            self.engine.set_replay_delta(log);
        }
        self.restores += 1;
        self.restore_ns += t0.elapsed().as_nanos() as u64;
        // The snapshot carries whatever thresholds/pauses were armed when
        // it was taken; replace them with the stopline's.
        self.engine.clear_thresholds();
        self.engine.clear_pauses();
        let cur = cp.markers();
        for m in stopline.markers.iter() {
            if cur.get(m.rank) < m.count {
                self.engine.set_threshold(m.rank, Some(m.count));
                self.engine.resume_rank(m.rank);
            } else if !self.engine.is_finished(m.rank) {
                // Already at (or past) the target: hold — an exact-hit
                // restore is the stop itself, no re-execution at all.
                self.engine.set_paused(m.rank, true);
            }
        }
        self.replaying = true;
        self.run();
        // Drop the at-target holds now that the stop is reported, so
        // stepping/continuing from here behaves like any other stop
        // (resume_rank does not clear pause flags).
        self.engine.clear_pauses();
        &self.status
    }

    /// Parallel undo (§4.2): replay to the stop state preceding the most
    /// recent resumption.
    ///
    /// Returns `false` when there is no earlier stop to return to.
    pub fn undo(&mut self) -> bool {
        let Some(target) = self.undo.undo_target() else {
            return false;
        };
        let sl = Stopline {
            markers: target,
            origin: "undo".into(),
        };
        self.replay_to(&sl);
        true
    }

    /// Restart the program from scratch *without* replay forcing (a fresh
    /// recording run).
    pub fn restart(&mut self) -> &SessionStatus {
        self.retire_engine_metrics();
        self.engine = Engine::launch(
            EngineConfig {
                cost: self.cfg.cost,
                policy: self.cfg.policy.clone(),
                recorder: self.cfg.recorder.clone(),
                replay: None,
                sites: Some(self.sites.clone()),
                faults: self.cfg.faults.clone(),
                checkpoints: self.cfg.checkpoint_every > 0,
                metrics: true,
            },
            (self.factory)(),
        );
        self.replaying = false;
        self.undo = UndoStack::new();
        self.status = SessionStatus::Idle;
        // A fresh recording run replaces the history the cached
        // checkpoints were taken from; drop them.
        self.ckpts.clear();
        self.stop_count = 0;
        &self.status
    }

    /// The most recent probe value with this label on a rank, from the
    /// trace collected so far — the stand-in for inspecting a local
    /// variable at a stop (Figure 7's `jres`).
    pub fn latest_probe(&mut self, rank: Rank, label: &str) -> Option<i64> {
        let store = self.trace();
        store
            .by_rank(rank)
            .iter()
            .rev()
            .map(|&id| store.record(id).clone())
            .find(|r: &TraceRecord| {
                r.kind == tracedbg_trace::EventKind::Probe && r.label.as_deref() == Some(label)
            })
            .map(|r| r.args[0])
    }

    /// Recent `UserMonitor` ring entries of a rank, resolved to source
    /// locations (the "where" report at a stop).
    pub fn where_is(&self, rank: Rank) -> Vec<String> {
        let sites = self.engine.sites().clone();
        self.engine
            .recent_calls(rank)
            .into_iter()
            .map(|e| {
                let loc = sites
                    .resolve(e.site)
                    .map(|l| l.to_string())
                    .unwrap_or_else(|| "?".into());
                format!(
                    "marker {} at {} args=({}, {})",
                    e.marker, loc, e.args[0], e.args[1]
                )
            })
            .collect()
    }

    /// The undo stack (stop history).
    pub fn undo_stack(&self) -> &UndoStack {
        &self.undo
    }

    /// The checkpoint backlog (empty when `checkpoint_every` is 0).
    pub fn checkpoint_cache(&self) -> &CheckpointCache {
        &self.ckpts
    }

    /// The session's telemetry: engine metrics summed across every
    /// incarnation so far, plus checkpoint-cache lookup and restore cost
    /// figures (the replay-cost visibility §6's checkpointing asks for).
    pub fn telemetry(&self) -> SessionTelemetry {
        let mut engine = self.retired_metrics.clone();
        if let Some(m) = self.engine.metrics() {
            engine.merge(m);
        }
        SessionTelemetry {
            engine,
            cache: self.ckpts.stats(),
            cache_len: self.ckpts.len(),
            restores: self.restores,
            restore_ns: self.restore_ns,
            snapshot_ns: self.retired_snapshot_ns + self.engine.snapshot_ns(),
        }
    }

    // ---- breakpoints & watchpoints ----
    //
    // Location breakpoints resolve through the shared site table, which is
    // populated as instrumented code executes. The trace-driven workflow —
    // record a run first, then replay with breakpoints — guarantees the
    // sites exist. Breakpoints survive `continue_all` (unlike the
    // counter-threshold, which must be cleared to avoid immediate
    // re-trapping) but are *not* carried across `replay_to`/`restart`
    // engine incarnations; re-arm after replaying.

    /// Arm a breakpoint on every site of a function. Returns how many
    /// sites were armed (0 if the function never executed yet).
    pub fn break_at_function(&mut self, func: &str) -> usize {
        let sites = self.engine.sites().find_function(func);
        for s in &sites {
            self.engine.add_breakpoint(*s);
        }
        sites.len()
    }

    /// Arm a breakpoint at a file:line. Returns how many sites matched.
    pub fn break_at_line(&mut self, file: &str, line: u32) -> usize {
        let sites = self.engine.sites().find_line(file, line);
        for s in &sites {
            self.engine.add_breakpoint(*s);
        }
        sites.len()
    }

    /// Arm a watchpoint on a probe label (all ranks if `rank` is `None`).
    pub fn watch(&mut self, rank: Option<Rank>, label: &str, cond: tracedbg_instrument::WatchCond) {
        self.engine
            .add_watch(rank, tracedbg_instrument::Watch::new(label, cond));
    }

    /// Disarm all breakpoints and watchpoints.
    pub fn clear_breaks(&mut self) {
        self.engine.clear_breaks();
    }

    /// Why a rank's most recent trap fired.
    pub fn why(&self, rank: Rank) -> Option<tracedbg_instrument::TrapCause> {
        self.engine.trap_cause(rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_mpsim::{Payload, ProgramFn, Tag};

    fn two_proc_factory() -> ProgramFactory {
        Box::new(|| {
            let p0: ProgramFn = Box::new(|ctx| {
                let s = ctx.site("sess.rs", 1, "p0");
                for i in 0..5 {
                    ctx.compute(100, s);
                    ctx.probe("i", i, s);
                }
                ctx.send(Rank(1), Tag(1), Payload::from_i64(99), s);
            });
            let p1: ProgramFn = Box::new(|ctx| {
                let s = ctx.site("sess.rs", 2, "p1");
                let m = ctx.recv_from(Rank(0), Tag(1), s);
                ctx.probe("got", m.payload.to_i64().unwrap(), s);
            });
            vec![p0.into(), p1.into()]
        })
    }

    fn session() -> Session {
        Session::launch(
            SessionConfig {
                recorder: RecorderConfig::full(),
                ..Default::default()
            },
            two_proc_factory(),
        )
    }

    #[test]
    fn run_to_completion() {
        let mut s = session();
        assert!(s.run().is_completed());
        assert_eq!(s.latest_probe(Rank(1), "got"), Some(99));
        assert_eq!(s.latest_probe(Rank(0), "i"), Some(4));
        assert_eq!(s.latest_probe(Rank(0), "nope"), None);
    }

    #[test]
    fn stopline_replay_stops_at_markers() {
        let mut s = session();
        assert!(s.run().is_completed());
        let store = s.trace();
        // Stop P0 after its 3rd compute: ProcStart(1) c(2) p(3) c(4) p(5) c(6)
        let sl = Stopline {
            markers: MarkerVector::from_counts(vec![6, 1]),
            origin: "test".into(),
        };
        match s.replay_to(&sl) {
            SessionStatus::Stopped { traps, .. } => {
                assert_eq!(traps.len(), 2, "{traps:?}");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s.markers().get(Rank(0)), 6);
        assert_eq!(s.markers().get(Rank(1)), 1);
        drop(store);
        // Continue to the end.
        assert!(s.continue_all().is_completed());
    }

    #[test]
    fn step_advances_one_marker() {
        let mut s = session();
        assert!(s.run().is_completed());
        let sl = Stopline {
            markers: MarkerVector::from_counts(vec![2, 1]),
            origin: "test".into(),
        };
        s.replay_to(&sl);
        let before = s.markers().get(Rank(0));
        s.step(Rank(0));
        assert_eq!(s.markers().get(Rank(0)), before + 1);
        assert_eq!(s.markers().get(Rank(1)), 1, "other rank held");
    }

    #[test]
    fn undo_returns_to_previous_stop() {
        let mut s = session();
        assert!(s.run().is_completed());
        let sl = Stopline {
            markers: MarkerVector::from_counts(vec![4, 1]),
            origin: "first stop".into(),
        };
        s.replay_to(&sl);
        let at_first = s.markers();
        s.step(Rank(0));
        s.step(Rank(0));
        assert_ne!(s.markers(), at_first);
        assert!(s.undo(), "one undo");
        // Undo returns to the state before the last resumption, i.e. the
        // stop after the first step.
        assert_eq!(s.markers().get(Rank(0)), 5);
        assert!(s.undo(), "second undo back to the stopline");
        assert_eq!(s.markers(), at_first);
    }

    #[test]
    fn undo_with_no_history_is_refused() {
        let mut s = session();
        assert!(!s.undo());
    }

    #[test]
    fn step_all_advances_every_live_rank() {
        let mut s = session();
        assert!(s.run().is_completed());
        let sl = Stopline {
            markers: MarkerVector::from_counts(vec![2, 1]),
            origin: "test".into(),
        };
        s.replay_to(&sl);
        s.step_all();
        assert_eq!(s.markers().counts(), &[3, 2]);
    }

    #[test]
    fn where_reports_sites() {
        let mut s = session();
        let sl = Stopline {
            markers: MarkerVector::from_counts(vec![3, 1]),
            origin: "test".into(),
        };
        s.run();
        s.replay_to(&sl);
        let w = s.where_is(Rank(0));
        assert!(!w.is_empty());
        assert!(w[0].contains("sess.rs"), "{w:?}");
    }

    #[test]
    fn restart_resets() {
        let mut s = session();
        s.run();
        s.restart();
        assert!(matches!(s.status(), SessionStatus::Idle));
        assert!(s.run().is_completed());
    }

    #[test]
    fn breakpoint_on_function_stops_each_visit() {
        let mut s = session();
        assert!(s.run().is_completed()); // record: interns the sites
        let sl = Stopline {
            markers: MarkerVector::from_counts(vec![1, 1]),
            origin: "start".into(),
        };
        s.replay_to(&sl);
        // Break on the probe site inside p0's loop ("sess.rs" line 1 is
        // both compute and probe's function scope? sites are per
        // (file,line,func): p0 used one site for everything).
        let armed = s.break_at_function("p0");
        assert!(armed > 0);
        // Continue: P0 traps at its next event at that site.
        s.continue_all();
        match s.status() {
            SessionStatus::Stopped { traps, .. } => {
                assert!(!traps.is_empty());
            }
            other => panic!("{other:?}"),
        }
        match s.why(Rank(0)) {
            Some(tracedbg_instrument::TrapCause::Breakpoint(_)) => {}
            other => panic!("expected breakpoint cause, got {other:?}"),
        }
        // Breakpoints survive continue; the next event at the site traps
        // again, strictly later.
        let m1 = s.markers().get(Rank(0));
        s.continue_all();
        if s.status().is_stopped() {
            assert!(s.markers().get(Rank(0)) > m1);
        }
        // After clearing, the run completes.
        s.clear_breaks();
        while s.status().is_stopped() {
            s.continue_all();
        }
        assert!(s.status().is_completed());
    }

    #[test]
    fn watchpoint_on_probe_value() {
        let mut s = session();
        assert!(s.run().is_completed());
        let sl = Stopline {
            markers: MarkerVector::from_counts(vec![1, 1]),
            origin: "start".into(),
        };
        s.replay_to(&sl);
        // p0 probes i = 0,1,2,3,4; trap when i == 3.
        s.watch(
            Some(Rank(0)),
            "i",
            tracedbg_instrument::WatchCond::Equals(3),
        );
        s.continue_all();
        assert!(s.status().is_stopped(), "{:?}", s.status());
        match s.why(Rank(0)) {
            Some(tracedbg_instrument::TrapCause::Watch { label, value }) => {
                assert_eq!(label, "i");
                assert_eq!(value, 3);
            }
            other => panic!("expected watch cause, got {other:?}"),
        }
        assert_eq!(s.latest_probe(Rank(0), "i"), Some(3));
        s.clear_breaks();
        assert!(s.continue_all().is_completed());
    }

    #[test]
    fn checkpointed_session_matches_scratch_session() {
        // Drive the same debugging script through a checkpointing session
        // and a scratch-only one: every observable state must agree.
        let mut fast = session(); // checkpoint_every: 1 (default)
        let mut slow = Session::launch(
            SessionConfig {
                recorder: RecorderConfig::full(),
                checkpoint_every: 0,
                ..Default::default()
            },
            two_proc_factory(),
        );
        let script = |s: &mut Session| -> Vec<MarkerVector> {
            let mut states = Vec::new();
            assert!(s.run().is_completed());
            let sl = Stopline {
                markers: MarkerVector::from_counts(vec![4, 1]),
                origin: "t".into(),
            };
            s.replay_to(&sl);
            states.push(s.markers());
            s.step(Rank(0));
            states.push(s.markers());
            s.step(Rank(0));
            states.push(s.markers());
            assert!(s.undo());
            states.push(s.markers());
            assert!(s.undo());
            states.push(s.markers());
            assert!(s.continue_all().is_completed());
            states.push(s.markers());
            states
        };
        let fast_states = script(&mut fast);
        let slow_states = script(&mut slow);
        assert_eq!(fast_states, slow_states);
        assert!(
            !fast.checkpoint_cache().is_empty(),
            "fast path must actually cache"
        );
        assert!(slow.checkpoint_cache().is_empty());
        // Full histories agree byte for byte.
        assert_eq!(fast.trace().records(), slow.trace().records());
    }

    #[test]
    fn undo_from_checkpoint_is_a_pure_restore() {
        let mut s = session();
        assert!(s.run().is_completed());
        let sl = Stopline {
            markers: MarkerVector::from_counts(vec![4, 1]),
            origin: "t".into(),
        };
        s.replay_to(&sl);
        s.step(Rank(0));
        let at_step = s.markers();
        s.step(Rank(0));
        // The stop after the first step was checkpointed; undoing to it is
        // an exact cache hit (no re-execution), and the session reports
        // the same stopped state.
        assert!(s.undo());
        assert_eq!(s.markers(), at_step);
        assert!(s.status().is_stopped());
        // The restored incarnation keeps working: step again, finish.
        s.step(Rank(0));
        assert_eq!(s.markers().get(Rank(0)), at_step.get(Rank(0)) + 1);
        assert!(s.continue_all().is_completed());
    }

    #[test]
    fn telemetry_spans_incarnations_and_counts_restores() {
        let mut s = session();
        assert!(s.run().is_completed());
        let turns_first_run = s.telemetry().engine.turns;
        assert!(turns_first_run > 0, "metrics are on by default");
        let sl = Stopline {
            markers: MarkerVector::from_counts(vec![4, 1]),
            origin: "t".into(),
        };
        s.replay_to(&sl); // scratch replay: metrics absorbed, new engine
        s.step(Rank(0));
        s.step(Rank(0));
        assert!(s.undo(), "undo restores a cached checkpoint");
        let tel = s.telemetry();
        assert!(
            tel.engine.turns > turns_first_run,
            "replay incarnations add turns: {} vs {}",
            tel.engine.turns,
            turns_first_run
        );
        assert!(tel.restores >= 1, "undo went through the restore path");
        assert!(tel.cache.hits >= 1);
        assert!(
            tel.engine.replay_delta.count >= 1,
            "delta replay recorded its length"
        );
        assert!(tel.engine.msgs_sent.iter().sum::<u64>() >= 1);
    }

    #[test]
    fn replay_after_deadlock_stops_before_it() {
        // Deadlocking pair; replay to just before the fatal receives.
        let factory: ProgramFactory = Box::new(|| {
            let p0: ProgramFn = Box::new(|ctx| {
                let s = ctx.site("d.rs", 1, "p0");
                ctx.compute(10, s);
                let _ = ctx.recv_from(Rank(1), Tag(0), s);
            });
            let p1: ProgramFn = Box::new(|ctx| {
                let s = ctx.site("d.rs", 2, "p1");
                ctx.compute(10, s);
                let _ = ctx.recv_from(Rank(0), Tag(0), s);
            });
            vec![p0.into(), p1.into()]
        });
        let mut s = Session::launch(
            SessionConfig {
                recorder: RecorderConfig::full(),
                ..Default::default()
            },
            factory,
        );
        assert!(s.run().is_deadlocked());
        // Each: ProcStart(1) compute(2) recvpost(3). Stop at 2.
        let sl = Stopline {
            markers: MarkerVector::from_counts(vec![2, 2]),
            origin: "before deadlock".into(),
        };
        assert!(s.replay_to(&sl).is_stopped());
        assert_eq!(s.markers().counts(), &[2, 2]);
    }

    #[test]
    fn delta_replay_repins_a_blocked_receive() {
        // Regression: a receive consumes its replay-log entry when the
        // request is serviced, not when it matches, so a checkpoint taken
        // while a rank is blocked in an unmatched receive has consumed one
        // entry beyond its match count. Advancing the log by match counts
        // alone left that rank's cursor one short, forcing its *next*
        // receive onto an already-delivered (src, seq) — an upward
        // `replay_to` past the checkpoint then deadlocked on a bogus
        // cyclic wait. Long enough rings reliably stop with ranks blocked
        // in the receive half of a forwarded hop.
        use tracedbg_workloads::ring::{self, RingConfig};
        let cfg = RingConfig {
            nprocs: 4,
            rounds: 8,
            hop_cost: 100,
            tag_stride: 0,
        };
        let mut s = Session::launch(
            SessionConfig {
                recorder: RecorderConfig::markers_only(),
                checkpoint_every: 1,
                ..Default::default()
            },
            Box::new(move || ring::programs(&cfg)),
        );
        assert!(s.run().is_completed());
        let target = s.markers();
        let frac = |num: u64, den: u64| Stopline {
            markers: MarkerVector::from_counts(
                target
                    .counts()
                    .iter()
                    .map(|c| (c * num / den).max(1))
                    .collect(),
            ),
            origin: "test".into(),
        };
        let quarter = frac(1, 4);
        let half = frac(1, 2);
        assert!(s.replay_to(&quarter).is_stopped());
        // The second replay restores the quarter checkpoint and replays
        // only the delta; before the fix it deadlocked partway there.
        assert!(s.replay_to(&half).is_stopped(), "{:?}", s.status());
        assert_eq!(s.markers(), half.markers);
    }
}
