//! Schedule-driven replay: re-execute an explorer artifact.
//!
//! `tracedbg explore` saves failures as [`ScheduleArtifact`]s — the fault
//! plan plus the full scheduling decision sequence of the failing run.
//! [`replay_schedule`] turns one back into a live execution: it builds a
//! [`Session`] whose scheduler follows the script and whose engine injects
//! the recorded faults, runs it to its outcome, and classifies what
//! happened. Because every source of nondeterminism is pinned, the outcome
//! is a pure function of the artifact — the debugger's §4.2 replay
//! guarantee extended from wildcard matches to whole schedules.

use crate::session::{ProgramFactory, Session, SessionConfig, SessionStatus};
use tracedbg_mpsim::{Engine, EngineConfig, FaultPlan, RecorderConfig, RunOutcome, SchedPolicy};
use tracedbg_trace::schedule::ScheduleArtifact;
use tracedbg_trace::TraceStore;

/// Outcome classes an artifact can reproduce. `failure_class` strings in
/// artifacts use these names.
pub const CLASS_COMPLETED: &str = "completed";
pub const CLASS_DEADLOCK: &str = "deadlock";
pub const CLASS_PANIC: &str = "panic";
pub const CLASS_STOPPED: &str = "stopped";

/// The result of replaying one schedule artifact.
pub struct ScheduleReplay {
    /// The session, stopped at the artifact's outcome; callers can inspect
    /// it further (traces, deadlock reports, undo, …).
    pub session: Session,
    /// Outcome class of the replayed run (one of the `CLASS_*` strings).
    pub class: String,
    /// Human-readable outcome detail (deadlock cycle, panic message, …).
    pub detail: String,
    /// Did the scripted scheduler apply every decision as recorded? A
    /// diverged replay still runs to an outcome, but it no longer
    /// reproduces the artifact's execution.
    pub diverged: bool,
}

impl ScheduleReplay {
    /// The replayed run's trace.
    pub fn trace(&mut self) -> TraceStore {
        self.session.trace()
    }
}

/// Classify a session status into an artifact failure class.
pub fn classify(status: &SessionStatus) -> (String, String) {
    match status {
        SessionStatus::Completed | SessionStatus::Idle => {
            (CLASS_COMPLETED.into(), "run completed".into())
        }
        SessionStatus::Deadlocked(rep) => {
            let detail = if rep.is_cyclic() {
                format!("cyclic wait: {:?}", rep.cycle)
            } else {
                format!(
                    "stalled: {} process(es) waiting with no cycle",
                    rep.waits.len()
                )
            };
            (CLASS_DEADLOCK.into(), detail)
        }
        SessionStatus::Panicked { rank, message } => {
            (CLASS_PANIC.into(), format!("{rank:?} panicked: {message}"))
        }
        SessionStatus::Stopped { traps, paused } => (
            CLASS_STOPPED.into(),
            format!("{} trap(s), {} paused", traps.len(), paused.len()),
        ),
    }
}

/// Re-execute an artifact's schedule against a freshly-built program.
///
/// The caller resolves the artifact's `workload`/`procs`/`seed` fields to a
/// program factory (the CLI owns workload names; the debugger does not).
pub fn replay_schedule(artifact: &ScheduleArtifact, factory: ProgramFactory) -> ScheduleReplay {
    let cfg = SessionConfig {
        policy: SchedPolicy::Scripted(artifact.decisions.clone()),
        recorder: RecorderConfig::full(),
        faults: FaultPlan::new(artifact.faults.clone()),
        ..Default::default()
    };
    let mut session = Session::launch(cfg, factory);
    session.run();
    let (class, detail) = classify(session.status());
    let diverged = session.engine().schedule_diverged();
    ScheduleReplay {
        session,
        class,
        detail,
        diverged,
    }
}

/// The result of a checkpointed artifact replay: the scripted run was
/// snapshotted mid-schedule, then the suffix was re-executed from the
/// restored snapshot and compared against the straight run.
pub struct CheckpointReplay {
    /// Outcome class of the straight scripted run.
    pub class: String,
    /// Human-readable outcome detail of the straight run.
    pub detail: String,
    /// Outcome class of the restored-and-continued run.
    pub restored_class: String,
    /// How many scheduling decisions the snapshot covered (`None` when the
    /// run ended before reaching the snapshot point; the comparison then
    /// degrades to a straight re-execution).
    pub snapshot_decisions: Option<usize>,
    /// Classes match and the two runs' traces are byte-identical.
    pub reproduced: bool,
}

fn status_of(outcome: RunOutcome) -> SessionStatus {
    match outcome {
        RunOutcome::Completed => SessionStatus::Completed,
        RunOutcome::Deadlock(d) => SessionStatus::Deadlocked(d),
        RunOutcome::Stopped(s) => SessionStatus::Stopped {
            traps: s.traps,
            paused: s.paused,
        },
        RunOutcome::Panicked { rank, message } => SessionStatus::Panicked { rank, message },
    }
}

/// Replay an artifact through a mid-schedule checkpoint.
///
/// Runs the scripted schedule with a snapshot armed at half the decision
/// depth, restores the snapshot into a second engine, runs the suffix, and
/// checks the restored run reproduces the straight run's outcome class and
/// trace byte-for-byte — the determinism contract `--from-checkpoint`
/// verifies from the command line.
pub fn replay_schedule_from_checkpoint(
    artifact: &ScheduleArtifact,
    factory: ProgramFactory,
) -> CheckpointReplay {
    let cfg = EngineConfig {
        policy: SchedPolicy::Scripted(artifact.decisions.clone()),
        recorder: RecorderConfig::full(),
        faults: FaultPlan::new(artifact.faults.clone()),
        checkpoints: true,
        ..Default::default()
    };
    let mut engine = Engine::launch(cfg.clone(), factory());
    engine.set_snapshot_at(artifact.decisions.len() / 2);
    let outcome = engine.run();
    let (class, detail) = classify(&status_of(outcome));
    let straight_digest = engine.digest();
    let straight_trace = engine.collect_trace();
    let (restored_class, snapshot_decisions, reproduced) = match engine.take_pending_snapshot() {
        Some(cp) => {
            let mut restored = Engine::restore(&cp, factory());
            let (rc, _) = classify(&status_of(restored.run()));
            let ok = rc == class
                && restored.digest() == straight_digest
                && restored.collect_trace() == straight_trace;
            (rc, Some(cp.decision_len()), ok)
        }
        None => {
            // The run never reached the snapshot point; fall back to a
            // straight re-execution so the command still checks something.
            let mut rerun = Engine::launch(cfg, factory());
            let (rc, _) = classify(&status_of(rerun.run()));
            let ok = rc == class
                && rerun.digest() == straight_digest
                && rerun.collect_trace() == straight_trace;
            (rc, None, ok)
        }
    };
    CheckpointReplay {
        class,
        detail,
        restored_class,
        snapshot_decisions,
        reproduced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_mpsim::{Payload, ProgramFn, Tag};
    use tracedbg_trace::schedule::Decision;
    use tracedbg_trace::Rank;

    /// P0 takes two wildcard receives and asserts P1 arrived first; the
    /// schedule decides whether that holds.
    fn racy_factory() -> ProgramFactory {
        Box::new(|| {
            let p0: ProgramFn = Box::new(|ctx| {
                let s = ctx.site("sr.rs", 1, "p0");
                let _ = ctx.recv_from(Rank(1), Tag(7), s);
                let a = ctx.recv_any(None, s);
                assert_eq!(a.src, Rank(2), "expected P2 first");
                let _ = ctx.recv_any(None, s);
            });
            let sender = |tag: i32| -> ProgramFn {
                Box::new(move |ctx| {
                    let s = ctx.site("sr.rs", 2, "sender");
                    ctx.send(Rank(0), Tag(tag), Payload::from_i64(1), s);
                })
            };
            vec![
                p0.into(),
                sender(7).into(),
                sender(0).into(),
                sender(0).into(),
            ]
        })
    }

    #[test]
    fn artifact_schedule_decides_the_outcome() {
        // Record the deterministic run (P2 matches first: completes).
        let mut rec = Session::launch(
            SessionConfig {
                recorder: RecorderConfig::full(),
                ..Default::default()
            },
            racy_factory(),
        );
        assert!(rec.run().is_completed());
        let decisions = rec.engine().schedule_log();

        let mut good = ScheduleArtifact::new("test-racy", 4, 0);
        good.decisions = decisions.clone();
        let replay = replay_schedule(&good, racy_factory());
        assert_eq!(replay.class, CLASS_COMPLETED);
        assert!(!replay.diverged);

        // Flip the branchy wildcard match from P2 to P3: the assertion in
        // P0 must now fire, and the replay must classify it as a panic.
        let mut bad = good.clone();
        let flip = bad
            .decisions
            .iter()
            .position(|d| {
                matches!(
                    d,
                    Decision::Match {
                        dst: Rank(0),
                        src: Rank(2),
                        ..
                    }
                )
            })
            .expect("recorded run matches P2 on the wildcard");
        bad.decisions[flip] = Decision::Match {
            dst: Rank(0),
            src: Rank(3),
            seq: 0,
        };
        // Decisions after the flipped one may not apply verbatim (the
        // execution changes); truncate to the flipped prefix — the
        // round-robin tail completes the schedule.
        bad.decisions.truncate(flip + 1);
        let replay = replay_schedule(&bad, racy_factory());
        assert_eq!(replay.class, CLASS_PANIC);
        assert!(
            replay.detail.contains("expected P2 first"),
            "{}",
            replay.detail
        );
    }

    #[test]
    fn checkpointed_replay_reproduces_completion_and_panic() {
        // Record a completing run, then flip the wildcard to a panicking
        // one (same recipe as above); both must reproduce through a
        // mid-schedule checkpoint.
        let mut rec = Session::launch(
            SessionConfig {
                recorder: RecorderConfig::full(),
                ..Default::default()
            },
            racy_factory(),
        );
        assert!(rec.run().is_completed());
        let mut good = ScheduleArtifact::new("test-racy", 4, 0);
        good.decisions = rec.engine().schedule_log();

        let cr = replay_schedule_from_checkpoint(&good, racy_factory());
        assert_eq!(cr.class, CLASS_COMPLETED);
        assert!(cr.reproduced, "restored run diverged from straight run");
        assert!(cr.snapshot_decisions.is_some());

        let mut bad = good.clone();
        let flip = bad
            .decisions
            .iter()
            .position(|d| {
                matches!(
                    d,
                    Decision::Match {
                        dst: Rank(0),
                        src: Rank(2),
                        ..
                    }
                )
            })
            .unwrap();
        bad.decisions[flip] = Decision::Match {
            dst: Rank(0),
            src: Rank(3),
            seq: 0,
        };
        bad.decisions.truncate(flip + 1);
        let cr = replay_schedule_from_checkpoint(&bad, racy_factory());
        assert_eq!(cr.class, CLASS_PANIC);
        assert_eq!(cr.restored_class, CLASS_PANIC);
        assert!(cr.reproduced);
    }

    #[test]
    fn faults_in_artifact_are_injected() {
        use tracedbg_trace::schedule::Fault;
        let mut a = ScheduleArtifact::new("test-racy", 4, 0);
        // P1 crashes before sending: P0's directed receive starves.
        a.faults.push(Fault::Crash {
            rank: Rank(1),
            after_ops: 0,
        });
        let replay = replay_schedule(&a, racy_factory());
        assert_eq!(replay.class, CLASS_DEADLOCK);
        assert!(replay.detail.contains("no cycle"), "{}", replay.detail);
    }
}
