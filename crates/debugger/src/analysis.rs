//! History analysis (§4.4): communication supervision reports.
//!
//! "The debugger maintains a list of unmatched sends and receives. ... As
//! soon as the communication graph has been built, the user is informed
//! about the unmatched send/receives. ... the debugger is also able to
//! detect deadlocks due to circular dependency in sends or receives."

use std::fmt;
use tracedbg_causality::{detect_circular_waits, detect_races, CircularWait, HbIndex, MessageRace};
use tracedbg_trace::{Rank, TraceStore};
use tracedbg_tracegraph::{
    find_intertwined, Intertwining, MessageMatching, UnmatchedRecv, UnmatchedSend,
};

/// Everything §4.4 reports about a trace.
pub struct HistoryReport {
    pub n_ranks: usize,
    pub messages_matched: usize,
    pub unmatched_sends: Vec<UnmatchedSend>,
    pub unmatched_recvs: Vec<UnmatchedRecv>,
    pub circular_waits: Vec<CircularWait>,
    pub races: Vec<MessageRace>,
    /// Same-channel messages received out of send order (§4.4's
    /// "intertwined messages" — legal under tag-selective receives).
    pub intertwined: Vec<Intertwining>,
    /// Messages delivered into each rank.
    pub received_counts: Vec<usize>,
}

impl HistoryReport {
    /// Analyze a complete trace.
    pub fn analyze(store: &TraceStore) -> Self {
        let matching = MessageMatching::build(store);
        let hb = HbIndex::build(store, &matching);
        let races = detect_races(store, &matching, &hb);
        let circular_waits = detect_circular_waits(store, &matching);
        let intertwined = find_intertwined(store, &matching);
        let received_counts = matching.received_counts(store.n_ranks(), store);
        HistoryReport {
            n_ranks: store.n_ranks(),
            messages_matched: matching.matched.len(),
            unmatched_sends: matching.unmatched_sends,
            unmatched_recvs: matching.unmatched_recvs,
            circular_waits,
            races,
            intertwined,
            received_counts,
        }
    }

    /// Is the history free of anomalies?
    pub fn is_clean(&self) -> bool {
        self.unmatched_sends.is_empty()
            && self.unmatched_recvs.is_empty()
            && self.circular_waits.is_empty()
            && self.races.is_empty()
    }

    /// Ranks that received fewer messages than the given expectation — the
    /// Figure 6 diagnosis ("processes 1-6 each receive 2 messages and
    /// process 7 only receives 1").
    pub fn underfed_ranks(&self, expected: &[usize]) -> Vec<Rank> {
        self.received_counts
            .iter()
            .zip(expected)
            .enumerate()
            .filter(|(_, (got, want))| got < want)
            .map(|(r, _)| Rank(r as u32))
            .collect()
    }
}

impl fmt::Display for HistoryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "history: {} matched message(s), {} unmatched send(s), {} blocked receive(s)",
            self.messages_matched,
            self.unmatched_sends.len(),
            self.unmatched_recvs.len()
        )?;
        for u in &self.unmatched_sends {
            writeln!(
                f,
                "  LOST: P{} -> P{} tag{} #{} was never received",
                u.info.src, u.info.dst, u.info.tag, u.info.seq
            )?;
        }
        for u in &self.unmatched_recvs {
            match u.src {
                Some(s) => writeln!(f, "  BLOCKED: P{} waiting on P{}", u.rank, s)?,
                None => writeln!(f, "  BLOCKED: P{} waiting on ANY_SOURCE", u.rank)?,
            }
        }
        for c in &self.circular_waits {
            write!(f, "  DEADLOCK cycle:")?;
            for r in &c.ranks {
                write!(f, " P{r}")?;
            }
            writeln!(f)?;
        }
        for r in &self.races {
            writeln!(
                f,
                "  RACE: wildcard receive (event {:?}) had {} alternative sender(s)",
                r.recv,
                r.alternatives.len()
            )?;
        }
        for t in &self.intertwined {
            writeln!(
                f,
                "  INTERTWINED: on channel P{}->P{} a later send was received first",
                t.src, t.dst
            )?;
        }
        write!(f, "  received per rank: {:?}", self.received_counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_trace::{EventKind, MsgInfo, SiteTable, Tag, TraceRecord};

    fn msg(src: u32, dst: u32, seq: u64) -> MsgInfo {
        MsgInfo {
            src: Rank(src),
            dst: Rank(dst),
            tag: Tag(1),
            bytes: 8,
            seq,
        }
    }

    #[test]
    fn clean_history() {
        let m = msg(0, 1, 0);
        let recs = vec![
            TraceRecord::basic(0u32, EventKind::Send, 1, 0)
                .with_span(0, 1)
                .with_msg(m),
            TraceRecord::basic(1u32, EventKind::RecvPost, 1, 2).with_args(0, 1),
            TraceRecord::basic(1u32, EventKind::RecvDone, 2, 2)
                .with_span(2, 3)
                .with_msg(m),
        ];
        let store = TraceStore::build(recs, SiteTable::new(), 2);
        let rep = HistoryReport::analyze(&store);
        assert!(rep.is_clean());
        assert_eq!(rep.messages_matched, 1);
        assert_eq!(rep.received_counts, vec![0, 1]);
    }

    #[test]
    fn figure6_style_report() {
        // P0 sends to P1 twice but P1 receives once; P1 then blocks on P0.
        let recs = vec![
            TraceRecord::basic(0u32, EventKind::Send, 1, 0)
                .with_span(0, 1)
                .with_msg(msg(0, 1, 0)),
            TraceRecord::basic(0u32, EventKind::Send, 2, 1)
                .with_span(1, 2)
                .with_msg(msg(0, 1, 1)),
            TraceRecord::basic(1u32, EventKind::RecvPost, 1, 3).with_args(0, 1),
            TraceRecord::basic(1u32, EventKind::RecvDone, 2, 3)
                .with_span(3, 4)
                .with_msg(msg(0, 1, 0)),
            TraceRecord::basic(2u32, EventKind::RecvPost, 1, 5).with_args(0, 1),
        ];
        let store = TraceStore::build(recs, SiteTable::new(), 3);
        let rep = HistoryReport::analyze(&store);
        assert!(!rep.is_clean());
        assert_eq!(rep.unmatched_sends.len(), 1);
        assert_eq!(rep.unmatched_recvs.len(), 1);
        assert_eq!(rep.underfed_ranks(&[0, 1, 1]), vec![Rank(2)]);
        let txt = format!("{rep}");
        assert!(txt.contains("LOST: P0 -> P1"), "{txt}");
        assert!(txt.contains("BLOCKED: P2 waiting on P0"), "{txt}");
    }

    #[test]
    fn deadlock_cycle_reported() {
        let recs = vec![
            TraceRecord::basic(0u32, EventKind::RecvPost, 1, 0).with_args(7, -1),
            TraceRecord::basic(7u32, EventKind::RecvPost, 1, 0).with_args(0, -1),
        ];
        let store = TraceStore::build(recs, SiteTable::new(), 8);
        let rep = HistoryReport::analyze(&store);
        assert_eq!(rep.circular_waits.len(), 1);
        assert_eq!(rep.circular_waits[0].ranks, vec![Rank(0), Rank(7)]);
        assert!(format!("{rep}").contains("DEADLOCK cycle: P0 P7"));
    }
}
