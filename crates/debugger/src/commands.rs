//! A text command interface over a [`Session`].
//!
//! This is the scripting surface the figure-reproduction harnesses drive;
//! each command returns a transcript line, so a scripted debugging session
//! reads like the interaction §4.1 narrates (set a stopline, replay, step,
//! inspect, find the bug).

use crate::analysis::HistoryReport;
use crate::procset::ProcSets;
use crate::session::{Session, SessionStatus};
use crate::stopline::Stopline;
use std::collections::BTreeMap;
use tracedbg_trace::{EventKind, EventQuery, Rank, Tag};

/// Stateful command processor.
pub struct CommandInterface {
    session: Session,
    /// The pending stopline, set by `stopline ...`, consumed by `replay`.
    pending: Option<Stopline>,
    /// Named process sets (p2d2's set-oriented operations).
    sets: ProcSets,
    /// Per-command-verb timing: count and total wall-clock nanoseconds
    /// (BTreeMap: the `stats` listing is sorted and stable).
    timings: BTreeMap<String, (u64, u64)>,
}

impl CommandInterface {
    pub fn new(session: Session) -> Self {
        let sets = ProcSets::new(session.n_ranks());
        CommandInterface {
            session,
            pending: None,
            sets,
            timings: BTreeMap::new(),
        }
    }

    pub fn session(&mut self) -> &mut Session {
        &mut self.session
    }

    fn status_line(&self) -> String {
        match self.session.status() {
            SessionStatus::Idle => "idle".into(),
            SessionStatus::Completed => "completed".into(),
            SessionStatus::Deadlocked(d) => format!(
                "DEADLOCK: blocked {:?}, cycle {:?}",
                d.blocked_ranks(),
                d.cycle
            ),
            SessionStatus::Stopped { traps, paused } => {
                format!("stopped: traps {traps:?} paused {paused:?}")
            }
            SessionStatus::Panicked { rank, message } => {
                format!("PANIC in {rank:?}: {message}")
            }
        }
    }

    /// Execute one command, returning the transcript output. Every command
    /// is timed under its verb; `stats` reports the accumulated figures.
    pub fn execute(&mut self, cmd: &str) -> String {
        let verb = cmd
            .split_whitespace()
            .next()
            .unwrap_or_default()
            .to_string();
        let t0 = std::time::Instant::now();
        let out = self.execute_inner(cmd);
        if !verb.is_empty() {
            let slot = self.timings.entry(verb).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += t0.elapsed().as_nanos() as u64;
        }
        out
    }

    /// Per-verb `(count, total_ns)` timing collected so far, sorted by
    /// verb name.
    pub fn command_timings(&self) -> Vec<(String, u64, u64)> {
        self.timings
            .iter()
            .map(|(verb, (count, ns))| (verb.clone(), *count, *ns))
            .collect()
    }

    fn execute_inner(&mut self, cmd: &str) -> String {
        let parts: Vec<&str> = cmd.split_whitespace().collect();
        match parts.as_slice() {
            ["run"] => {
                self.session.run();
                format!("> run\n{}", self.status_line())
            }
            ["continue"] => {
                self.session.continue_all();
                format!("> continue\n{}", self.status_line())
            }
            ["step"] => {
                self.session.step_all();
                format!("> step\n{}", self.status_line())
            }
            ["step", spec] => {
                // A bare rank steps one process; anything else is a set
                // spec or a named set (p2d2's set-oriented stepping).
                if let Ok(r) = spec.parse::<u32>() {
                    self.session.step(Rank(r));
                    format!(
                        "> step {r}\nP{r} at marker {}",
                        self.session.markers().get(Rank(r))
                    )
                } else {
                    match self.sets.parse(spec) {
                        Ok(set) => {
                            self.session.step_set(&set);
                            format!("> step {spec}\n{:?}", self.session.markers())
                        }
                        Err(e) => format!("error: {e}"),
                    }
                }
            }
            ["markers"] => {
                format!("> markers\n{:?}", self.session.markers())
            }
            ["where", r] => match r.parse::<u32>() {
                Ok(r) => {
                    let lines = self.session.where_is(Rank(r));
                    let body = if lines.is_empty() {
                        "  (no monitor history)".to_string()
                    } else {
                        lines
                            .iter()
                            .map(|l| format!("  {l}"))
                            .collect::<Vec<_>>()
                            .join("\n")
                    };
                    format!("> where {r}\n{body}")
                }
                Err(_) => format!("error: bad rank {r:?}"),
            },
            ["probe", r, label] => match r.parse::<u32>() {
                Ok(r) => match self.session.latest_probe(Rank(r), label) {
                    Some(v) => format!("> probe {r} {label}\nP{r} {label} = {v}"),
                    None => format!("> probe {r} {label}\n(no such probe)"),
                },
                Err(_) => format!("error: bad rank {r:?}"),
            },
            ["stopline", "t", t] => match t.parse::<u64>() {
                Ok(t) => {
                    let store = self.session.trace();
                    // Source-backed slice: resolves through the time-window
                    // index when the trace lives in an on-disk store.
                    let sl = match Stopline::vertical_from(&store, t) {
                        Ok(sl) => sl,
                        Err(e) => return format!("error: {e}"),
                    };
                    let out = format!("> stopline t {t}\nstopline {:?}", sl.markers);
                    self.pending = Some(sl);
                    out
                }
                Err(_) => format!("error: bad time {t:?}"),
            },
            ["stopline", "markers", rest @ ..] => {
                let counts: Result<Vec<u64>, _> = rest.iter().map(|s| s.parse::<u64>()).collect();
                match counts {
                    Ok(c) if c.len() == self.session.n_ranks() => {
                        let sl = Stopline {
                            markers: tracedbg_trace::MarkerVector::from_counts(c),
                            origin: "manual".into(),
                        };
                        let out = format!("> stopline markers\nstopline {:?}", sl.markers);
                        self.pending = Some(sl);
                        out
                    }
                    Ok(c) => format!(
                        "error: {} markers given, {} processes",
                        c.len(),
                        self.session.n_ranks()
                    ),
                    Err(e) => format!("error: {e}"),
                }
            }
            ["replay"] => match self.pending.clone() {
                Some(sl) => {
                    self.session.replay_to(&sl);
                    format!("> replay (stopline {})\n{}", sl.origin, self.status_line())
                }
                None => "error: no stopline set".into(),
            },
            ["undo"] => {
                if self.session.undo() {
                    format!("> undo\n{}", self.status_line())
                } else {
                    "> undo\nnothing to undo".into()
                }
            }
            ["analyze"] => {
                let store = self.session.trace();
                let rep = HistoryReport::analyze(&store);
                format!("> analyze\n{rep}")
            }
            ["restart"] => {
                self.session.restart();
                "> restart\nidle".into()
            }
            ["break", spec] => {
                // "func" or "file:line"
                let armed = match spec.rsplit_once(':') {
                    Some((file, line)) => match line.parse::<u32>() {
                        Ok(l) => self.session.break_at_line(file, l),
                        Err(_) => return format!("error: bad line in {spec:?}"),
                    },
                    None => self.session.break_at_function(spec),
                };
                format!("> break {spec}\n{armed} site(s) armed")
            }
            ["watch", label, "change"] => {
                self.session
                    .watch(None, label, tracedbg_instrument::WatchCond::Change);
                format!("> watch {label} change\narmed")
            }
            ["watch", label, "==", v] => match v.parse::<i64>() {
                Ok(v) => {
                    self.session
                        .watch(None, label, tracedbg_instrument::WatchCond::Equals(v));
                    format!("> watch {label} == {v}\narmed")
                }
                Err(_) => format!("error: bad value {v:?}"),
            },
            ["watch", label, "!=", v] => match v.parse::<i64>() {
                Ok(v) => {
                    self.session
                        .watch(None, label, tracedbg_instrument::WatchCond::NotEquals(v));
                    format!("> watch {label} != {v}\narmed")
                }
                Err(_) => format!("error: bad value {v:?}"),
            },
            ["delete", "breaks"] => {
                self.session.clear_breaks();
                "> delete breaks\ncleared".into()
            }
            ["why", r] => match r.parse::<u32>() {
                Ok(r) => match self.session.why(Rank(r)) {
                    Some(cause) => format!("> why {r}\n{cause:?}"),
                    None => format!("> why {r}\n(no trap recorded)"),
                },
                Err(_) => format!("error: bad rank {r:?}"),
            },
            ["setdef", name, spec] => match self.sets.define(name, spec) {
                Ok(()) => format!("> setdef {name} {spec}\n{}", self.sets),
                Err(e) => format!("error: {e}"),
            },
            ["sets"] => format!("> sets\n{}", self.sets),
            ["find", rest @ ..] => {
                let store = self.session.trace();
                let q = match rest {
                    ["send", "to", d] => match d.parse::<u32>() {
                        Ok(d) => EventQuery::new().kind(EventKind::Send).msg_to(d),
                        Err(_) => return format!("error: bad rank {d:?}"),
                    },
                    ["send", "from", s] => match s.parse::<u32>() {
                        Ok(s) => EventQuery::new().kind(EventKind::Send).msg_from(s),
                        Err(_) => return format!("error: bad rank {s:?}"),
                    },
                    ["recv", "on", r] => match r.parse::<u32>() {
                        Ok(r) => EventQuery::new().kind(EventKind::RecvDone).rank(r),
                        Err(_) => return format!("error: bad rank {r:?}"),
                    },
                    ["tag", t] => match t.parse::<i32>() {
                        Ok(t) => EventQuery::new().tag(Tag(t)),
                        Err(_) => return format!("error: bad tag {t:?}"),
                    },
                    ["fn", name] => EventQuery::new().in_function(*name),
                    ["probe", label] => EventQuery::new().kind(EventKind::Probe).label(*label),
                    _ => {
                        return "error: find <send to N | send from N | recv on N | \
                                tag T | fn NAME | probe LABEL>"
                            .into()
                    }
                };
                // The index-aware TraceSource path: on the in-memory store
                // it is a reference scan; an attached on-disk store would
                // answer the same query from its zone indexes.
                let hits = match q.find_records(&store) {
                    Ok(hits) => hits,
                    Err(e) => return format!("error: {e}"),
                };
                let mut out = format!("> find {}\n{} match(es)", rest.join(" "), hits.len());
                for rec in hits.iter().take(8) {
                    out.push_str(&format!(
                        "\n  {:?} marker {} at t={}: {}",
                        rec.rank, rec.marker, rec.t_start, rec
                    ));
                }
                if hits.len() > 8 {
                    out.push_str("\n  ...");
                }
                out
            }
            ["verify"] => {
                let divs = self.session.verify_replay();
                if divs.is_empty() {
                    "> verify\nreplay is faithful: no divergence".into()
                } else {
                    let mut out = format!("> verify\n{} divergence(s):", divs.len());
                    for d in divs.iter().take(4) {
                        out.push_str(&format!("\n{d}"));
                    }
                    out
                }
            }
            ["pending"] => {
                // Undelivered messages per destination — the §4.4
                // communication supervision view of the live mailboxes.
                let mut out = String::from("> pending");
                let mut any = false;
                for (rank, msgs) in self.session.engine().undelivered() {
                    for m in msgs {
                        any = true;
                        out.push_str(&format!(
                            "\n  P{} <- P{} tag{} #{} ({} bytes) undelivered",
                            rank,
                            m.src,
                            m.tag,
                            m.seq,
                            m.payload.len()
                        ));
                    }
                }
                if !any {
                    out.push_str("\n(no undelivered messages)");
                }
                out
            }
            ["view"] | ["view", _] => {
                let width = match parts.get(1) {
                    Some(w) => match w.parse::<usize>() {
                        Ok(w) => w,
                        Err(_) => return format!("error: bad width {w:?}"),
                    },
                    None => 100,
                };
                let store = self.session.trace();
                let mm = tracedbg_tracegraph::MessageMatching::build(&store);
                let model = tracedbg_viz::TimelineModel::build(&store, &mm, false);
                format!("> view\n{}", tracedbg_viz::render_ascii(&model, width))
            }
            ["stats"] => {
                // The debugger's telemetry view: command timing, checkpoint
                // cache behaviour, and engine metrics across incarnations.
                let tel = self.session.telemetry();
                let mut out = String::from("> stats");
                out.push_str(&format!(
                    "\nengine: {} turns, {} matches, {} msgs, {} bytes",
                    tel.engine.turns,
                    tel.engine.matches,
                    tel.engine.total_msgs(),
                    tel.engine.total_bytes()
                ));
                out.push_str(&format!(
                    "\ncheckpoints: {} cached, {} hits, {} misses, \
                     restore distance {} markers",
                    tel.cache_len, tel.cache.hits, tel.cache.misses, tel.cache.restore_distance
                ));
                out.push_str(&format!(
                    "\nrestores: {} ({} us), snapshots: {} ({} us)",
                    tel.restores,
                    tel.restore_ns / 1_000,
                    tel.engine.snapshots,
                    tel.snapshot_ns / 1_000
                ));
                if !tel.engine.replay_delta.is_empty() {
                    out.push_str(&format!(
                        "\nreplay deltas: {} (mean {} decisions, max {})",
                        tel.engine.replay_delta.count,
                        tel.engine.replay_delta.mean(),
                        tel.engine.replay_delta.max
                    ));
                }
                if self.timings.is_empty() {
                    out.push_str("\n(no commands timed yet)");
                } else {
                    out.push_str("\ncommands:");
                    for (verb, (count, ns)) in &self.timings {
                        out.push_str(&format!("\n  {verb:<10} x{count:<4} {} us", ns / 1_000));
                    }
                }
                out
            }
            _ => format!("error: unknown command {cmd:?}"),
        }
    }

    /// Run a whole script, returning the full transcript.
    pub fn script(&mut self, commands: &[&str]) -> String {
        commands
            .iter()
            .map(|c| self.execute(c))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{ProgramFactory, SessionConfig};
    use tracedbg_mpsim::{Payload, ProgramFn, RecorderConfig, Tag};

    fn iface() -> CommandInterface {
        let factory: ProgramFactory = Box::new(|| {
            let p0: ProgramFn = Box::new(|ctx| {
                let s = ctx.site("c.rs", 1, "p0");
                ctx.compute(100, s);
                ctx.probe("x", 42, s);
                ctx.send(Rank(1), Tag(1), Payload::from_i64(7), s);
            });
            let p1: ProgramFn = Box::new(|ctx| {
                let s = ctx.site("c.rs", 2, "p1");
                let _ = ctx.recv_from(Rank(0), Tag(1), s);
            });
            vec![p0.into(), p1.into()]
        });
        CommandInterface::new(Session::launch(
            SessionConfig {
                recorder: RecorderConfig::full(),
                ..Default::default()
            },
            factory,
        ))
    }

    #[test]
    fn run_and_analyze() {
        let mut ci = iface();
        let t = ci.execute("run");
        assert!(t.contains("completed"), "{t}");
        let a = ci.execute("analyze");
        assert!(a.contains("1 matched message(s)"), "{a}");
    }

    #[test]
    fn probe_command() {
        let mut ci = iface();
        ci.execute("run");
        let p = ci.execute("probe 0 x");
        assert!(p.contains("x = 42"), "{p}");
        let missing = ci.execute("probe 0 nothere");
        assert!(missing.contains("no such probe"), "{missing}");
    }

    #[test]
    fn stopline_replay_step_script() {
        let mut ci = iface();
        let t = ci.script(&[
            "run",
            "stopline markers 2 1",
            "replay",
            "markers",
            "step 0",
            "continue",
        ]);
        assert!(t.contains("stopline ⟨2,1⟩"), "{t}");
        assert!(t.contains("stopped"), "{t}");
        assert!(t.contains("P0 at marker 3"), "{t}");
        assert!(t.trim_end().ends_with("completed"), "{t}");
    }

    #[test]
    fn error_paths() {
        let mut ci = iface();
        assert!(ci.execute("replay").contains("no stopline"));
        assert!(ci.execute("bogus").contains("unknown command"));
        assert!(ci.execute("step zz").contains("bad rank"));
        assert!(ci
            .execute("stopline markers 1 2 3")
            .contains("3 markers given, 2 processes"));
        assert!(ci.execute("undo").contains("nothing to undo"));
    }

    #[test]
    fn break_watch_why_commands() {
        let mut ci = iface();
        ci.execute("run");
        ci.execute("stopline markers 1 1");
        ci.execute("replay");
        let b = ci.execute("break p0");
        assert!(b.contains("site(s) armed"), "{b}");
        let c = ci.execute("continue");
        assert!(c.contains("stopped"), "{c}");
        let why = ci.execute("why 0");
        assert!(why.contains("Breakpoint"), "{why}");
        let d = ci.execute("delete breaks");
        assert!(d.contains("cleared"), "{d}");
        let done = ci.execute("continue");
        assert!(done.contains("completed"), "{done}");
    }

    #[test]
    fn watch_command_syntax() {
        let mut ci = iface();
        ci.execute("run");
        ci.execute("stopline markers 1 1");
        ci.execute("replay");
        let w = ci.execute("watch x == 42");
        assert!(w.contains("armed"), "{w}");
        let c = ci.execute("continue");
        assert!(c.contains("stopped"), "{c}");
        let why = ci.execute("why 0");
        assert!(why.contains("Watch"), "{why}");
        assert!(ci.execute("watch x != banana").contains("bad value"));
        assert!(ci.execute("watch y change").contains("armed"));
    }

    #[test]
    fn set_oriented_stepping() {
        let mut ci = iface();
        ci.execute("run");
        ci.execute("stopline markers 1 1");
        ci.execute("replay");
        let d = ci.execute("setdef everyone 0-1");
        assert!(d.contains("everyone = {0,1}"), "{d}");
        let before = ci.session().markers();
        let s = ci.execute("step everyone");
        assert!(s.contains("\u{27e8}2,2\u{27e9}"), "{s}");
        let after = ci.session().markers();
        assert_eq!(after.get(Rank(0)), before.get(Rank(0)) + 1);
        assert_eq!(after.get(Rank(1)), before.get(Rank(1)) + 1);
        assert!(ci.execute("sets").contains("everyone"));
        assert!(ci.execute("step nosuchset").contains("error"));
        assert!(ci.execute("setdef all 0").contains("error"));
    }

    #[test]
    fn find_command() {
        let mut ci = iface();
        ci.execute("run");
        let f = ci.execute("find send to 1");
        assert!(f.contains("1 match(es)"), "{f}");
        let f2 = ci.execute("find probe x");
        assert!(f2.contains("1 match(es)"), "{f2}");
        let f3 = ci.execute("find fn p0");
        assert!(!f3.contains("0 match(es)"), "{f3}");
        assert!(ci.execute("find tag 12345").contains("0 match(es)"));
        assert!(ci.execute("find nonsense").contains("error"));
    }

    #[test]
    fn verify_command_reports_fidelity() {
        let mut ci = iface();
        ci.execute("run");
        let v = ci.execute("verify");
        assert!(v.contains("faithful"), "{v}");
        // Also from a stopped state.
        ci.execute("stopline markers 2 1");
        ci.execute("replay");
        let v2 = ci.execute("verify");
        assert!(v2.contains("faithful"), "{v2}");
    }

    #[test]
    fn pending_and_view_commands() {
        let mut ci = iface();
        ci.execute("run");
        let p = ci.execute("pending");
        assert!(p.contains("no undelivered messages"), "{p}");
        let v = ci.execute("view");
        assert!(v.contains("legend:"), "{v}");
        assert!(v.contains("P0"), "{v}");
        let v2 = ci.execute("view 40");
        assert!(v2.lines().any(|l| l.len() < 60), "{v2}");
        assert!(ci.execute("view zz").contains("bad width"));
    }

    #[test]
    fn pending_shows_lost_message() {
        // A send nobody receives shows up in `pending` at the stop.
        let factory: ProgramFactory = Box::new(|| {
            let p0: ProgramFn = Box::new(|ctx| {
                let s = ctx.site("p.rs", 1, "p0");
                ctx.send(Rank(1), Tag(9), Payload::from_i64(1), s);
            });
            let p1: ProgramFn = Box::new(|ctx| {
                let s = ctx.site("p.rs", 2, "p1");
                ctx.compute(10, s);
            });
            vec![p0.into(), p1.into()]
        });
        let mut ci = CommandInterface::new(Session::launch(
            SessionConfig {
                recorder: RecorderConfig::full(),
                ..Default::default()
            },
            factory,
        ));
        ci.execute("run");
        let p = ci.execute("pending");
        assert!(p.contains("P1 <- P0 tag9"), "{p}");
    }

    #[test]
    fn stats_reports_timing_and_cache_behaviour() {
        let mut ci = iface();
        ci.execute("run");
        ci.execute("stopline markers 2 1");
        ci.execute("replay");
        ci.execute("markers");
        let s = ci.execute("stats");
        assert!(s.contains("engine:"), "{s}");
        assert!(s.contains("checkpoints:"), "{s}");
        assert!(s.contains("commands:"), "{s}");
        assert!(s.contains("replay"), "{s}");
        assert!(s.contains("markers"), "{s}");
        let timings = ci.command_timings();
        assert!(timings.iter().any(|(v, c, _)| v == "run" && *c == 1));
        // The stats verb itself is timed once its call returns.
        let s2 = ci.execute("stats");
        assert!(s2.contains("stats"), "{s2}");
    }

    #[test]
    fn stopline_from_time() {
        let mut ci = iface();
        ci.execute("run");
        let t = ci.execute("stopline t 50");
        assert!(t.contains("stopline ⟨"), "{t}");
        let r = ci.execute("replay");
        assert!(r.contains("stopped") || r.contains("completed"), "{r}");
    }
}
