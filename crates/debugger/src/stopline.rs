//! Stoplines: breakpoints in the timeline (§4.1).
//!
//! "To set a stopline, the user identifies a particular event in the
//! timeline and then invokes the 'set stopline' operation. The meaning of
//! the stopline is that execution should stop at that point in the process
//! where the event was selected. Other processes will be stopped at a
//! point consistent with that point."
//!
//! A stopline is a [`MarkerVector`]: one `UserMonitor` threshold per
//! process. Three constructions are provided:
//!
//! * [`Stopline::vertical`] — the vertical slice at a clicked time;
//! * [`Stopline::past_frontier`] — stop each process immediately after the
//!   point where it could last affect the selected event;
//! * [`Stopline::future_frontier`] — stop each process immediately before
//!   the point where it could first be affected by the selected event.
//!
//! (The frontier variants are the extension §4.1 describes as "not
//! currently implemented" in p2d2.)

use tracedbg_causality::{verify_cut, Frontier, HbIndex};
use tracedbg_trace::{EventId, Marker, MarkerVector, Select, SourceError, TraceSource, TraceStore};
use tracedbg_tracegraph::MessageMatching;

/// A consistent set of per-process stop markers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stopline {
    pub markers: MarkerVector,
    /// Human-readable provenance ("t=1234", "past of P3@17", ...).
    pub origin: String,
}

impl Stopline {
    /// The vertical slice at simulated time `t` (the Figure 2/6 stopline).
    pub fn vertical(store: &TraceStore, t: u64) -> Stopline {
        Stopline {
            markers: store.markers_at_time(t),
            origin: format!("t={t}"),
        }
    }

    /// [`Stopline::vertical`] over any [`TraceSource`]: builds the slice
    /// by streaming the `[0, t]` time window, so an on-disk store answers
    /// from its sparse time index without materializing the trace. Within
    /// a rank markers and end times both increase in program order, so the
    /// per-rank maximum marker among events with `t_end <= t` is exactly
    /// the lane-prefix threshold `vertical` computes.
    pub fn vertical_from(src: &dyn TraceSource, t: u64) -> Result<Stopline, SourceError> {
        let mut markers = MarkerVector::zero(src.source_n_ranks());
        for rec in src.select(Select::TimeWindow(0, t))? {
            let rec = rec?;
            if rec.t_end <= t && rec.marker > markers.get(rec.rank) {
                markers.set(rec.rank, rec.marker);
            }
        }
        Ok(Stopline {
            markers,
            origin: format!("t={t}"),
        })
    }

    /// Stop at the selected event in its process and at the last point
    /// that could have affected it everywhere else.
    pub fn past_frontier(store: &TraceStore, hb: &HbIndex, event: EventId) -> Stopline {
        let f = Frontier::past_of(store, hb, event);
        let rec = store.record(event);
        Stopline {
            markers: f.inclusive_cut(),
            origin: format!("past of {:?}", Marker::new(rec.rank, rec.marker)),
        }
    }

    /// Stop immediately before each process could first be affected by the
    /// selected event (processes never affected run to their final
    /// marker).
    pub fn future_frontier(store: &TraceStore, hb: &HbIndex, event: EventId) -> Stopline {
        let f = Frontier::future_of(store, hb, event);
        let rec = store.record(event);
        Stopline {
            markers: f.exclusive_cut(&store.final_markers()),
            origin: format!("before future of {:?}", Marker::new(rec.rank, rec.marker)),
        }
    }

    /// Stop exactly at a selected event, other processes at the vertical
    /// slice through its completion time.
    pub fn at_event(store: &TraceStore, event: EventId) -> Stopline {
        let rec = store.record(event);
        let mut markers = store.markers_at_time(rec.t_end);
        // The selected process stops exactly at the event, even if later
        // events of that process completed at the same instant.
        markers.set(rec.rank, rec.marker);
        Stopline {
            markers,
            origin: format!("event {:?}", Marker::new(rec.rank, rec.marker)),
        }
    }

    /// Verify consistency against the trace: the induced cut must contain
    /// the send of every received message ("it is important for the
    /// debugger to use a consistent set of breakpoints").
    pub fn is_consistent(&self, store: &TraceStore, matching: &MessageMatching) -> bool {
        verify_cut(store, matching, &self.markers).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_trace::{EventKind, MsgInfo, Rank, SiteTable, Tag, TraceRecord};

    /// P0: c(1,0..10) send(2,10..12) c(3,12..30)
    /// P1: c(1,0..5) recv(2,5..20) c(3,20..40)
    fn store() -> TraceStore {
        let m = MsgInfo {
            src: Rank(0),
            dst: Rank(1),
            tag: Tag(1),
            bytes: 8,
            seq: 0,
        };
        let recs = vec![
            TraceRecord::basic(0u32, EventKind::Compute, 1, 0).with_span(0, 10),
            TraceRecord::basic(0u32, EventKind::Send, 2, 10)
                .with_span(10, 12)
                .with_msg(m),
            TraceRecord::basic(0u32, EventKind::Compute, 3, 12).with_span(12, 30),
            TraceRecord::basic(1u32, EventKind::Compute, 1, 0).with_span(0, 5),
            TraceRecord::basic(1u32, EventKind::RecvDone, 2, 5)
                .with_span(5, 20)
                .with_msg(m),
            TraceRecord::basic(1u32, EventKind::Compute, 3, 20).with_span(20, 40),
        ];
        TraceStore::build(recs, SiteTable::new(), 2)
    }

    #[test]
    fn vertical_stopline_is_consistent_everywhere() {
        let s = store();
        let mm = MessageMatching::build(&s);
        for t in 0..=40 {
            let sl = Stopline::vertical(&s, t);
            assert!(sl.is_consistent(&s, &mm), "t={t} {:?}", sl.markers);
        }
    }

    #[test]
    fn vertical_values() {
        let s = store();
        let sl = Stopline::vertical(&s, 13);
        assert_eq!(sl.markers.counts(), &[2, 1]);
        assert_eq!(sl.origin, "t=13");
    }

    #[test]
    fn vertical_from_source_matches_vertical() {
        let s = store();
        for t in 0..=40 {
            let sl = Stopline::vertical_from(&s, t).unwrap();
            assert_eq!(sl, Stopline::vertical(&s, t), "t={t}");
        }
    }

    #[test]
    fn past_frontier_stopline() {
        let s = store();
        let mm = MessageMatching::build(&s);
        let hb = HbIndex::build(&s, &mm);
        let recv = s.find_marker(Marker::new(1u32, 2)).unwrap();
        let sl = Stopline::past_frontier(&s, &hb, recv);
        // P0 stops at the send (2), P1 at the recv (2).
        assert_eq!(sl.markers.counts(), &[2, 2]);
        assert!(sl.is_consistent(&s, &mm));
    }

    #[test]
    fn future_frontier_stopline() {
        let s = store();
        let mm = MessageMatching::build(&s);
        let hb = HbIndex::build(&s, &mm);
        let send = s.find_marker(Marker::new(0u32, 2)).unwrap();
        let sl = Stopline::future_frontier(&s, &hb, send);
        // P0 stops before the send (1); P1 before the recv (1).
        assert_eq!(sl.markers.counts(), &[1, 1]);
        assert!(sl.is_consistent(&s, &mm));
    }

    #[test]
    fn at_event_stopline() {
        let s = store();
        let mm = MessageMatching::build(&s);
        let send = s.find_marker(Marker::new(0u32, 2)).unwrap();
        let sl = Stopline::at_event(&s, send);
        // P0 exactly at the send; P1 at its state at t=12 (compute 1).
        assert_eq!(sl.markers.counts(), &[2, 1]);
        assert!(sl.is_consistent(&s, &mm));
    }
}
