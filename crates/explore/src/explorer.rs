//! The exploration strategies, finding pipeline, and report.

use crate::oracle::{self, Violation};
use crate::pool::{PrefixCache, RunTask, WorkerLoad, WorkerPool};
use crate::runner::{
    execute, execute_metered, execute_task, ProgramSource, RunResult, CLASS_COMPLETED,
    CLASS_DEADLOCK, CLASS_DIVERGENCE, CLASS_PANIC,
};
use crate::shrink::ddmin;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tracedbg_analysis::IndependenceFacts;
use tracedbg_mpsim::{EngineMetrics, SchedPolicy};
use tracedbg_obs::{
    ClassCount, EventMetrics, ExploreEvent, MetricsReport, TimingMetrics, WorkerStat,
};
use tracedbg_trace::schedule::{Decision, DecisionPoint, Fault, ScheduleArtifact};
use tracedbg_trace::Rank;

/// Which part of the schedule space to search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Seeded random walks (optionally with generated faults).
    Random,
    /// Bounded-preemption DFS over recorded decision points.
    Systematic,
    /// Systematic first, random walk with the remaining budget.
    Both,
}

impl Strategy {
    pub fn as_str(&self) -> &'static str {
        match self {
            Strategy::Random => "random",
            Strategy::Systematic => "systematic",
            Strategy::Both => "both",
        }
    }
}

impl std::str::FromStr for Strategy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "random" => Ok(Strategy::Random),
            "systematic" => Ok(Strategy::Systematic),
            "both" => Ok(Strategy::Both),
            other => Err(format!(
                "unknown strategy '{other}' (random|systematic|both)"
            )),
        }
    }
}

/// Exploration parameters.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Workload spec recorded into artifacts (the CLI's workload name).
    pub workload: String,
    /// Base seed: run seeds and generated faults derive from it.
    pub seed: u64,
    /// Total exploration run budget (shrink/confirm runs not included).
    pub runs: usize,
    /// Max decision-point substitutions along one systematic path.
    pub preemptions: usize,
    /// Generate fault plans on part of the random walk.
    pub inject_faults: bool,
    pub strategy: Strategy,
    /// Run the trace lint as an oracle on completed runs.
    pub lint_oracle: bool,
    /// Max predicate evaluations while shrinking one failure.
    pub shrink_budget: usize,
    /// Worker threads for exploration runs (`0` = available parallelism).
    /// Findings are identical for every value at a fixed seed — batches
    /// are formed and absorbed in deterministic order regardless of which
    /// worker executes which run.
    pub jobs: usize,
    /// Collect engine + explorer telemetry
    /// ([`Explorer::explore_traced`] then returns a [`MetricsReport`]).
    /// Event-derived counters are byte-identical across `jobs` at a fixed
    /// seed; metered runs never fork from prefix checkpoints, so metrics
    /// mode trades some shared-prefix speedup for whole-run counters.
    pub metrics: bool,
    /// Print a throttled progress heartbeat to stderr while exploring.
    pub progress: bool,
    /// Statically proven commutativity facts (from `tracedbg-analysis`).
    /// When present, the systematic search keeps Godefroid-style sleep
    /// sets and skips enqueueing alternatives that only permute
    /// independent decisions. `None` degrades to the full search.
    pub independence: Option<IndependenceFacts>,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            workload: String::new(),
            seed: 0,
            runs: 64,
            preemptions: 2,
            inject_faults: false,
            strategy: Strategy::Both,
            lint_oracle: true,
            shrink_budget: 128,
            jobs: 1,
            metrics: false,
            progress: false,
            independence: None,
        }
    }
}

/// One confirmed failure with its minimized, replayable schedule.
#[derive(Clone, Debug, Serialize)]
pub struct Finding {
    /// Failure class (`deadlock`, `panic`, `lint`, `divergence`).
    pub class: String,
    pub detail: String,
    /// Which exploration run exposed it (1-based).
    pub found_on_run: usize,
    /// Strategy that found it.
    pub strategy: String,
    /// Decision count before/after shrinking.
    pub decisions_recorded: usize,
    pub decisions_shrunk: usize,
    /// Did a final scripted re-execution reproduce the class with a
    /// stable trace digest?
    pub confirmed: bool,
    pub artifact: ScheduleArtifact,
}

/// The full result of one exploration.
#[derive(Serialize)]
pub struct ExploreReport {
    pub workload: String,
    pub procs: usize,
    pub seed: u64,
    pub strategy: String,
    /// Worker threads used (resolved: never 0).
    pub jobs: usize,
    /// Exploration runs executed (budget consumption).
    pub runs_executed: usize,
    /// Extra runs spent on shrinking and confirming findings.
    pub aux_runs: usize,
    /// Schedules skipped as equivalent to one already seen.
    pub pruned: usize,
    /// Branch points (real choices) in the deterministic baseline run.
    pub baseline_branches: usize,
    /// Sibling-schedule groups that shared one checkpointed prefix
    /// execution (systematic mode). Deterministic for a fixed seed.
    pub prefix_groups: usize,
    /// Systematic alternatives skipped by sleep sets (DPOR). Deterministic
    /// for a fixed seed at every `jobs` count.
    pub sleep_skipped: u64,
    /// Independent rank pairs proven by the static analysis (0 without
    /// independence facts).
    pub independence_pairs: u64,
    pub findings: Vec<Finding>,
}

impl ExploreReport {
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serialization cannot fail")
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "explored {} (procs={} seed={} strategy={} jobs={}): {} runs, {} aux, {} pruned, {} baseline branch point(s)\n",
            self.workload,
            self.procs,
            self.seed,
            self.strategy,
            self.jobs,
            self.runs_executed,
            self.aux_runs,
            self.pruned,
            self.baseline_branches,
        ));
        if self.independence_pairs > 0 {
            out.push_str(&format!(
                "sleep sets: {} independent rank pair(s), {} alternative(s) skipped\n",
                self.independence_pairs, self.sleep_skipped,
            ));
        }
        if self.findings.is_empty() {
            out.push_str("no violations found\n");
        }
        for f in &self.findings {
            out.push_str(&format!(
                "[{}] run {} ({}): {}\n    schedule: {} -> {} decision(s), {} fault(s){}\n",
                f.class,
                f.found_on_run,
                f.strategy,
                f.detail,
                f.decisions_recorded,
                f.decisions_shrunk,
                f.artifact.faults.len(),
                if f.confirmed {
                    ", confirmed"
                } else {
                    ", UNCONFIRMED"
                },
            ));
        }
        out
    }
}

/// The exploration engine.
pub struct Explorer {
    cfg: ExploreConfig,
    source: Arc<ProgramSource>,
    procs: usize,
    runs_executed: usize,
    aux_runs: usize,
    pruned: usize,
    digests: HashSet<u64>,
    prefixes: HashSet<u64>,
    findings: Vec<Finding>,
    classes_found: HashSet<String>,
    /// Shared-prefix checkpoints for sibling schedules (systematic mode).
    prefix_cache: Arc<PrefixCache>,
    prefix_groups: usize,
    /// Persistent worker pool, spun up on the first parallel batch and
    /// reused for every batch after it (see [`WorkerPool`]).
    pool: Option<WorkerPool>,
    /// Alternatives skipped because they were asleep (sleep-set DPOR).
    sleep_skipped: u64,
    /// Telemetry accumulator (`cfg.metrics`).
    obs: Option<Box<ObsAcc>>,
    /// Last `--progress` heartbeat.
    last_progress: Instant,
}

/// Everything the explorer accumulates for a [`MetricsReport`]. The event
/// half (engine counters, prune/oracle counts) is fed exclusively from the
/// deterministic absorb order; the timing half (worker load, snapshot
/// time) is honest wall-clock data.
struct ObsAcc {
    /// Metered engine runs merged into `engine` (budgeted exploration
    /// runs; shrink/confirm aux runs are not metered).
    runs: u64,
    engine: EngineMetrics,
    digest_pruned: u64,
    prefix_pruned: u64,
    /// Oracle verdicts per class, every trigger (not just first-per-class
    /// findings).
    oracle_triggers: BTreeMap<String, u64>,
    /// Per-worker (tasks, busy ns) summed over batches.
    worker_load: WorkerLoad,
    snapshot_ns: u64,
}

impl ObsAcc {
    fn new(procs: usize) -> Box<Self> {
        Box::new(ObsAcc {
            runs: 0,
            engine: EngineMetrics::new(procs),
            digest_pruned: 0,
            prefix_pruned: 0,
            oracle_triggers: BTreeMap::new(),
            worker_load: Vec::new(),
            snapshot_ns: 0,
        })
    }

    fn add_load(&mut self, load: &WorkerLoad) {
        if self.worker_load.len() < load.len() {
            self.worker_load.resize(load.len(), (0, 0));
        }
        for (acc, l) in self.worker_load.iter_mut().zip(load) {
            acc.0 += l.0;
            acc.1 += l.1;
        }
    }
}

/// Don't bother checkpointing shared prefixes shorter than this: even a
/// task-frame restore clones per-rank state and recorder buffers, which
/// only pays off once a real chunk of execution is skipped.
const MIN_SHARED_PREFIX: usize = 3;

/// Queue entry of the systematic search: (schedule prefix, substitution
/// depth along the path, decisions asleep at the end of the prefix).
type SleepEntry = (Vec<Decision>, usize, Vec<Decision>);

fn hash_decisions(d: &[Decision]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    d.hash(&mut h);
    h.finish()
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Explorer {
    pub fn new(cfg: ExploreConfig, source: ProgramSource) -> Self {
        let procs = source().len();
        let obs = cfg.metrics.then(|| ObsAcc::new(procs));
        Explorer {
            cfg,
            source: Arc::new(source),
            procs,
            runs_executed: 0,
            aux_runs: 0,
            pruned: 0,
            digests: HashSet::new(),
            prefixes: HashSet::new(),
            findings: Vec::new(),
            classes_found: HashSet::new(),
            prefix_cache: Arc::new(PrefixCache::new()),
            prefix_groups: 0,
            pool: None,
            sleep_skipped: 0,
            obs,
            last_progress: Instant::now(),
        }
    }

    /// The resolved worker-thread count (never 0).
    fn effective_jobs(&self) -> usize {
        match self.cfg.jobs {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }

    /// Dispatch a batch of tasks, sequentially or on the persistent
    /// worker pool, returning `(tasks, results, load)` with results in
    /// task order.
    fn run_tasks(
        &mut self,
        tasks: Vec<RunTask>,
    ) -> (Arc<Vec<RunTask>>, Vec<RunResult>, WorkerLoad) {
        let jobs = self.effective_jobs();
        let tasks = Arc::new(tasks);
        // Usable concurrency: a pool that would spawn zero workers (more
        // jobs than cores) is just the sequential loop with extra
        // bookkeeping, so run the plain loop instead.
        let threads = jobs.min(
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        );
        if threads <= 1 || tasks.len() <= 1 {
            let t0 = Instant::now();
            let results = tasks
                .iter()
                .map(|t| execute_task(&self.source, t, &self.prefix_cache))
                .collect();
            let load = vec![(tasks.len() as u64, t0.elapsed().as_nanos() as u64)];
            return (tasks, results, load);
        }
        if self.pool.is_none() {
            self.pool = Some(WorkerPool::new(
                jobs,
                Arc::clone(&self.source),
                Arc::clone(&self.prefix_cache),
            ));
        }
        let pool = self.pool.as_ref().expect("pool just created");
        let (results, load) = pool.run(Arc::clone(&tasks));
        (tasks, results, load)
    }

    /// Run the exploration to completion and report.
    pub fn explore(self) -> ExploreReport {
        self.explore_traced().0
    }

    /// [`Explorer::explore`], additionally returning a [`MetricsReport`]
    /// when the config opted into telemetry (`cfg.metrics`). The
    /// [`ExploreReport`] is identical either way.
    pub fn explore_traced(mut self) -> (ExploreReport, Option<MetricsReport>) {
        let started = Instant::now();
        // Failing runs are the point here; keep their panics off stderr.
        tracedbg_mpsim::set_quiet_panics(true);
        // Deterministic baseline: the root of systematic search, and the
        // subject of the replay-conformance oracle.
        let base = self.run_and_check(SchedPolicy::RoundRobin, &[], "baseline");
        let baseline_branches = base.points.iter().filter(|p| p.is_branch()).count();
        self.conformance_check(&base);
        match self.cfg.strategy {
            Strategy::Systematic | Strategy::Both => self.systematic(&base),
            Strategy::Random => {}
        }
        match self.cfg.strategy {
            Strategy::Random | Strategy::Both => self.random_walk(),
            Strategy::Systematic => {}
        }
        tracedbg_mpsim::set_quiet_panics(false);
        let jobs = self.effective_jobs();
        let metrics = self
            .obs
            .take()
            .map(|acc| self.metrics_report(*acc, jobs, started.elapsed()));
        let report = ExploreReport {
            workload: self.cfg.workload,
            procs: self.procs,
            seed: self.cfg.seed,
            strategy: self.cfg.strategy.as_str().to_string(),
            jobs,
            runs_executed: self.runs_executed,
            aux_runs: self.aux_runs,
            pruned: self.pruned,
            baseline_branches,
            prefix_groups: self.prefix_groups,
            sleep_skipped: self.sleep_skipped,
            independence_pairs: self
                .cfg
                .independence
                .as_ref()
                .map(|f| f.pair_count())
                .unwrap_or(0),
            findings: self.findings,
        };
        (report, metrics)
    }

    /// Assemble the [`MetricsReport`] from the accumulator. The `event`
    /// section is built purely from absorb-order state; everything
    /// wall-clock-shaped goes in `timing`.
    fn metrics_report(&self, acc: ObsAcc, jobs: usize, elapsed: Duration) -> MetricsReport {
        let event = EventMetrics {
            runs: acc.runs,
            engine: acc.engine,
            explore: Some(ExploreEvent {
                runs_executed: self.runs_executed as u64,
                aux_runs: self.aux_runs as u64,
                digest_pruned: acc.digest_pruned,
                prefix_pruned: acc.prefix_pruned,
                prefix_groups: self.prefix_groups as u64,
                runs_skipped_by_sleep_sets: self.sleep_skipped,
                independence_pairs: self
                    .cfg
                    .independence
                    .as_ref()
                    .map(|f| f.pair_count())
                    .unwrap_or(0),
                // BTreeMap iteration = sorted by class name.
                oracle_triggers: acc
                    .oracle_triggers
                    .into_iter()
                    .map(|(class, count)| ClassCount { class, count })
                    .collect(),
            }),
        };
        let wall_ms = (elapsed.as_millis() as u64).max(1);
        let timing = TimingMetrics {
            wall_ms,
            walks_per_sec: self.runs_executed as u64 * 1000 / wall_ms,
            snapshot_ns: acc.snapshot_ns,
            workers: acc
                .worker_load
                .iter()
                .enumerate()
                .map(|(w, &(tasks, busy_ns))| {
                    let busy_ms = busy_ns / 1_000_000;
                    WorkerStat {
                        worker: w as u64,
                        tasks,
                        busy_ms,
                        util_pct: (busy_ms * 100 / wall_ms).min(100),
                    }
                })
                .collect(),
            prefix_cache_hits: self.prefix_cache.hits() as u64,
            prefix_cache_len: self.prefix_cache.len() as u64,
            checkpoint_cache: None,
            commands: Vec::new(),
        };
        MetricsReport::new(
            "explore",
            &self.cfg.workload,
            self.procs as u64,
            self.cfg.seed,
            jobs as u64,
            event,
            timing,
        )
    }

    /// Execute one exploration run and feed it to the oracles.
    fn run_and_check(
        &mut self,
        policy: SchedPolicy,
        faults: &[Fault],
        strategy: &'static str,
    ) -> RunResult {
        let res = execute_metered(&self.source, policy, faults, self.cfg.metrics);
        self.absorb(&res, faults, strategy);
        res
    }

    /// Account one finished run and feed it to the oracles. Every run —
    /// sequential or from a parallel batch — passes through here in
    /// deterministic task order, which is what keeps `jobs=N` findings
    /// identical to `jobs=1`. Telemetry event counters are fed from the
    /// same place, inheriting the same invariance.
    fn absorb(&mut self, res: &RunResult, faults: &[Fault], strategy: &'static str) {
        self.runs_executed += 1;
        if let Some(obs) = self.obs.as_mut() {
            if let Some(m) = &res.metrics {
                obs.runs += 1;
                obs.engine.merge(m);
                obs.snapshot_ns += res.snapshot_ns;
            }
        }
        if self.digests.insert(res.digest) {
            if let Some(v) = oracle::check(res, self.cfg.lint_oracle) {
                if let Some(obs) = self.obs.as_mut() {
                    *obs.oracle_triggers
                        .entry(v.class().to_string())
                        .or_default() += 1;
                }
                self.handle_violation(res, faults, v, strategy);
            }
        } else {
            self.pruned += 1;
            if let Some(obs) = self.obs.as_mut() {
                obs.digest_pruned += 1;
            }
        }
        self.heartbeat();
    }

    /// Throttled `--progress` heartbeat on stderr (≥500 ms apart, so even
    /// tight exploration loops cost one `Instant` read per run).
    fn heartbeat(&mut self) {
        if !self.cfg.progress || self.last_progress.elapsed() < Duration::from_millis(500) {
            return;
        }
        self.last_progress = Instant::now();
        eprintln!(
            "explore: {}/{} runs, {} pruned, {} finding(s)",
            self.runs_executed,
            self.cfg.runs,
            self.pruned,
            self.findings.len()
        );
    }

    /// Replay-conformance oracle: re-executing the baseline's own decision
    /// sequence as a script must regenerate the identical trace. A
    /// mismatch is a bug in the record/replay machinery itself.
    fn conformance_check(&mut self, base: &RunResult) {
        if base.class != CLASS_COMPLETED {
            return;
        }
        self.aux_runs += 1;
        let rerun = execute(
            &self.source,
            SchedPolicy::Scripted(base.decisions.clone()),
            &[],
        );
        if rerun.digest != base.digest || rerun.diverged {
            let mut artifact =
                ScheduleArtifact::new(self.cfg.workload.clone(), self.procs, self.cfg.seed);
            artifact.decisions = base.decisions.clone();
            artifact.failure = Some(CLASS_DIVERGENCE.to_string());
            self.findings.push(Finding {
                class: CLASS_DIVERGENCE.to_string(),
                detail: format!(
                    "scripted re-execution of the baseline diverged (diverged={}, digest {:#x} vs {:#x})",
                    rerun.diverged, rerun.digest, base.digest
                ),
                found_on_run: self.runs_executed,
                strategy: "baseline".to_string(),
                decisions_recorded: base.decisions.len(),
                decisions_shrunk: base.decisions.len(),
                confirmed: false,
                artifact,
            });
        }
    }

    /// Bounded-preemption search, breadth-first: every 1-preemption
    /// schedule runs before any 2-preemption schedule. Each queue entry is
    /// a schedule prefix that replays an observed run up to a branch point
    /// and substitutes one alternative; `depth` counts substitutions along
    /// the path. Breadth order matters — races live at early branch
    /// points, and depth-first order would burn the whole run budget
    /// permuting the (usually equivalent) tail of the schedule.
    ///
    /// Parallel shape: the FIFO queue is drained into batches (prefix
    /// pruning and budget accounting happen at batch-formation time,
    /// exactly where the sequential loop did them at dequeue time), each
    /// batch runs on the worker pool, and results are absorbed — oracles,
    /// digest pruning, queue extensions — in task order. Extensions of
    /// batch item `k` therefore enqueue before extensions of item `k+1`,
    /// which is precisely the sequential FIFO order.
    fn systematic(&mut self, base: &RunResult) {
        let mut queue: VecDeque<SleepEntry> = VecDeque::new();
        Self::push_extensions(
            &base.points,
            0,
            0,
            &[],
            self.cfg.independence.as_ref(),
            &mut self.sleep_skipped,
            &mut queue,
        );
        loop {
            let mut batch: Vec<SleepEntry> = Vec::new();
            while self.runs_executed + batch.len() < self.cfg.runs {
                let Some((prefix, depth, sleep)) = queue.pop_front() else {
                    break;
                };
                // Prefix-level pruning: an already-visited substitution
                // leads to an already-explored subtree.
                if !self.prefixes.insert(hash_decisions(&prefix)) {
                    self.pruned += 1;
                    if let Some(obs) = self.obs.as_mut() {
                        obs.prefix_pruned += 1;
                    }
                    continue;
                }
                batch.push((prefix, depth, sleep));
            }
            if batch.is_empty() {
                break;
            }
            let tasks = self.assign_prefix_roles(&batch);
            self.prefix_groups += tasks.iter().filter(|t| t.snapshot_at.is_some()).count();
            let (_tasks, results, load) = self.run_tasks(tasks);
            if let Some(obs) = self.obs.as_mut() {
                obs.add_load(&load);
            }
            for ((prefix, depth, sleep), res) in batch.into_iter().zip(results) {
                self.absorb(&res, &[], "systematic");
                // Only branch on decisions *after* the substitution:
                // earlier alternatives are someone else's subtree (the
                // sleep-set-style part of the reduction).
                if depth < self.cfg.preemptions && !res.diverged {
                    Self::push_extensions(
                        &res.points,
                        prefix.len(),
                        depth,
                        &sleep,
                        self.cfg.independence.as_ref(),
                        &mut self.sleep_skipped,
                        &mut queue,
                    );
                }
            }
        }
    }

    /// Turn a batch of schedule prefixes into run tasks, assigning
    /// prefix-checkpoint roles: sibling prefixes (identical up to their
    /// final decision) share one engine execution of that common prefix.
    /// The first sibling of each group becomes the *producer* —
    /// checkpointing at the shared depth — and the rest *fork* from the
    /// cached checkpoint, re-executing only their own last decision
    /// onward. Groups whose prefix is already cached (a batch straddling
    /// the budget, say) get consumers only.
    ///
    /// Role assignment depends only on the batch and on which keys earlier
    /// batches cached — both deterministic — so the task list is identical
    /// for every worker count.
    fn assign_prefix_roles(&self, batch: &[SleepEntry]) -> Vec<RunTask> {
        let mut group_size: std::collections::HashMap<u64, usize> =
            std::collections::HashMap::new();
        for (prefix, _, _) in batch {
            if prefix.len() > MIN_SHARED_PREFIX {
                *group_size
                    .entry(hash_decisions(&prefix[..prefix.len() - 1]))
                    .or_default() += 1;
            }
        }
        let mut producing: HashSet<u64> = HashSet::new();
        batch
            .iter()
            .map(|(prefix, _, _)| {
                let mut task = RunTask::plain(SchedPolicy::Scripted(prefix.clone()), Vec::new());
                task.metrics = self.cfg.metrics;
                if prefix.len() <= MIN_SHARED_PREFIX {
                    return task;
                }
                let shared = prefix.len() - 1;
                let key = hash_decisions(&prefix[..shared]);
                let cached = self.prefix_cache.contains(key);
                if cached {
                    task.prefix_key = Some(key);
                } else if group_size[&key] >= 2 {
                    task.prefix_key = Some(key);
                    if producing.insert(key) {
                        // First sibling of an uncached group produces.
                        task.snapshot_at = Some(shared);
                    }
                }
                task
            })
            .collect()
    }

    /// For every branch point at index >= `from`, enqueue each untaken
    /// alternative as (replayed prefix + alternative).
    ///
    /// With independence facts, this is where the DPOR reduction lives
    /// (sleep sets plus a source-set-style skip, adapted to the
    /// breadth-first prefix queue).
    ///
    /// *Source-set skip*: an alternative independent of the point's chosen
    /// decision is not enqueued at all. Nothing dependent with it executes
    /// here, so it stays enabled and is offered again at the first later
    /// point whose chosen decision depends on it (a rank's own next
    /// decision is always dependent); substituting it earlier only
    /// commutes it across an independent segment, which yields a
    /// Mazurkiewicz-equivalent run the digest pruner would discard after
    /// paying for the execution.
    ///
    /// *Sleep sets* (Godefroid-style): a decision is *asleep* when an
    /// already-enqueued sibling subtree covers every behavior reachable
    /// through it. Each enqueued alternative inherits the sleeping
    /// decisions it is independent of, plus its earlier siblings;
    /// executing a dependent decision wakes a sleeper.
    ///
    /// Both skips count into `sleep_skipped`. Without facts every sleep
    /// set is empty, no alternative is provably independent, and this
    /// reduces exactly to the full search.
    #[allow(clippy::too_many_arguments)]
    fn push_extensions(
        points: &[DecisionPoint],
        from: usize,
        depth: usize,
        entry_sleep: &[Decision],
        facts: Option<&IndependenceFacts>,
        sleep_skipped: &mut u64,
        queue: &mut VecDeque<SleepEntry>,
    ) {
        let mut asleep: Vec<Decision> = entry_sleep.to_vec();
        for (i, p) in points.iter().enumerate().skip(from) {
            if p.is_branch() {
                let mut explored: Vec<Decision> = vec![p.chosen];
                for &alt in &p.alternatives {
                    if alt == p.chosen {
                        continue;
                    }
                    if facts.is_some_and(|f| f.independent(&alt, &p.chosen)) {
                        *sleep_skipped += 1;
                        continue;
                    }
                    if asleep.contains(&alt) {
                        *sleep_skipped += 1;
                        continue;
                    }
                    let child_sleep: Vec<Decision> = match facts {
                        Some(f) => asleep
                            .iter()
                            .chain(explored.iter())
                            .filter(|u| f.independent(u, &alt))
                            .copied()
                            .collect(),
                        None => Vec::new(),
                    };
                    let mut prefix: Vec<Decision> = points[..i].iter().map(|q| q.chosen).collect();
                    prefix.push(alt);
                    queue.push_back((prefix, depth + 1, child_sleep));
                    explored.push(alt);
                }
            }
            if !asleep.is_empty() {
                match facts {
                    Some(f) => asleep.retain(|u| f.independent(u, &p.chosen)),
                    None => asleep.clear(),
                }
            }
        }
    }

    /// Seeded random walks until the budget runs out.
    ///
    /// Each walk's scheduling seed and fault plan derive purely from the
    /// base seed and the walk index — a private ChaCha8 stream per run, so
    /// the task list is the same however many workers execute it.
    fn random_walk(&mut self) {
        let jobs = self.effective_jobs();
        let mut i = 0u64;
        while self.runs_executed < self.cfg.runs {
            let remaining = self.cfg.runs - self.runs_executed;
            // Chunk the budget so results (each holding a full trace) are
            // absorbed and dropped before the next chunk is dispatched.
            let chunk = remaining.min((jobs * 4).max(8));
            let tasks: Vec<RunTask> = (0..chunk)
                .map(|_| {
                    i += 1;
                    let seed = splitmix64(self.cfg.seed.wrapping_add(i));
                    let faults = if self.cfg.inject_faults && i.is_multiple_of(2) {
                        let mut rng = ChaCha8Rng::seed_from_u64(splitmix64(seed));
                        self.gen_faults(&mut rng)
                    } else {
                        Vec::new()
                    };
                    let mut task = RunTask::plain(SchedPolicy::Seeded(seed), faults);
                    task.metrics = self.cfg.metrics;
                    task
                })
                .collect();
            let (tasks, results, load) = self.run_tasks(tasks);
            if let Some(obs) = self.obs.as_mut() {
                obs.add_load(&load);
            }
            for (task, res) in tasks.iter().zip(results) {
                self.absorb(&res, &task.faults, "random");
            }
        }
    }

    /// A small random fault plan: delays dominate (they stay within MPI
    /// legality), with occasional crash/hang injections.
    fn gen_faults(&self, rng: &mut ChaCha8Rng) -> Vec<Fault> {
        let n = 1 + rng.gen_range(0..2);
        (0..n)
            .map(|_| {
                let rank = Rank(rng.gen_range(0..self.procs) as u32);
                match rng.gen_range(0..4) {
                    0 | 1 => {
                        let mut dst = rng.gen_range(0..self.procs);
                        if dst == rank.ix() {
                            dst = (dst + 1) % self.procs;
                        }
                        Fault::Delay {
                            src: rank,
                            dst: Rank(dst as u32),
                            nth: rng.gen_range(0..3) as u64,
                            extra_ns: 1_000_000 * (1 + rng.gen_range(0..100)) as u64,
                        }
                    }
                    2 => Fault::Crash {
                        rank,
                        after_ops: rng.gen_range(0..4) as u64,
                    },
                    _ => Fault::Hang {
                        rank,
                        after_ops: rng.gen_range(0..4) as u64,
                    },
                }
            })
            .collect()
    }

    /// Shrink, minimize faults, confirm, and record one violation.
    fn handle_violation(
        &mut self,
        res: &RunResult,
        faults: &[Fault],
        v: Violation,
        strategy: &'static str,
    ) {
        let class = v.class().to_string();
        // One finding per class keeps reports and artifact sets small; the
        // first exposure is also the cheapest to shrink.
        if !self.classes_found.insert(class.clone()) {
            return;
        }
        let recorded = res.decisions.len();
        let mut aux = 0usize;
        let reproduces = |decisions: &[Decision], faults: &[Fault], aux: &mut usize| -> bool {
            *aux += 1;
            let rerun = execute(
                &self.source,
                SchedPolicy::Scripted(decisions.to_vec()),
                faults,
            );
            rerun.class == class
        };
        // Delta-debug the decision sequence (fault plan held fixed).
        let shrunk = ddmin(res.decisions.clone(), self.cfg.shrink_budget, |d| {
            reproduces(d, faults, &mut aux)
        });
        // Then drop faults that are not needed to reproduce.
        let mut kept: Vec<Fault> = faults.to_vec();
        let mut fi = 0;
        while fi < kept.len() {
            let mut without = kept.clone();
            without.remove(fi);
            if reproduces(&shrunk, &without, &mut aux) {
                kept = without;
            } else {
                fi += 1;
            }
        }
        // Confirm: two scripted re-executions agree with each other and
        // with the failure class. The first confirm run of a deadlock or
        // panic is metered so its flight-recorder dump — the last engine
        // decisions before the failure — rides along in the artifact.
        let meter_confirm = class == CLASS_DEADLOCK || class == CLASS_PANIC;
        let c1 = execute_metered(
            &self.source,
            SchedPolicy::Scripted(shrunk.clone()),
            &kept,
            meter_confirm,
        );
        let c2 = execute(&self.source, SchedPolicy::Scripted(shrunk.clone()), &kept);
        aux += 2;
        let confirmed = c1.class == class && c2.class == class && c1.digest == c2.digest;
        self.aux_runs += aux;

        let mut artifact =
            ScheduleArtifact::new(self.cfg.workload.clone(), self.procs, self.cfg.seed);
        artifact.faults = kept;
        artifact.decisions = shrunk;
        artifact.failure = Some(class.clone());
        if c1.class == class && !c1.flight.is_empty() {
            artifact.flight = Some(c1.flight);
        }
        self.findings.push(Finding {
            class,
            detail: v.detail().to_string(),
            found_on_run: self.runs_executed,
            strategy: strategy.to_string(),
            decisions_recorded: recorded,
            decisions_shrunk: artifact.decisions.len(),
            confirmed,
            artifact,
        });
    }
}
