//! One explored run: engine execution → compact result.

use crate::pool::{PrefixCache, RunTask};
use tracedbg_instrument::RecorderConfig;
use tracedbg_mpsim::{
    Engine, EngineConfig, EngineMetrics, FaultPlan, RankProgram, RunOutcome, SchedPolicy,
};
use tracedbg_trace::schedule::{Decision, DecisionPoint, Fault};
use tracedbg_trace::{trace_digest, TraceStore};

/// Recreates the target program for each run (the explorer executes it
/// many times).
pub type ProgramSource = Box<dyn Fn() -> Vec<RankProgram> + Send + Sync>;

/// Outcome classes. These are the `failure` strings written into schedule
/// artifacts; `tracedbg replay` compares against them.
pub const CLASS_COMPLETED: &str = "completed";
pub const CLASS_DEADLOCK: &str = "deadlock";
pub const CLASS_PANIC: &str = "panic";
pub const CLASS_STOPPED: &str = "stopped";
pub const CLASS_LINT: &str = "lint";
pub const CLASS_DIVERGENCE: &str = "divergence";

/// Everything the explorer keeps from one run.
pub struct RunResult {
    /// Outcome class (`CLASS_*`).
    pub class: &'static str,
    /// Human-readable outcome detail.
    pub detail: String,
    /// Whether the deadlock (if any) was a genuine circular wait.
    pub cyclic: bool,
    /// The decisions the run actually made.
    pub decisions: Vec<Decision>,
    /// Decisions with their alternatives — the branch structure.
    pub points: Vec<DecisionPoint>,
    /// Stable digest of the run's trace, for equivalence pruning.
    pub digest: u64,
    /// The run's trace (for trace-level oracles).
    pub store: TraceStore,
    /// Did a scripted policy fail to apply at some point?
    pub diverged: bool,
    /// Did any injected fault actually silence a process?
    pub fault_fired: bool,
    /// Engine telemetry, when the run was metered (`RunTask::metrics`).
    pub metrics: Option<Box<EngineMetrics>>,
    /// Flight-recorder dump of the run's last decisions; empty unless the
    /// run was metered.
    pub flight: Vec<String>,
    /// Wall-clock nanoseconds the engine spent snapshotting (metered runs
    /// only; timing, so never part of the event-determinism contract).
    pub snapshot_ns: u64,
}

/// Execute the program once under `policy` + `faults` and summarize.
pub fn execute(source: &ProgramSource, policy: SchedPolicy, faults: &[Fault]) -> RunResult {
    execute_metered(source, policy, faults, false)
}

/// [`execute`], optionally with engine telemetry enabled.
pub fn execute_metered(
    source: &ProgramSource,
    policy: SchedPolicy,
    faults: &[Fault],
    metrics: bool,
) -> RunResult {
    let mut engine = Engine::launch(
        EngineConfig {
            policy,
            recorder: RecorderConfig::full(),
            faults: FaultPlan::new(faults.to_vec()),
            metrics,
            ..Default::default()
        },
        source(),
    );
    let outcome = engine.run();
    finish(engine, outcome, None)
}

/// Execute one [`RunTask`], honoring its prefix-checkpoint role.
///
/// * Producer (`snapshot_at: Some(k)`): runs with checkpointing enabled,
///   snapshots at decision depth `k`, and deposits the checkpoint in the
///   cache under `prefix_key` (unless the script diverged — a diverged
///   prefix is not the state its siblings expect).
/// * Consumer (`prefix_key: Some`, no `snapshot_at`): if the shared prefix
///   is cached, restores it and re-executes only the divergent suffix of
///   its script; otherwise falls back to a from-scratch run. Both paths
///   produce byte-identical results (the restore determinism contract).
/// * Plain task: equivalent to [`execute`].
///
/// Metered tasks (`task.metrics`) never fork from a cached prefix: a
/// forked engine only observes its own suffix, so its per-run counters
/// would depend on whether a checkpoint happened to be cached — breaking
/// the jobs-invariance contract for event metrics. Such tasks run from
/// scratch (the producer path keeps its checkpoint role: a from-scratch
/// run observes every event).
pub fn execute_task(source: &ProgramSource, task: &RunTask, cache: &PrefixCache) -> RunResult {
    if let Some(k) = task.snapshot_at {
        let mut engine = Engine::launch(
            EngineConfig {
                policy: task.policy.clone(),
                recorder: RecorderConfig::full(),
                faults: FaultPlan::new(task.faults.clone()),
                checkpoints: true,
                metrics: task.metrics,
                ..Default::default()
            },
            source(),
        );
        engine.set_snapshot_at(k);
        let outcome = engine.run();
        return finish(engine, outcome, task.prefix_key.map(|key| (key, cache)));
    }
    if !task.metrics {
        if let (SchedPolicy::Scripted(script), Some(key), true) =
            (&task.policy, task.prefix_key, task.faults.is_empty())
        {
            if let Some(cp) = cache.get(key) {
                if cp.decision_len() <= script.len() {
                    let mut engine = Engine::restore(&cp, source());
                    engine.set_script(script.clone(), cp.decision_len());
                    let outcome = engine.run();
                    return finish(engine, outcome, None);
                }
            }
        }
    }
    execute_metered(source, task.policy.clone(), &task.faults, task.metrics)
}

/// Summarize a finished engine; as a producer, deposit the pending
/// snapshot (taken mid-run) into the prefix cache first.
fn finish(
    mut engine: Engine,
    outcome: RunOutcome,
    deposit: Option<(u64, &PrefixCache)>,
) -> RunResult {
    let (class, detail, cyclic) = match &outcome {
        RunOutcome::Completed => (CLASS_COMPLETED, "run completed".to_string(), false),
        RunOutcome::Deadlock(rep) => {
            let detail = if rep.is_cyclic() {
                format!("cyclic wait: {:?}", rep.cycle)
            } else {
                format!(
                    "stalled: {} process(es) waiting with no cycle",
                    rep.waits.len()
                )
            };
            (CLASS_DEADLOCK, detail, rep.is_cyclic())
        }
        RunOutcome::Panicked { rank, message } => {
            (CLASS_PANIC, format!("{rank:?} panicked: {message}"), false)
        }
        RunOutcome::Stopped(s) => (
            CLASS_STOPPED,
            format!("{} trap(s), {} paused", s.traps.len(), s.paused.len()),
            false,
        ),
    };
    let decisions = engine.schedule_log();
    let points = engine.decision_points().to_vec();
    let diverged = engine.schedule_diverged();
    let fault_fired = !engine.faulted().is_empty();
    if let Some((key, cache)) = deposit {
        if !diverged {
            if let Some(cp) = engine.take_pending_snapshot() {
                cache.insert(key, cp);
            }
        }
    }
    let flight = if engine.metrics_enabled() {
        engine.flight_dump()
    } else {
        Vec::new()
    };
    let snapshot_ns = engine.snapshot_ns();
    let metrics = engine.take_metrics().map(Box::new);
    let store = engine.trace_store();
    let digest = {
        let recs: Vec<_> = store.records().to_vec();
        trace_digest(&recs)
    };
    RunResult {
        class,
        detail,
        cyclic,
        decisions,
        points,
        digest,
        store,
        diverged,
        fault_fired,
        metrics,
        flight,
        snapshot_ns,
    }
}
