//! Failure oracles: decide whether a run is a violation worth keeping.

use crate::runner::{RunResult, CLASS_DEADLOCK, CLASS_LINT, CLASS_PANIC};
use tracedbg_lint::{lint_trace, LintConfig, Severity};

/// A confirmed oracle violation.
#[derive(Clone, Debug)]
pub enum Violation {
    /// The run stalled — cyclic wait or starvation.
    Deadlock { cyclic: bool, detail: String },
    /// A simulated process panicked (assertion probes land here).
    Panic { detail: String },
    /// The trace-level lint found definite errors on a completed run.
    LintError { rules: Vec<String>, detail: String },
    /// A scripted re-execution failed to reproduce the original run —
    /// an infrastructure bug in the replay machinery itself.
    ReplayDivergence { detail: String },
}

impl Violation {
    /// The artifact failure-class string.
    pub fn class(&self) -> &'static str {
        match self {
            Violation::Deadlock { .. } => CLASS_DEADLOCK,
            Violation::Panic { .. } => CLASS_PANIC,
            Violation::LintError { .. } => CLASS_LINT,
            Violation::ReplayDivergence { .. } => crate::runner::CLASS_DIVERGENCE,
        }
    }

    pub fn detail(&self) -> &str {
        match self {
            Violation::Deadlock { detail, .. }
            | Violation::Panic { detail }
            | Violation::LintError { detail, .. }
            | Violation::ReplayDivergence { detail } => detail,
        }
    }
}

/// Check one run against the outcome- and trace-level oracles.
///
/// Lint only runs on completed, fault-free runs: a crashed or hung process
/// legitimately leaves unmatched sends and truncated histories behind, and
/// flagging those would blame the injection rather than the program.
pub fn check(run: &RunResult, lint_oracle: bool) -> Option<Violation> {
    match run.class {
        CLASS_DEADLOCK => {
            return Some(Violation::Deadlock {
                cyclic: run.cyclic,
                detail: run.detail.clone(),
            });
        }
        CLASS_PANIC => {
            return Some(Violation::Panic {
                detail: run.detail.clone(),
            });
        }
        _ => {}
    }
    if lint_oracle && run.class == crate::runner::CLASS_COMPLETED && !run.fault_fired {
        let diags = lint_trace(&run.store, &LintConfig::default());
        let errors: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        if !errors.is_empty() {
            let rules: Vec<String> = errors.iter().map(|d| d.rule.to_string()).collect();
            let detail = errors
                .iter()
                .map(|d| d.message.clone())
                .collect::<Vec<_>>()
                .join("; ");
            return Some(Violation::LintError { rules, detail });
        }
    }
    None
}
