//! The exploration worker pool.
//!
//! [`run_batch`] fans a deterministically-ordered batch of exploration
//! tasks out over worker threads. Each task is executed by [`execute`],
//! which launches a private `mpsim` engine — workers never share runtime
//! state, so N concurrent runs are as isolated as N sequential ones (and
//! running them concurrently doubles as a stress test of that isolation).
//!
//! Determinism contract: the *content* of every result depends only on its
//! task (policy + fault plan), never on which worker ran it or when, and
//! results are returned **in task order**. The explorer forms batches and
//! absorbs results sequentially, so `jobs = N` observes the exact state
//! transitions of `jobs = 1` — the property the parallel-determinism
//! regression tests pin down.

use crate::runner::{execute, ProgramSource, RunResult};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use tracedbg_mpsim::SchedPolicy;
use tracedbg_trace::schedule::Fault;

/// One unit of exploration work: a scheduling policy plus a fault plan.
pub struct RunTask {
    pub policy: SchedPolicy,
    pub faults: Vec<Fault>,
}

/// Execute every task and return the results in task order.
///
/// With `jobs <= 1` (or a single task) this degenerates to a plain
/// sequential loop; otherwise `min(jobs, tasks.len())` workers pull tasks
/// from a shared cursor and park each result in its task's slot.
pub fn run_batch(source: &ProgramSource, tasks: &[RunTask], jobs: usize) -> Vec<RunResult> {
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, n);
    if jobs == 1 {
        return tasks
            .iter()
            .map(|t| execute(source, t.policy.clone(), &t.faults))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let cursor = &cursor;
            let slots = &slots;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let t = &tasks[i];
                let res = execute(source, t.policy.clone(), &t.faults);
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(res);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every slot is filled before the scope ends")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_mpsim::{Payload, ProgramFn, Rank, Tag};

    fn pingpong_source() -> ProgramSource {
        Box::new(|| {
            let p0: ProgramFn = Box::new(|ctx| {
                let s = ctx.site("pool.rs", 1, "p0");
                ctx.send(Rank(1), Tag(1), Payload::from_i64(1), s);
                let _ = ctx.recv_from(Rank(1), Tag(2), s);
            });
            let p1: ProgramFn = Box::new(|ctx| {
                let s = ctx.site("pool.rs", 2, "p1");
                let _ = ctx.recv_from(Rank(0), Tag(1), s);
                ctx.send(Rank(0), Tag(2), Payload::from_i64(2), s);
            });
            vec![p0, p1]
        })
    }

    #[test]
    fn parallel_batch_matches_sequential_order_and_content() {
        let source = pingpong_source();
        let tasks: Vec<RunTask> = (0..16)
            .map(|i| RunTask {
                policy: SchedPolicy::Seeded(i),
                faults: Vec::new(),
            })
            .collect();
        let seq = run_batch(&source, &tasks, 1);
        let par = run_batch(&source, &tasks, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.digest, b.digest, "same task, same trace digest");
            assert_eq!(a.class, b.class);
            assert_eq!(a.decisions, b.decisions);
        }
    }

    #[test]
    fn oversized_job_count_is_clamped() {
        let source = pingpong_source();
        let tasks = vec![RunTask {
            policy: SchedPolicy::RoundRobin,
            faults: Vec::new(),
        }];
        let out = run_batch(&source, &tasks, 64);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].class, crate::runner::CLASS_COMPLETED);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let source = pingpong_source();
        assert!(run_batch(&source, &[], 8).is_empty());
    }
}
