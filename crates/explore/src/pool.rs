//! The exploration worker pool.
//!
//! [`run_batch`] fans a deterministically-ordered batch of exploration
//! tasks out over worker threads. Each task is executed by [`execute`],
//! which launches a private `mpsim` engine — workers never share runtime
//! state, so N concurrent runs are as isolated as N sequential ones (and
//! running them concurrently doubles as a stress test of that isolation).
//!
//! Determinism contract: the *content* of every result depends only on its
//! task (policy + fault plan), never on which worker ran it or when, and
//! results are returned **in task order**. The explorer forms batches and
//! absorbs results sequentially, so `jobs = N` observes the exact state
//! transitions of `jobs = 1` — the property the parallel-determinism
//! regression tests pin down.

use crate::runner::{execute_task, ProgramSource, RunResult};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use tracedbg_mpsim::{EngineCheckpoint, SchedPolicy};
use tracedbg_trace::schedule::Fault;

/// One unit of exploration work: a scheduling policy plus a fault plan,
/// optionally participating in prefix-checkpoint sharing.
pub struct RunTask {
    pub policy: SchedPolicy,
    pub faults: Vec<Fault>,
    /// Producer role: checkpoint the engine when its decision log reaches
    /// this depth and deposit it in the batch's [`PrefixCache`] under
    /// `prefix_key`. `None` for ordinary runs.
    pub snapshot_at: Option<usize>,
    /// The shared-prefix identity of this task (hash of all decisions but
    /// the last). Consumers (`snapshot_at: None`) fork from the cached
    /// checkpoint when one is present instead of re-executing the prefix.
    pub prefix_key: Option<u64>,
    /// Collect engine telemetry for this run. Metered consumers run from
    /// scratch instead of forking (see [`execute_task`]), keeping
    /// event-derived counters independent of cache state and job count.
    pub metrics: bool,
}

impl RunTask {
    /// A plain run: no checkpoint production or consumption, no telemetry.
    pub fn plain(policy: SchedPolicy, faults: Vec<Fault>) -> Self {
        RunTask {
            policy,
            faults,
            snapshot_at: None,
            prefix_key: None,
            metrics: false,
        }
    }
}

/// Shared-prefix checkpoint store for one exploration.
///
/// Systematic search enqueues sibling schedules that differ only in their
/// final decision; one sibling per group runs as the *producer*
/// (checkpointing at the shared-prefix depth) and the rest *fork* from the
/// restored checkpoint, re-executing only their divergent suffix. The
/// cache is shared across batches and workers; entries are immutable once
/// inserted, so a consumer either sees a fully-built checkpoint or falls
/// back to a from-scratch run — either way the result content is
/// identical (the restore determinism contract), keeping `jobs = N`
/// findings equal to `jobs = 1`.
pub struct PrefixCache {
    entries: Mutex<HashMap<u64, Arc<EngineCheckpoint>>>,
    cap: usize,
    hits: AtomicUsize,
}

impl PrefixCache {
    pub fn new() -> Self {
        Self::with_capacity(64)
    }

    pub fn with_capacity(cap: usize) -> Self {
        PrefixCache {
            entries: Mutex::new(HashMap::new()),
            cap: cap.max(1),
            hits: AtomicUsize::new(0),
        }
    }

    pub fn get(&self, key: u64) -> Option<Arc<EngineCheckpoint>> {
        let hit = self
            .entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
            .cloned();
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    pub fn contains(&self, key: u64) -> bool {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains_key(&key)
    }

    /// Insert unless the cache is full (bounded memory: checkpoints hold
    /// whole reply logs). First insertion wins; re-inserting under a live
    /// key is a no-op.
    pub fn insert(&self, key: u64, cp: EngineCheckpoint) {
        let mut e = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if e.len() < self.cap {
            e.entry(key).or_insert_with(|| Arc::new(cp));
        }
    }

    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consumer forks served from the cache so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }
}

impl Default for PrefixCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-worker share of one batch: `(tasks executed, busy nanoseconds)`,
/// indexed by worker. Pure timing telemetry — which worker ran which task
/// is scheduler-dependent, so nothing event-deterministic may derive from
/// it (results themselves are returned in task order regardless).
pub type WorkerLoad = Vec<(u64, u64)>;

/// Execute every task and return the results in task order.
///
/// With `jobs <= 1` (or a single task) this degenerates to a plain
/// sequential loop; otherwise `min(jobs, tasks.len())` workers pull tasks
/// from a shared cursor and park each result in its task's slot.
pub fn run_batch(
    source: &ProgramSource,
    tasks: &[RunTask],
    jobs: usize,
    cache: &PrefixCache,
) -> Vec<RunResult> {
    run_batch_traced(source, tasks, jobs, cache).0
}

/// [`run_batch`] plus per-worker load accounting (the sequential path
/// reports all work under worker 0).
pub fn run_batch_traced(
    source: &ProgramSource,
    tasks: &[RunTask],
    jobs: usize,
    cache: &PrefixCache,
) -> (Vec<RunResult>, WorkerLoad) {
    let n = tasks.len();
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    let jobs = jobs.clamp(1, n);
    if jobs == 1 {
        let t0 = std::time::Instant::now();
        let results = tasks
            .iter()
            .map(|t| execute_task(source, t, cache))
            .collect();
        let load = vec![(n as u64, t0.elapsed().as_nanos() as u64)];
        return (results, load);
    }
    // Never oversubscribe: workers beyond the machine's cores only add
    // context switches to CPU-bound engine runs. Load accounting keeps
    // `jobs` rows; the unspawned workers simply report zero.
    let threads = jobs.min(
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
    );
    if threads == 1 {
        let t0 = std::time::Instant::now();
        let results = tasks
            .iter()
            .map(|t| execute_task(source, t, cache))
            .collect();
        let mut load = vec![(0, 0); jobs];
        load[0] = (n as u64, t0.elapsed().as_nanos() as u64);
        return (results, load);
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let mut load: Vec<(u64, u64)> = vec![(0, 0); jobs];
    std::thread::scope(|scope| {
        for my_load in load.iter_mut().take(threads) {
            let cursor = &cursor;
            let slots = &slots;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let t0 = std::time::Instant::now();
                let res = execute_task(source, &tasks[i], cache);
                my_load.0 += 1;
                my_load.1 += t0.elapsed().as_nanos() as u64;
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(res);
            });
        }
    });
    let results = slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every slot is filled before the scope ends")
        })
        .collect();
    (results, load)
}

// ---------------------------------------------------------------------------
// Persistent worker pool
// ---------------------------------------------------------------------------

/// One batch in flight on a [`WorkerPool`].
struct Batch {
    tasks: Arc<Vec<RunTask>>,
    cursor: AtomicUsize,
    slots: Vec<Mutex<Option<RunResult>>>,
    /// Per-executor (tasks, busy ns); index 0 is the calling thread.
    loads: Vec<Mutex<(u64, u64)>>,
}

struct PoolState {
    batch: Option<Arc<Batch>>,
    /// Bumped per batch so a worker never re-drains one it finished.
    epoch: u64,
    /// Tasks of the current batch not yet completed.
    open: usize,
    shutdown: bool,
}

struct PoolShared {
    source: Arc<ProgramSource>,
    cache: Arc<PrefixCache>,
    state: Mutex<PoolState>,
    work_cv: Condvar,
    done_cv: Condvar,
}

impl PoolShared {
    /// Pull tasks off the batch cursor until it runs dry, executing each
    /// and parking the result in its slot.
    fn drain(&self, batch: &Batch, executor: usize) {
        let n = batch.tasks.len();
        loop {
            let i = batch.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                return;
            }
            let t0 = std::time::Instant::now();
            let res = execute_task(&self.source, &batch.tasks[i], &self.cache);
            {
                let mut l = batch.loads[executor]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                l.0 += 1;
                l.1 += t0.elapsed().as_nanos() as u64;
            }
            *batch.slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(res);
            let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
            g.open -= 1;
            if g.open == 0 {
                self.done_cv.notify_all();
            }
        }
    }
}

/// A persistent exploration worker pool.
///
/// The old shape — `std::thread::scope` per batch — respawned every
/// worker thread for every batch, and an exploration is *many* small
/// batches (each systematic wave and each random-walk chunk is one).
/// That fixed per-batch thread cost is exactly what made `jobs = N`
/// lose to `jobs = 1` on small workloads. Here workers are spawned
/// once and parked on a condvar between batches, and the **calling
/// thread participates as executor 0**, so a batch costs one
/// `notify_all` instead of N spawns — and on a single-core box the
/// caller simply drains the cursor inline while the parked workers
/// stay out of the way.
///
/// The determinism contract of [`run_batch`] is unchanged: result
/// content depends only on the task, and results come back in task
/// order.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    jobs: usize,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// A pool with `jobs` executors: the calling thread plus up to
    /// `jobs - 1` parked worker threads. Threads beyond the machine's
    /// available parallelism are never spawned — engine runs are CPU
    /// bound, so oversubscribing cores buys nothing but context
    /// switches (and is how `jobs = N` used to lose to `jobs = 1` on
    /// small boxes). Load accounting still reports `jobs` rows; the
    /// unspawned executors simply stay at zero.
    pub fn new(jobs: usize, source: Arc<ProgramSource>, cache: Arc<PrefixCache>) -> Self {
        let jobs = jobs.max(1);
        let spawn = (jobs - 1).min(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .saturating_sub(1),
        );
        let shared = Arc::new(PoolShared {
            source,
            cache,
            state: Mutex::new(PoolState {
                batch: None,
                epoch: 0,
                open: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (1..=spawn)
            .map(|executor| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let mut seen = 0u64;
                    loop {
                        let batch = {
                            let mut g = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                            loop {
                                if g.shutdown {
                                    return;
                                }
                                if g.epoch != seen {
                                    if let Some(b) = &g.batch {
                                        seen = g.epoch;
                                        break Arc::clone(b);
                                    }
                                }
                                g = shared.work_cv.wait(g).unwrap_or_else(|e| e.into_inner());
                            }
                        };
                        shared.drain(&batch, executor);
                    }
                })
            })
            .collect();
        WorkerPool {
            shared,
            jobs,
            workers,
        }
    }

    /// Number of executors (calling thread included).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Execute every task and return the results in task order, plus
    /// per-executor load. The caller drains alongside the workers and
    /// returns only when every slot is filled.
    pub fn run(&self, tasks: Arc<Vec<RunTask>>) -> (Vec<RunResult>, WorkerLoad) {
        let n = tasks.len();
        if n == 0 {
            return (Vec::new(), Vec::new());
        }
        let batch = Arc::new(Batch {
            tasks,
            cursor: AtomicUsize::new(0),
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            loads: (0..self.jobs).map(|_| Mutex::new((0, 0))).collect(),
        });
        {
            let mut g = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            g.batch = Some(Arc::clone(&batch));
            g.epoch += 1;
            g.open = n;
            self.shared.work_cv.notify_all();
        }
        self.shared.drain(&batch, 0);
        let mut g = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        while g.open > 0 {
            g = self
                .shared
                .done_cv
                .wait(g)
                .unwrap_or_else(|e| e.into_inner());
        }
        g.batch = None;
        drop(g);
        let results = batch
            .slots
            .iter()
            .map(|m| {
                m.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("open == 0 means every slot is filled")
            })
            .collect();
        let load = batch
            .loads
            .iter()
            .map(|m| *m.lock().unwrap_or_else(|e| e.into_inner()))
            .collect();
        (results, load)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut g = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            g.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_mpsim::{Payload, ProgramFn, Rank, Tag};

    fn pingpong_source() -> ProgramSource {
        Box::new(|| {
            let p0: ProgramFn = Box::new(|ctx| {
                let s = ctx.site("pool.rs", 1, "p0");
                ctx.send(Rank(1), Tag(1), Payload::from_i64(1), s);
                let _ = ctx.recv_from(Rank(1), Tag(2), s);
            });
            let p1: ProgramFn = Box::new(|ctx| {
                let s = ctx.site("pool.rs", 2, "p1");
                let _ = ctx.recv_from(Rank(0), Tag(1), s);
                ctx.send(Rank(0), Tag(2), Payload::from_i64(2), s);
            });
            vec![p0.into(), p1.into()]
        })
    }

    #[test]
    fn parallel_batch_matches_sequential_order_and_content() {
        let source = pingpong_source();
        let tasks: Vec<RunTask> = (0..16)
            .map(|i| RunTask::plain(SchedPolicy::Seeded(i), Vec::new()))
            .collect();
        let cache = PrefixCache::new();
        let seq = run_batch(&source, &tasks, 1, &cache);
        let par = run_batch(&source, &tasks, 4, &cache);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.digest, b.digest, "same task, same trace digest");
            assert_eq!(a.class, b.class);
            assert_eq!(a.decisions, b.decisions);
        }
    }

    #[test]
    fn oversized_job_count_is_clamped() {
        let source = pingpong_source();
        let tasks = vec![RunTask::plain(SchedPolicy::RoundRobin, Vec::new())];
        let out = run_batch(&source, &tasks, 64, &PrefixCache::new());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].class, crate::runner::CLASS_COMPLETED);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let source = pingpong_source();
        assert!(run_batch(&source, &[], 8, &PrefixCache::new()).is_empty());
    }

    #[test]
    fn producer_then_consumer_forks_match_scratch_runs() {
        // Record a schedule, then replay it as a sibling group: the
        // producer checkpoints the shared prefix, the consumer forks from
        // it, and both match the from-scratch execution exactly.
        let source = pingpong_source();
        let base = crate::runner::execute(&source, SchedPolicy::RoundRobin, &[]);
        let script = base.decisions.clone();
        assert!(script.len() >= 2, "need a prefix to share");
        let shared = script.len() - 1;
        let key = 0xfeed_beefu64;
        let cache = PrefixCache::new();
        let tasks = vec![
            RunTask {
                policy: SchedPolicy::Scripted(script.clone()),
                faults: Vec::new(),
                snapshot_at: Some(shared),
                prefix_key: Some(key),
                metrics: false,
            },
            RunTask {
                policy: SchedPolicy::Scripted(script.clone()),
                faults: Vec::new(),
                snapshot_at: None,
                prefix_key: Some(key),
                metrics: false,
            },
        ];
        let out = run_batch(&source, &tasks, 1, &cache);
        assert_eq!(cache.len(), 1, "producer deposited the prefix");
        assert_eq!(cache.hits(), 1, "consumer forked from it");
        for r in &out {
            assert_eq!(r.class, base.class);
            assert_eq!(r.digest, base.digest, "forked run must match scratch");
            assert_eq!(r.decisions, base.decisions);
        }
    }

    #[test]
    fn persistent_pool_matches_sequential_across_batches() {
        // The pool is the reuse-across-batches path: three consecutive
        // batches on one pool must match the sequential results, in
        // order, and account for every task exactly once.
        let source = Arc::new(pingpong_source());
        let cache = Arc::new(PrefixCache::new());
        let pool = WorkerPool::new(3, Arc::clone(&source), Arc::clone(&cache));
        assert_eq!(pool.jobs(), 3);
        for round in 0..3u64 {
            let tasks: Vec<RunTask> = (0..11)
                .map(|i| RunTask::plain(SchedPolicy::Seeded(round * 100 + i), Vec::new()))
                .collect();
            let seq = run_batch(&source, &tasks, 1, &cache);
            let (par, load) = pool.run(Arc::new(tasks));
            assert_eq!(par.len(), seq.len());
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.digest, b.digest);
                assert_eq!(a.class, b.class);
                assert_eq!(a.decisions, b.decisions);
            }
            assert_eq!(load.len(), 3, "one load row per executor");
            assert_eq!(load.iter().map(|(t, _)| t).sum::<u64>(), 11);
        }
    }

    #[test]
    fn pool_drop_joins_idle_workers() {
        let source = Arc::new(pingpong_source());
        let cache = Arc::new(PrefixCache::new());
        let pool = WorkerPool::new(4, source, cache);
        // Never ran a batch: drop must still shut the workers down
        // promptly instead of leaving them parked forever.
        drop(pool);
    }

    #[test]
    fn worker_load_accounts_for_every_task() {
        let source = pingpong_source();
        let tasks: Vec<RunTask> = (0..10)
            .map(|i| RunTask::plain(SchedPolicy::Seeded(i), Vec::new()))
            .collect();
        let cache = PrefixCache::new();
        let (seq, seq_load) = run_batch_traced(&source, &tasks, 1, &cache);
        assert_eq!(seq.len(), 10);
        assert_eq!(seq_load.len(), 1, "sequential path is one worker");
        assert_eq!(seq_load[0].0, 10);
        let (par, par_load) = run_batch_traced(&source, &tasks, 3, &cache);
        assert_eq!(par.len(), 10);
        assert_eq!(par_load.len(), 3);
        assert_eq!(par_load.iter().map(|(t, _)| t).sum::<u64>(), 10);
    }

    #[test]
    fn metered_tasks_report_metrics_without_changing_content() {
        let source = pingpong_source();
        let plain = run_batch(
            &source,
            &[RunTask::plain(SchedPolicy::RoundRobin, Vec::new())],
            1,
            &PrefixCache::new(),
        );
        let mut metered_task = RunTask::plain(SchedPolicy::RoundRobin, Vec::new());
        metered_task.metrics = true;
        let metered = run_batch(&source, &[metered_task], 1, &PrefixCache::new());
        assert!(plain[0].metrics.is_none());
        assert!(plain[0].flight.is_empty());
        let m = metered[0]
            .metrics
            .as_ref()
            .expect("metered run has metrics");
        assert_eq!(m.total_msgs(), 2, "pingpong sends two messages");
        assert!(!metered[0].flight.is_empty());
        assert_eq!(metered[0].digest, plain[0].digest, "telemetry is passive");
        assert_eq!(metered[0].decisions, plain[0].decisions);
    }

    #[test]
    fn metered_consumer_skips_fork_but_matches_forked_content() {
        // Same producer/consumer setup as above, but the consumer is
        // metered: it must NOT fork (metrics cover whole runs only) and
        // still produce identical run content.
        let source = pingpong_source();
        let base = crate::runner::execute(&source, SchedPolicy::RoundRobin, &[]);
        let script = base.decisions.clone();
        let shared = script.len() - 1;
        let key = 0xabcdu64;
        let cache = PrefixCache::new();
        let producer = RunTask {
            policy: SchedPolicy::Scripted(script.clone()),
            faults: Vec::new(),
            snapshot_at: Some(shared),
            prefix_key: Some(key),
            metrics: true,
        };
        let consumer = RunTask {
            policy: SchedPolicy::Scripted(script.clone()),
            faults: Vec::new(),
            snapshot_at: None,
            prefix_key: Some(key),
            metrics: true,
        };
        let out = run_batch(&source, &[producer, consumer], 1, &cache);
        assert_eq!(cache.len(), 1, "producer still deposits");
        assert_eq!(cache.hits(), 0, "metered consumer ran from scratch");
        for r in &out {
            assert_eq!(r.digest, base.digest);
            let m = r.metrics.as_ref().expect("both runs metered");
            assert_eq!(m.turns, out[0].metrics.as_ref().unwrap().turns);
        }
    }
}
