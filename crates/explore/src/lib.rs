//! Schedule-space exploration and fault injection.
//!
//! The paper's replay machinery (§4.2) defeats nondeterminism once a buggy
//! execution is in hand; this crate *finds* those executions. An
//! [`Explorer`] drives the `mpsim` engine through many interleavings of a
//! workload:
//!
//! * **random walk** — per-run seeds perturb turn order and wildcard
//!   matching, optionally combined with generated faults (message delays,
//!   process crash/hang);
//! * **systematic bounded-preemption search** — starting from the
//!   deterministic baseline, substitute alternatives at recorded decision
//!   points (turn grants, wildcard matches), depth-bounded by a preemption
//!   budget, with digest-based pruning of schedules already proven
//!   equivalent (a sleep-set-flavoured reduction: a schedule whose trace
//!   digest matches a visited one cannot expose a new outcome).
//!
//! Each run's decisions are recorded; when an **oracle** fires (deadlock,
//! process panic, lint error on the trace, replay divergence), the failing
//! decision sequence is **shrunk** by delta debugging ([`shrink::ddmin`])
//! and saved as a [`ScheduleArtifact`] that `tracedbg replay --schedule`
//! re-executes deterministically.
//!
//! Exploration runs fan out over a worker pool ([`pool::run_batch`]);
//! every run drives a private `mpsim` engine, batches are formed and
//! their results absorbed in deterministic task order, so `jobs = N`
//! reports exactly the findings of `jobs = 1` at the same seed — search
//! throughput scales with cores without sacrificing reproducibility.

pub mod explorer;
pub mod oracle;
pub mod pool;
pub mod runner;
pub mod shrink;

pub use explorer::{ExploreConfig, ExploreReport, Explorer, Finding, Strategy};
pub use oracle::Violation;
pub use pool::{run_batch, run_batch_traced, PrefixCache, RunTask, WorkerLoad};
pub use runner::{execute_metered, execute_task, ProgramSource, RunResult};

// The telemetry vocabulary explorers export through.
pub use tracedbg_obs::MetricsReport;
