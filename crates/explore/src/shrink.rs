//! Delta debugging over decision sequences.
//!
//! A failing schedule recorded by the explorer contains every decision of
//! the run — most of them irrelevant, because the scripted scheduler falls
//! back to deterministic round-robin once (or wherever) the script runs
//! out. [`ddmin`] strips the sequence down to the decisions that actually
//! force the failure, using the classic Zeller/Hildebrandt algorithm:
//! partition into chunks, try the complement of each chunk, refine
//! granularity when nothing can be removed.

use tracedbg_trace::schedule::Decision;

/// Minimize `input` while `test` (the "still fails the same way"
/// predicate) holds. `test(&input)` is assumed true on entry. `budget`
/// bounds the number of predicate evaluations — each one is a full
/// program run.
pub fn ddmin<F>(input: Vec<Decision>, budget: usize, mut test: F) -> Vec<Decision>
where
    F: FnMut(&[Decision]) -> bool,
{
    let mut current = input;
    let mut spent = 0usize;
    // Fast path: the empty schedule (pure round-robin tail) often already
    // reproduces fault-driven failures.
    if budget > 0 && test(&[]) {
        return Vec::new();
    }
    spent += 1;
    let mut n = 2usize;
    while current.len() >= 2 && spent < budget {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() && spent < budget {
            let end = (start + chunk).min(current.len());
            // Complement: everything except current[start..end].
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            spent += 1;
            if test(&candidate) {
                current = candidate;
                n = (n - 1).max(2);
                reduced = true;
                // Re-partition the shrunk input from scratch.
                break;
            }
            start = end;
        }
        if !reduced {
            if n >= current.len() {
                break;
            }
            n = (n * 2).min(current.len());
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_trace::Rank;

    fn turn(r: u32) -> Decision {
        Decision::Turn { rank: Rank(r) }
    }

    #[test]
    fn shrinks_to_the_single_relevant_decision() {
        let input: Vec<Decision> = (0..32).map(|i| turn(i % 4)).collect();
        let needle = turn(2);
        // "Fails" whenever the needle decision is present.
        let out = ddmin(input, 10_000, |c| c.contains(&needle));
        assert_eq!(out, vec![needle]);
    }

    #[test]
    fn shrinks_to_a_required_pair() {
        let mut input: Vec<Decision> = (0..20).map(|_| turn(0)).collect();
        input[3] = turn(1);
        input[15] = turn(2);
        let out = ddmin(input, 10_000, |c| {
            c.contains(&turn(1)) && c.contains(&turn(2))
        });
        assert_eq!(out, vec![turn(1), turn(2)]);
    }

    #[test]
    fn empty_input_when_failure_is_unconditional() {
        let input: Vec<Decision> = (0..8).map(turn).collect();
        let out = ddmin(input, 10_000, |_| true);
        assert!(out.is_empty());
    }

    #[test]
    fn budget_bounds_evaluations() {
        let input: Vec<Decision> = (0..64).map(|i| turn(i % 4)).collect();
        let mut calls = 0;
        let needle = turn(3);
        let out = ddmin(input, 5, |c| {
            calls += 1;
            c.contains(&needle)
        });
        assert!(calls <= 6, "budget respected, got {calls}");
        assert!(out.contains(&needle), "never shrinks away the failure");
    }
}
