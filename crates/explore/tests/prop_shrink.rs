//! Property: for *arbitrary* exploration seeds, every ddmin-shrunk
//! [`ScheduleArtifact`] the explorer emits still reproduces the violation
//! class it recorded when replayed as a script. Shrinking may drop
//! decisions, but it must never change *what goes wrong* — that is the
//! whole contract of the artifact files `tracedbg explore` writes.

use proptest::prelude::*;
use tracedbg_explore::runner::execute;
use tracedbg_explore::{ExploreConfig, Explorer, Strategy};
use tracedbg_mpsim::SchedPolicy;
use tracedbg_trace::ScheduleArtifact;
use tracedbg_workloads::racy::{orphan_deadlock_factory, wildcard_race_factory, RacyConfig};

fn source_for(workload: &str) -> tracedbg_explore::ProgramSource {
    match workload {
        "racy-wildcard" => Box::new(wildcard_race_factory(RacyConfig::default())),
        "racy-deadlock" => Box::new(orphan_deadlock_factory(RacyConfig::default())),
        other => panic!("unknown workload {other}"),
    }
}

/// Explore with `seed`, then replay every shrunk artifact from scratch and
/// check the reproduced class.
fn check_seed(workload: &str, seed: u64) {
    let cfg = ExploreConfig {
        workload: workload.to_string(),
        seed,
        runs: 32,
        preemptions: 2,
        strategy: Strategy::Both,
        ..Default::default()
    };
    let report = Explorer::new(cfg, source_for(workload)).explore();
    for finding in &report.findings {
        // Round-trip through JSON first: the replayed schedule is what a
        // user would load from disk, not the in-memory struct.
        let artifact = ScheduleArtifact::from_json(&finding.artifact.to_json())
            .expect("artifact JSON round-trips");
        let expected = artifact
            .failure
            .as_deref()
            .expect("violation artifacts record their failure class");
        tracedbg_mpsim::set_quiet_panics(true);
        let rerun = execute(
            &source_for(workload),
            SchedPolicy::Scripted(artifact.decisions.clone()),
            &artifact.faults,
        );
        tracedbg_mpsim::set_quiet_panics(false);
        assert_eq!(
            rerun.class, expected,
            "seed {seed}: shrunk artifact for {workload} must reproduce \
             its recorded class (got {}, artifact {})",
            rerun.class, finding.artifact
        );
        assert_eq!(finding.class, expected, "report and artifact agree");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn wildcard_artifacts_reproduce_for_arbitrary_seeds(seed in 0u64..1_000_000) {
        check_seed("racy-wildcard", seed);
    }

    #[test]
    fn deadlock_artifacts_reproduce_for_arbitrary_seeds(seed in 0u64..1_000_000) {
        check_seed("racy-deadlock", seed);
    }
}
