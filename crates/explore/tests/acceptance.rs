//! End-to-end acceptance: the explorer must break the intentionally racy
//! workloads, emit shrunk artifacts, and those artifacts must reproduce
//! the failure deterministically when replayed as scripts.

use tracedbg_explore::runner::{execute, CLASS_DEADLOCK, CLASS_PANIC};
use tracedbg_explore::{ExploreConfig, Explorer, Strategy};
use tracedbg_mpsim::SchedPolicy;
use tracedbg_trace::ScheduleArtifact;
use tracedbg_workloads::racy::{orphan_deadlock_factory, wildcard_race_factory, RacyConfig};

fn config(workload: &str, strategy: Strategy) -> ExploreConfig {
    ExploreConfig {
        workload: workload.to_string(),
        seed: 7,
        runs: 48,
        preemptions: 2,
        strategy,
        ..Default::default()
    }
}

#[test]
fn systematic_search_finds_the_wildcard_race() {
    let source = Box::new(wildcard_race_factory(RacyConfig::default()));
    let report = Explorer::new(config("racy-wildcard", Strategy::Systematic), source).explore();
    let finding = report
        .findings
        .iter()
        .find(|f| f.class == CLASS_PANIC)
        .expect("the wildcard race must be found within the budget");
    assert!(finding.confirmed, "finding must double-confirm");
    assert!(
        finding.decisions_shrunk <= finding.decisions_recorded,
        "shrinking never grows the schedule"
    );
    assert!(
        finding.decisions_shrunk <= 4,
        "one wrong turn triggers this race; got {} decisions",
        finding.decisions_shrunk
    );
    // The artifact survives serialization and still reproduces the panic.
    let json = finding.artifact.to_json();
    let artifact = ScheduleArtifact::from_json(&json).expect("artifact roundtrips");
    let source = Box::new(wildcard_race_factory(RacyConfig::default()));
    let rerun = execute(
        &(source as tracedbg_explore::ProgramSource),
        SchedPolicy::Scripted(artifact.decisions.clone()),
        &artifact.faults,
    );
    assert_eq!(rerun.class, CLASS_PANIC, "replayed artifact reproduces");
    assert_eq!(artifact.failure.as_deref(), Some(CLASS_PANIC));
}

#[test]
fn systematic_search_finds_the_orphan_deadlock() {
    let source = Box::new(orphan_deadlock_factory(RacyConfig::default()));
    let report = Explorer::new(config("racy-deadlock", Strategy::Systematic), source).explore();
    let finding = report
        .findings
        .iter()
        .find(|f| f.class == CLASS_DEADLOCK)
        .expect("the orphaned receive must be found within the budget");
    assert!(finding.confirmed);
    let source = Box::new(orphan_deadlock_factory(RacyConfig::default()));
    let rerun = execute(
        &(source as tracedbg_explore::ProgramSource),
        SchedPolicy::Scripted(finding.artifact.decisions.clone()),
        &finding.artifact.faults,
    );
    assert_eq!(rerun.class, CLASS_DEADLOCK);
    // Running the artifact twice gives byte-identical traces.
    let source = Box::new(orphan_deadlock_factory(RacyConfig::default()));
    let rerun2 = execute(
        &(source as tracedbg_explore::ProgramSource),
        SchedPolicy::Scripted(finding.artifact.decisions.clone()),
        &finding.artifact.faults,
    );
    assert_eq!(rerun.digest, rerun2.digest, "replay is deterministic");
}

#[test]
fn random_walk_also_finds_the_race() {
    let source = Box::new(wildcard_race_factory(RacyConfig::default()));
    let mut cfg = config("racy-wildcard", Strategy::Random);
    cfg.runs = 64;
    let report = Explorer::new(cfg, source).explore();
    assert!(
        report.findings.iter().any(|f| f.class == CLASS_PANIC),
        "64 seeded walks should hit a 2-candidate race"
    );
}

#[test]
fn clean_workload_yields_no_findings() {
    let source = Box::new(tracedbg_workloads::ring::factory(Default::default()));
    let mut cfg = config("ring", Strategy::Both);
    cfg.runs = 24;
    let report = Explorer::new(cfg, source).explore();
    assert!(
        report.findings.is_empty(),
        "the ring is schedule-insensitive: {:?}",
        report
            .findings
            .iter()
            .map(|f| (&f.class, &f.detail))
            .collect::<Vec<_>>()
    );
    assert!(report.runs_executed >= 1);
}

#[test]
fn fault_injection_exposes_starvation_in_the_ring() {
    // The ring deadlocks if any node crashes: its neighbour waits forever.
    let source = Box::new(tracedbg_workloads::ring::factory(Default::default()));
    let mut cfg = config("ring", Strategy::Random);
    cfg.runs = 32;
    cfg.inject_faults = true;
    let report = Explorer::new(cfg, source).explore();
    let finding = report
        .findings
        .iter()
        .find(|f| f.class == CLASS_DEADLOCK)
        .expect("crash/hang faults starve the ring");
    assert!(
        !finding.artifact.faults.is_empty(),
        "the fault plan is part of the minimal artifact"
    );
    assert!(finding.confirmed);
}
