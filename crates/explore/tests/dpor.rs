//! Sleep-set DPOR regressions: with independence facts from the static
//! analysis, the systematic search must (a) shrink the run count on
//! workloads with provably-commuting schedules, (b) change *nothing*
//! about the findings — same classes, same artifacts — and (c) stay
//! byte-identical across `--jobs`.

use tracedbg_analysis::analyze;
use tracedbg_explore::{ExploreConfig, ExploreReport, Explorer, Strategy};
use tracedbg_workloads::script::{programs, Script};
use tracedbg_workloads::scripts::builtin;

/// Build a program source plus the analysis of the same script, exactly
/// as `tracedbg explore sdl:<name> --dpor` does.
fn sdl_source(name: &str, nprocs: usize) -> (tracedbg_explore::ProgramSource, Script, String) {
    let b = builtin(name).expect("built-in script");
    assert!(
        nprocs >= b.min_procs,
        "{name} needs >= {} procs",
        b.min_procs
    );
    let parsed = b.parse();
    let file = b.file();
    let src_script = parsed.clone();
    let src_file = file.clone();
    let source: tracedbg_explore::ProgramSource =
        Box::new(move || programs(&src_script, nprocs, &src_file));
    (source, parsed, file)
}

fn explore_sdl(name: &str, nprocs: usize, dpor: bool, jobs: usize) -> ExploreReport {
    let (source, parsed, file) = sdl_source(name, nprocs);
    let independence = dpor.then(|| analyze(&parsed, nprocs, &file).independence);
    let cfg = ExploreConfig {
        workload: format!("sdl:{name}"),
        seed: 42,
        runs: 100_000,
        preemptions: 2,
        strategy: Strategy::Systematic,
        jobs,
        independence,
        ..Default::default()
    };
    Explorer::new(cfg, source).explore()
}

fn classes(r: &ExploreReport) -> Vec<String> {
    let mut c: Vec<String> = r.findings.iter().map(|f| f.class.clone()).collect();
    c.sort();
    c
}

#[test]
fn sleep_sets_cut_systematic_runs_at_least_2x_on_pairs() {
    // Disjoint ping-pong pairs: cross-pair decisions provably commute,
    // so the vast majority of interleavings are Mazurkiewicz-equivalent.
    let full = explore_sdl("pairs", 4, false, 1);
    let dpor = explore_sdl("pairs", 4, true, 1);
    assert!(
        full.runs_executed < 100_000,
        "budget must exhaust the schedule space, not truncate it"
    );
    assert!(
        dpor.runs_executed * 2 <= full.runs_executed,
        "DPOR must cut systematic runs at least 2x: {} vs {}",
        dpor.runs_executed,
        full.runs_executed
    );
    assert!(dpor.sleep_skipped > 0, "skips must be accounted");
    assert_eq!(
        dpor.independence_pairs, 4,
        "two disjoint pairs, both directions"
    );
    assert_eq!(full.independence_pairs, 0);
    // Both searches agree the workload is clean.
    assert_eq!(classes(&full), Vec::<String>::new());
    assert_eq!(classes(&dpor), Vec::<String>::new());
}

#[test]
fn dpor_findings_identical_to_full_on_racy_scripts() {
    // The racy builtins funnel everything through rank 0's wildcard
    // receive, so the analysis proves no pair independent and DPOR must
    // degenerate to exactly the full search — findings and all.
    for (name, class) in [("racy-wildcard", "panic"), ("racy-deadlock", "deadlock")] {
        let full = explore_sdl(name, 3, false, 1);
        let dpor = explore_sdl(name, 3, true, 1);
        assert!(
            full.findings.iter().any(|f| f.class == class),
            "{name}: full search must expose the {class}"
        );
        assert_eq!(classes(&full), classes(&dpor), "{name}: class sets diverge");
        assert_eq!(full.runs_executed, dpor.runs_executed, "{name}");
        assert_eq!(
            dpor.sleep_skipped, 0,
            "{name}: nothing is provably independent"
        );
        assert_eq!(dpor.independence_pairs, 0, "{name}");
        for (ff, df) in full.findings.iter().zip(&dpor.findings) {
            assert_eq!(ff.artifact.to_json(), df.artifact.to_json(), "{name}");
        }
    }
}

#[test]
fn dpor_reports_identical_across_jobs() {
    // The reduced search must stay deterministic under parallelism: the
    // skip decisions depend only on (prefix, alternative), never on
    // worker identity, so jobs=4 reports exactly the jobs=1 search.
    let seq = explore_sdl("pairs", 4, true, 1);
    let par = explore_sdl("pairs", 4, true, 4);
    assert_eq!(par.jobs, 4);
    assert_eq!(seq.runs_executed, par.runs_executed);
    assert_eq!(seq.pruned, par.pruned);
    assert_eq!(seq.sleep_skipped, par.sleep_skipped);
    assert_eq!(seq.independence_pairs, par.independence_pairs);
    assert_eq!(seq.prefix_groups, par.prefix_groups);
    assert_eq!(classes(&seq), classes(&par));

    // And on a workload where findings exist, the artifacts match too.
    let seq = explore_sdl("racy-wildcard", 3, true, 1);
    let par = explore_sdl("racy-wildcard", 3, true, 4);
    assert_eq!(seq.runs_executed, par.runs_executed);
    assert_eq!(seq.findings.len(), par.findings.len());
    for (a, b) in seq.findings.iter().zip(&par.findings) {
        assert_eq!(a.class, b.class);
        assert_eq!(a.found_on_run, b.found_on_run);
        assert_eq!(a.artifact.to_json(), b.artifact.to_json());
    }
}

#[test]
fn metered_dpor_counters_match_report() {
    let (source, parsed, file) = sdl_source("pairs", 4);
    let cfg = ExploreConfig {
        workload: "sdl:pairs".to_string(),
        seed: 42,
        runs: 100_000,
        preemptions: 2,
        strategy: Strategy::Systematic,
        metrics: true,
        independence: Some(analyze(&parsed, 4, &file).independence),
        ..Default::default()
    };
    let (report, metrics) = Explorer::new(cfg, source).explore_traced();
    let ex = metrics
        .expect("metrics requested")
        .event
        .explore
        .expect("explore section");
    assert_eq!(ex.runs_skipped_by_sleep_sets, report.sleep_skipped);
    assert_eq!(ex.independence_pairs, report.independence_pairs);
    assert!(report.sleep_skipped > 0);
    assert_eq!(report.independence_pairs, 4);
}
