//! Parallel-determinism regression: for a fixed seed, `jobs = N` must
//! report exactly the findings of `jobs = 1` — same classes, same decision
//! prefixes, same shrunk artifacts. The explorer guarantees this by
//! forming batches and absorbing results in deterministic task order, so
//! worker scheduling can never leak into the report.

use tracedbg_explore::{ExploreConfig, ExploreReport, Explorer, Strategy};
use tracedbg_workloads::racy::{orphan_deadlock_factory, wildcard_race_factory, RacyConfig};

fn explore(workload: &str, jobs: usize, strategy: Strategy) -> ExploreReport {
    let source: tracedbg_explore::ProgramSource = match workload {
        "racy-wildcard" => Box::new(wildcard_race_factory(RacyConfig::default())),
        "racy-deadlock" => Box::new(orphan_deadlock_factory(RacyConfig::default())),
        other => panic!("unknown workload {other}"),
    };
    let cfg = ExploreConfig {
        workload: workload.to_string(),
        seed: 7,
        runs: 48,
        preemptions: 2,
        strategy,
        jobs,
        ..Default::default()
    };
    Explorer::new(cfg, source).explore()
}

/// Compare everything observable about two reports except the `jobs`
/// field itself.
fn assert_reports_identical(a: &ExploreReport, b: &ExploreReport) {
    assert_eq!(a.runs_executed, b.runs_executed, "run budget consumption");
    assert_eq!(a.aux_runs, b.aux_runs, "shrink/confirm accounting");
    assert_eq!(a.pruned, b.pruned, "pruning decisions");
    assert_eq!(a.baseline_branches, b.baseline_branches);
    assert_eq!(a.prefix_groups, b.prefix_groups, "prefix-sharing roles");
    assert_eq!(a.sleep_skipped, b.sleep_skipped, "DPOR skip accounting");
    assert_eq!(a.independence_pairs, b.independence_pairs);
    assert_eq!(a.findings.len(), b.findings.len(), "finding count");
    for (fa, fb) in a.findings.iter().zip(&b.findings) {
        assert_eq!(fa.class, fb.class, "violation class");
        assert_eq!(fa.detail, fb.detail);
        assert_eq!(fa.found_on_run, fb.found_on_run, "exposure run index");
        assert_eq!(fa.strategy, fb.strategy);
        assert_eq!(fa.decisions_recorded, fb.decisions_recorded);
        assert_eq!(fa.decisions_shrunk, fb.decisions_shrunk);
        assert_eq!(fa.confirmed, fb.confirmed);
        assert_eq!(
            fa.artifact.decisions, fb.artifact.decisions,
            "shrunk decision prefix"
        );
        assert_eq!(fa.artifact.faults, fb.artifact.faults);
        assert_eq!(fa.artifact.failure, fb.artifact.failure);
        assert_eq!(
            fa.artifact.to_json(),
            fb.artifact.to_json(),
            "whole serialized artifact"
        );
    }
}

#[test]
fn racy_wildcard_findings_identical_at_jobs_1_and_4() {
    let seq = explore("racy-wildcard", 1, Strategy::Both);
    let par = explore("racy-wildcard", 4, Strategy::Both);
    assert!(
        seq.findings.iter().any(|f| f.class == "panic"),
        "the wildcard race must be found"
    );
    assert!(
        seq.prefix_groups > 0,
        "systematic siblings must share checkpointed prefixes"
    );
    assert_eq!(par.jobs, 4);
    assert_reports_identical(&seq, &par);
}

#[test]
fn racy_deadlock_findings_identical_at_jobs_1_and_4() {
    let seq = explore("racy-deadlock", 1, Strategy::Both);
    let par = explore("racy-deadlock", 4, Strategy::Both);
    assert!(
        seq.findings.iter().any(|f| f.class == "deadlock"),
        "the orphaned receive must be found"
    );
    assert_reports_identical(&seq, &par);
}

#[test]
fn auto_jobs_also_matches_sequential() {
    // jobs = 0 resolves to available_parallelism — whatever that is on the
    // host, the findings must not change.
    let seq = explore("racy-wildcard", 1, Strategy::Systematic);
    let auto = explore("racy-wildcard", 0, Strategy::Systematic);
    assert!(auto.jobs >= 1, "0 resolves to a real worker count");
    assert_reports_identical(&seq, &auto);
}

#[test]
fn metered_exploration_event_metrics_identical_across_jobs() {
    // The telemetry determinism contract: with metrics on, the whole
    // `event` section of the MetricsReport — merged engine counters,
    // histograms, prune counts, oracle triggers — is identical at jobs=1
    // and jobs=4, and so is its digest. Only `timing` may differ.
    let run = |jobs| {
        let source: tracedbg_explore::ProgramSource =
            Box::new(wildcard_race_factory(RacyConfig::default()));
        let cfg = ExploreConfig {
            workload: "racy-wildcard".to_string(),
            seed: 7,
            runs: 48,
            preemptions: 2,
            strategy: Strategy::Both,
            jobs,
            metrics: true,
            ..Default::default()
        };
        Explorer::new(cfg, source).explore_traced()
    };
    let (seq_report, seq_metrics) = run(1);
    let (par_report, par_metrics) = run(4);
    assert_reports_identical(&seq_report, &par_report);
    let seq_m = seq_metrics.expect("metrics requested");
    let par_m = par_metrics.expect("metrics requested");
    assert_eq!(seq_m.event, par_m.event, "event sections deep-equal");
    assert_eq!(seq_m.event_digest, par_m.event_digest);
    assert!(seq_m.event.runs > 0, "exploration runs were metered");
    assert!(seq_m.event.engine.turns > 0);
    let ex = seq_m.event.explore.as_ref().expect("explore section");
    assert_eq!(ex.runs_executed, seq_report.runs_executed as u64);
    assert!(
        !ex.oracle_triggers.is_empty(),
        "the race fires at least one oracle"
    );
    // Deadlock/panic findings carry the flight-recorder dump.
    let panic_finding = seq_report
        .findings
        .iter()
        .find(|f| f.class == "panic")
        .expect("race found");
    let flight = panic_finding.artifact.flight.as_ref().expect("flight dump");
    assert!(flight.iter().any(|l| l.contains("panic")), "{flight:?}");
    // The metered run (no prefix forking) and the plain run agree on the
    // explorer-observable outcome anyway.
    let plain = explore("racy-wildcard", 1, Strategy::Both);
    assert_eq!(plain.runs_executed, seq_report.runs_executed);
    assert_eq!(plain.findings.len(), seq_report.findings.len());
}

#[test]
fn no_independence_facts_means_no_sleep_accounting() {
    // Without `--dpor` the search must be byte-for-byte the full search:
    // nothing skipped, no independence pairs reported, and the metered
    // ExploreEvent carries zeros for both counters.
    let source: tracedbg_explore::ProgramSource =
        Box::new(wildcard_race_factory(RacyConfig::default()));
    let cfg = ExploreConfig {
        workload: "racy-wildcard".to_string(),
        seed: 7,
        runs: 24,
        strategy: Strategy::Systematic,
        metrics: true,
        ..Default::default()
    };
    let (report, metrics) = Explorer::new(cfg, source).explore_traced();
    assert_eq!(report.sleep_skipped, 0);
    assert_eq!(report.independence_pairs, 0);
    let ex = metrics.unwrap().event.explore.unwrap();
    assert_eq!(ex.runs_skipped_by_sleep_sets, 0);
    assert_eq!(ex.independence_pairs, 0);
}

#[test]
fn unmetered_exploration_returns_no_metrics() {
    let source: tracedbg_explore::ProgramSource =
        Box::new(wildcard_race_factory(RacyConfig::default()));
    let cfg = ExploreConfig {
        workload: "racy-wildcard".to_string(),
        seed: 7,
        runs: 8,
        ..Default::default()
    };
    let (_, metrics) = Explorer::new(cfg, source).explore_traced();
    assert!(metrics.is_none(), "telemetry is opt-in");
}

#[test]
fn fault_injection_stays_deterministic_across_jobs() {
    // Fault plans derive from the walk index, not from worker identity;
    // randomized fault-injecting exploration must merge identically too.
    let run = |jobs| {
        let source: tracedbg_explore::ProgramSource =
            Box::new(tracedbg_workloads::ring::factory(Default::default()));
        let cfg = ExploreConfig {
            workload: "ring".to_string(),
            seed: 11,
            runs: 32,
            inject_faults: true,
            strategy: Strategy::Random,
            jobs,
            ..Default::default()
        };
        Explorer::new(cfg, source).explore()
    };
    let seq = run(1);
    let par = run(4);
    assert!(
        seq.findings.iter().any(|f| f.class == "deadlock"),
        "crash/hang faults starve the ring"
    );
    assert_reports_identical(&seq, &par);
}
