//! Soundness of the static analysis: the may-match relation is an
//! over-approximation of *every* dynamic execution. Whatever the
//! scheduler does — seeded match races, injected delays, crashes, hangs
//! — every message the engine actually matches must fall inside the
//! statically computed may-match relation, and ranks the analysis calls
//! independent must never exchange a message.

use proptest::prelude::*;
use proptest::strategy::FnStrategy;
use tracedbg_analysis::analyze;
use tracedbg_mpsim::{Engine, EngineConfig, FaultPlan, RecorderConfig, SchedPolicy};
use tracedbg_trace::{Fault, Rank};
use tracedbg_tracegraph::MessageMatching;
use tracedbg_workloads::script::programs;
use tracedbg_workloads::scripts::{builtin, builtins};

#[derive(Clone, Debug)]
struct Case {
    name: &'static str,
    nprocs: usize,
    seed: u64,
    faults: Vec<Fault>,
}

fn rank_below(rng: &mut TestRng, nprocs: usize) -> Rank {
    Rank(rng.below(nprocs as u64) as u32)
}

/// Random case: builtin script, process count near its minimum, seed for
/// the match-racing scheduler, and 0–2 injected faults (delay/crash/hang)
/// targeting in-range ranks.
fn case_strategy() -> impl Strategy<Value = Case> {
    FnStrategy::new(|rng: &mut TestRng| {
        let b = builtins()[rng.below(builtins().len() as u64) as usize];
        let nprocs = b.min_procs + rng.below(3) as usize;
        let seed = rng.next_u64();
        let faults = (0..rng.below(3))
            .map(|_| match rng.below(3) {
                0 => Fault::Delay {
                    src: rank_below(rng, nprocs),
                    dst: rank_below(rng, nprocs),
                    nth: rng.below(3),
                    extra_ns: (1 + rng.below(4)) * 1_000_000,
                },
                1 => Fault::Crash {
                    rank: rank_below(rng, nprocs),
                    after_ops: rng.below(8),
                },
                _ => Fault::Hang {
                    rank: rank_below(rng, nprocs),
                    after_ops: rng.below(8),
                },
            })
            .collect();
        Case {
            name: b.name,
            nprocs,
            seed,
            faults,
        }
    })
}

/// Non-vacuity guard for the property below: a fault-free run of every
/// builtin actually produces matched messages, so the quantifier ranges
/// over something real.
#[test]
fn fault_free_runs_produce_matches() {
    for b in builtins() {
        let parsed = b.parse();
        let mut engine = Engine::launch(
            EngineConfig {
                policy: SchedPolicy::Seeded(1),
                recorder: RecorderConfig::full(),
                ..Default::default()
            },
            programs(&parsed, b.min_procs, &b.file()),
        );
        let _ = engine.run();
        let store = engine.trace_store();
        let matching = MessageMatching::build(&store);
        assert!(
            !matching.matched.is_empty(),
            "{}: no dynamic matches to check soundness against",
            b.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dynamic_matches_stay_inside_static_may_match(case in case_strategy()) {
        tracedbg_mpsim::set_quiet_panics(true);
        let b = builtin(case.name).unwrap();
        let parsed = b.parse();
        let file = b.file();
        let a = analyze(&parsed, case.nprocs, &file);
        prop_assert!(a.graph.complete, "builtin scripts analyze completely");

        let mut engine = Engine::launch(
            EngineConfig {
                policy: SchedPolicy::Seeded(case.seed),
                recorder: RecorderConfig::full(),
                faults: FaultPlan::new(case.faults.clone()),
                ..Default::default()
            },
            programs(&parsed, case.nprocs, &file),
        );
        // Faulted/racy runs may panic, deadlock, or complete — soundness
        // must hold for the matches of *any* outcome.
        let _ = engine.run();
        let store = engine.trace_store();
        let matching = MessageMatching::build(&store);

        for m in &matching.matched {
            let src = m.info.src.0 as usize;
            let dst = m.info.dst.0 as usize;
            let sloc = store.sites().resolve(store.record(m.send).site);
            let rloc = store.sites().resolve(store.record(m.recv).site);
            let (Some(sloc), Some(rloc)) = (sloc, rloc) else {
                prop_assert!(false, "scripted sites always resolve");
                unreachable!();
            };
            prop_assert_eq!(&sloc.file, &a.graph.file);
            prop_assert_eq!(&rloc.file, &a.graph.file);
            prop_assert!(
                a.may_match_lines(src, sloc.line, dst, rloc.line),
                "{}@{} procs, seed {}, faults {:?}: dynamic match \
                 {}:{} -> {}:{} escapes the static may-match relation",
                case.name, case.nprocs, case.seed, case.faults,
                src, sloc.line, dst, rloc.line,
            );
            prop_assert!(
                a.may_match.rank_may_comm(src, dst),
                "{}: ranks {} -> {} exchanged a message the rank-level \
                 comm relation excludes",
                case.name, src, dst,
            );
            // Independence soundness: independent rank pairs never
            // exchange messages in any execution.
            let key = (src.min(dst), src.max(dst));
            prop_assert!(
                !a.independence.pairs().contains(&key),
                "{}: ranks {:?} are declared independent yet communicated",
                case.name, key,
            );
        }
    }
}
