//! The may-match relation and the independence facts derived from it.
//!
//! May-match is a sound over-approximation: if the engine can ever match a
//! message sent from site *s* to a receive at site *r* — under any
//! schedule, any fault plan — then `(s, r)` is in the relation. The
//! over-approximation direction is the safe one everywhere this is
//! consumed: lints only report sites with *no* partner, and the explorer
//! only treats decisions as commuting when the relation proves their ranks
//! can never interact.

use crate::graph::{CommGraph, SiteOp};
use std::collections::{BTreeMap, BTreeSet};
use tracedbg_trace::Decision;

/// All (send site, recv site) pairs that could match dynamically, as
/// indices into [`CommGraph::sites`].
#[derive(Clone, Debug)]
pub struct MayMatch {
    /// Sorted (send index, recv index) pairs.
    pub pairs: Vec<(usize, usize)>,
    /// Per-site partner count (0 for barriers).
    pub partners: Vec<usize>,
    /// Per-recv-site set of ranks with a send site that may feed it.
    pub recv_senders: BTreeMap<usize, BTreeSet<usize>>,
    /// comm[src * nprocs + dst]: some send of `src` may match a recv of
    /// `dst`.
    comm: Vec<bool>,
    nprocs: usize,
}

impl MayMatch {
    pub fn build(graph: &CommGraph) -> Self {
        let n = graph.nprocs;
        let mut pairs = Vec::new();
        let mut partners = vec![0usize; graph.sites.len()];
        let mut recv_senders: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        let mut comm = vec![false; n * n];
        for (si, s) in graph.sites.iter().enumerate() {
            let SiteOp::Send { dst, tag } = &s.op else {
                continue;
            };
            for (ri, r) in graph.sites.iter().enumerate() {
                let SiteOp::Recv { src, tag: rtag, .. } = &r.op else {
                    continue;
                };
                if !dst.contains(r.rank as i64) || !src.contains(s.rank as i64) {
                    continue;
                }
                if let Some(rt) = rtag {
                    if rt != tag {
                        continue;
                    }
                }
                pairs.push((si, ri));
                partners[si] += 1;
                partners[ri] += 1;
                recv_senders.entry(ri).or_default().insert(s.rank);
                comm[s.rank * n + r.rank] = true;
            }
        }
        MayMatch {
            pairs,
            partners,
            recv_senders,
            comm,
            nprocs: n,
        }
    }

    /// Can some send of `src` match some recv of `dst`?
    pub fn rank_may_comm(&self, src: usize, dst: usize) -> bool {
        src < self.nprocs && dst < self.nprocs && self.comm[src * self.nprocs + dst]
    }

    pub fn contains(&self, send_idx: usize, recv_idx: usize) -> bool {
        self.pairs.binary_search(&(send_idx, recv_idx)).is_ok()
    }
}

/// Rank-level commutativity facts for the explorer's sleep sets.
///
/// Two ranks are *independent* when the analysis proves no send of either
/// may match a recv of the other, no third rank has a receive site both
/// may feed (a wildcard funnel orders their messages), and no barrier
/// synchronizes them. Decisions commute when every rank of one is
/// independent of every rank of the other. When the communication graph is
/// not `complete` (or any barrier exists) no fact is emitted — absence of
/// facts degrades to the full search, never to an unsound pruning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndependenceFacts {
    nprocs: usize,
    /// indep[a * nprocs + b]: a and b proven independent.
    indep: Vec<bool>,
}

impl IndependenceFacts {
    /// No facts: every pair of decisions is treated as dependent.
    pub fn none(nprocs: usize) -> Self {
        IndependenceFacts {
            nprocs,
            indep: vec![false; nprocs * nprocs],
        }
    }

    pub fn build(graph: &CommGraph, mm: &MayMatch) -> Self {
        let n = graph.nprocs;
        if !graph.complete {
            return Self::none(n);
        }
        // A barrier synchronizes every rank that reaches it; rather than
        // reason about which ranks those are, give up on independence for
        // barrier-bearing programs.
        if graph.sites.iter().any(|s| matches!(s.op, SiteOp::Barrier)) {
            return Self::none(n);
        }
        let mut dep = vec![false; n * n];
        for &(si, ri) in &mm.pairs {
            let a = graph.sites[si].rank;
            let b = graph.sites[ri].rank;
            dep[a * n + b] = true;
            dep[b * n + a] = true;
        }
        // Wildcard funnel: two senders feeding the same receive site race
        // for it, so their relative order is observable.
        for senders in mm.recv_senders.values() {
            for &a in senders {
                for &b in senders {
                    if a != b {
                        dep[a * n + b] = true;
                        dep[b * n + a] = true;
                    }
                }
            }
        }
        let mut indep = vec![false; n * n];
        for a in 0..n {
            for b in 0..n {
                indep[a * n + b] = a != b && !dep[a * n + b];
            }
        }
        IndependenceFacts { nprocs: n, indep }
    }

    pub fn rank_independent(&self, a: usize, b: usize) -> bool {
        a != b && a < self.nprocs && b < self.nprocs && self.indep[a * self.nprocs + b]
    }

    /// Number of unordered rank pairs proven independent.
    pub fn pair_count(&self) -> u64 {
        let mut count = 0;
        for a in 0..self.nprocs {
            for b in a + 1..self.nprocs {
                if self.indep[a * self.nprocs + b] {
                    count += 1;
                }
            }
        }
        count
    }

    /// Unordered independent rank pairs, for reports.
    pub fn pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for a in 0..self.nprocs {
            for b in a + 1..self.nprocs {
                if self.indep[a * self.nprocs + b] {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// Do two scheduling decisions provably commute?
    pub fn independent(&self, x: &Decision, y: &Decision) -> bool {
        let (xr, xn) = decision_ranks(x);
        let (yr, yn) = decision_ranks(y);
        for &a in &xr[..xn] {
            for &b in &yr[..yn] {
                if !self.rank_independent(a, b) {
                    return false;
                }
            }
        }
        true
    }
}

fn decision_ranks(d: &Decision) -> ([usize; 2], usize) {
    match d {
        Decision::Turn { rank } => ([rank.0 as usize, 0], 1),
        Decision::Match { dst, src, .. } => ([dst.0 as usize, src.0 as usize], 2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_trace::Rank;
    use tracedbg_workloads::script::parse;

    fn analysis(src: &str, nprocs: usize) -> (CommGraph, MayMatch, IndependenceFacts) {
        let g = CommGraph::build(&parse(src).expect("parse"), nprocs, "test.sdl");
        let mm = MayMatch::build(&g);
        let facts = IndependenceFacts::build(&g, &mm);
        (g, mm, facts)
    }

    const PAIRED: &str = "fn main\n  let partner = ( rank + 1 ) - ( ( rank % 2 ) * 2 )\n  if ( rank % 2 ) == 0\n    send partner tag 1 rank\n  else\n    recv from partner tag 1 into x\n  end\nend\n";

    #[test]
    fn disjoint_pairs_are_independent() {
        let (_, mm, facts) = analysis(PAIRED, 4);
        assert!(mm.rank_may_comm(0, 1) && mm.rank_may_comm(2, 3));
        assert!(!mm.rank_may_comm(0, 3));
        assert!(facts.rank_independent(0, 2));
        assert!(facts.rank_independent(1, 3));
        assert!(!facts.rank_independent(0, 1));
        assert_eq!(facts.pair_count(), 4); // (0,2) (0,3) (1,2) (1,3)
    }

    #[test]
    fn wildcard_funnel_makes_senders_dependent() {
        let src = "fn main\n  if rank == 0\n    recv from any tag 1 into x\n    recv from any tag 1 into y\n  else\n    send 0 tag 1 rank\n  end\nend\n";
        let (_, mm, facts) = analysis(src, 3);
        assert!(mm.rank_may_comm(1, 0) && mm.rank_may_comm(2, 0));
        // Ranks 1 and 2 never message each other, but both race for the
        // master's wildcard receives.
        assert!(!mm.rank_may_comm(1, 2) && !mm.rank_may_comm(2, 1));
        assert!(!facts.rank_independent(1, 2));
        assert_eq!(facts.pair_count(), 0);
    }

    #[test]
    fn barriers_suppress_all_facts() {
        let src = "fn main\n  barrier\nend\n";
        let (_, _, facts) = analysis(src, 4);
        assert_eq!(facts.pair_count(), 0);
    }

    #[test]
    fn incomplete_graphs_yield_no_facts() {
        let facts = IndependenceFacts::none(3);
        assert!(!facts.rank_independent(0, 2));
        assert_eq!(facts.pair_count(), 0);
    }

    #[test]
    fn decision_independence_uses_all_involved_ranks() {
        let (_, _, facts) = analysis(PAIRED, 4);
        let t0 = Decision::Turn { rank: Rank(0) };
        let t2 = Decision::Turn { rank: Rank(2) };
        let m01 = Decision::Match {
            dst: Rank(1),
            src: Rank(0),
            seq: 0,
        };
        let m23 = Decision::Match {
            dst: Rank(3),
            src: Rank(2),
            seq: 0,
        };
        assert!(facts.independent(&t0, &t2));
        assert!(facts.independent(&m01, &m23));
        assert!(!facts.independent(&t0, &m01));
        assert!(!facts.independent(&t0, &t0));
        assert!(!facts.independent(&m01, &m01));
    }

    #[test]
    fn tag_mismatch_excludes_pairs() {
        let src = "fn main\n  if rank == 0\n    send 1 tag 1 7\n  else\n    recv from 0 tag 2 into x\n  end\nend\n";
        let (_, mm, _) = analysis(src, 2);
        assert!(mm.pairs.is_empty());
        assert!(!mm.rank_may_comm(0, 1));
    }

    #[test]
    fn untagged_recv_matches_any_tag() {
        let src = "fn main\n  if rank == 0\n    send 1 tag 1 7\n  else\n    recv from 0 into x\n  end\nend\n";
        let (g, mm, _) = analysis(src, 2);
        let si = g.site_at(0, 3).unwrap();
        let ri = g.site_at(1, 5).unwrap();
        assert!(mm.contains(si, ri));
    }
}
