//! The static communication graph: every send/recv/barrier site each rank
//! can reach, with peer values abstracted into a small lattice.
//!
//! The walker mirrors the abstract interpreter in
//! `crates/lint/src/script_rules.rs` but strengthens it where soundness
//! matters for may-matching: loops with unknown or oversized bounds are
//! iterated to an *environment fixpoint* (variables assigned in the body
//! widen to unknown) instead of being walked once, so a value that changes
//! across iterations can never masquerade as a constant peer. Environment
//! facts are must-facts — a variable is either known to hold one value on
//! every path reaching a statement, or it is unknown — which is what makes
//! pruning a decidable branch sound.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use tracedbg_workloads::script::{Cond, Expr, Script, Stmt, StmtKind};

pub(crate) const STEP_CAP: usize = 100_000;
const LOOP_CAP: i64 = 4096;
const DEPTH_CAP: usize = 32;
/// Peer sets wider than this collapse to ⊤.
const PEERS_CAP: usize = 64;
/// Widening converges in at most one step per body-assigned variable; this
/// cap is a safety net, and tripping it degrades to `complete = false`.
const WIDEN_CAP: usize = 24;

/// A lattice over i64 values: either a finite set or ⊤ (any value).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Peers {
    /// ⊤ — any value is possible (wildcards, untracked expressions).
    Top,
    /// A finite set of possible values.
    Set(BTreeSet<i64>),
}

impl Peers {
    pub fn empty() -> Self {
        Peers::Set(BTreeSet::new())
    }

    pub fn is_top(&self) -> bool {
        matches!(self, Peers::Top)
    }

    /// Join one abstract value into the set; `None` (untracked) is ⊤.
    pub fn join_value(&mut self, v: Option<i64>) {
        match (&mut *self, v) {
            (Peers::Top, _) => {}
            (_, None) => *self = Peers::Top,
            (Peers::Set(set), Some(v)) => {
                set.insert(v);
                if set.len() > PEERS_CAP {
                    *self = Peers::Top;
                }
            }
        }
    }

    pub fn contains(&self, v: i64) -> bool {
        match self {
            Peers::Top => true,
            Peers::Set(set) => set.contains(&v),
        }
    }

    /// Render for reports: `*` for ⊤, else a comma-joined value list.
    pub fn render(&self) -> String {
        match self {
            Peers::Top => "*".to_string(),
            Peers::Set(set) => set
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(","),
        }
    }
}

/// The abstract operation performed at one source site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SiteOp {
    Send {
        dst: Peers,
        tag: i32,
    },
    Recv {
        src: Peers,
        tag: Option<i32>,
        /// True for a syntactic `recv from any`.
        wildcard: bool,
    },
    Barrier,
}

impl SiteOp {
    pub fn kind(&self) -> &'static str {
        match self {
            SiteOp::Send { .. } => "send",
            SiteOp::Recv { .. } => "recv",
            SiteOp::Barrier => "barrier",
        }
    }
}

/// One communication site: a (rank, source line) pair with joined lattice
/// values over every abstract visit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommSite {
    pub rank: usize,
    pub line: u32,
    pub func: String,
    pub op: SiteOp,
}

/// Which sites can be a rank's *first* communication operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankEntry {
    /// Candidate first-communication lines (an over-approximation).
    pub lines: Vec<u32>,
    /// True when every execution path provably reaches a communication
    /// operation and `lines` covers all candidates. Only `certain` entries
    /// feed the static-deadlock fixpoint.
    pub certain: bool,
}

/// The per-configuration static communication graph.
#[derive(Clone, Debug)]
pub struct CommGraph {
    pub nprocs: usize,
    pub file: String,
    /// All sites, sorted by (rank, line).
    pub sites: Vec<CommSite>,
    /// True when the walk covered every reachable site (no step/depth cap
    /// hit, widening converged). May-match soundness requires only this.
    pub complete: bool,
    /// True when every value was additionally tracked exactly.
    pub exact: bool,
    /// Per-rank first-communication analysis.
    pub entry: Vec<RankEntry>,
    index: HashMap<(usize, u32), usize>,
}

impl CommGraph {
    pub fn build(script: &Script, nprocs: usize, file: &str) -> Self {
        let mut sites = Vec::new();
        let mut complete = true;
        let mut exact = true;
        let mut entry = Vec::with_capacity(nprocs);
        for rank in 0..nprocs {
            let mut w = SiteWalker {
                script,
                rank,
                sites: BTreeMap::new(),
                complete: true,
                exact: true,
                steps: 0,
            };
            let mut env = seed_env(rank, nprocs);
            if let Some(main) = script.functions.get("main") {
                w.walk("main", main, &mut env, 0);
            }
            complete &= w.complete;
            exact &= w.exact;
            sites.extend(w.sites.into_values());

            let mut scan = EntryScan { script, steps: 0 };
            let mut found = BTreeSet::new();
            let outcome = match script.functions.get("main") {
                Some(main) => scan.scan(main, &mut seed_env(rank, nprocs), 0, &mut found),
                None => EntryOutcome::FallThrough,
            };
            entry.push(RankEntry {
                lines: found.into_iter().collect(),
                certain: outcome == EntryOutcome::Comm,
            });
        }
        let index = sites
            .iter()
            .enumerate()
            .map(|(i, s)| ((s.rank, s.line), i))
            .collect();
        CommGraph {
            nprocs,
            file: file.to_string(),
            sites,
            complete,
            exact,
            entry,
            index,
        }
    }

    /// Index of the site at (rank, line), if the analysis saw one.
    pub fn site_at(&self, rank: usize, line: u32) -> Option<usize> {
        self.index.get(&(rank, line)).copied()
    }
}

// ------------------------------------------------ abstract interpretation

type Env = HashMap<String, Option<i64>>;

fn seed_env(rank: usize, nprocs: usize) -> Env {
    let mut env = Env::new();
    env.insert("rank".to_string(), Some(rank as i64));
    env.insert("nprocs".to_string(), Some(nprocs as i64));
    env
}

fn eval(env: &Env, e: &Expr) -> Option<i64> {
    match e {
        Expr::Const(n) => Some(*n),
        Expr::Var(name) => env.get(name).copied().flatten(),
        Expr::Add(a, b) => Some(eval(env, a)?.wrapping_add(eval(env, b)?)),
        Expr::Sub(a, b) => Some(eval(env, a)?.wrapping_sub(eval(env, b)?)),
        Expr::Mul(a, b) => Some(eval(env, a)?.wrapping_mul(eval(env, b)?)),
        Expr::Mod(a, b) => {
            let (a, b) = (eval(env, a)?, eval(env, b)?);
            (b != 0).then(|| a.rem_euclid(b))
        }
    }
}

fn eval_cond(env: &Env, c: &Cond) -> Option<bool> {
    let (a, b) = match c {
        Cond::Eq(a, b) | Cond::Ne(a, b) | Cond::Lt(a, b) => (eval(env, a)?, eval(env, b)?),
    };
    Some(match c {
        Cond::Eq(..) => a == b,
        Cond::Ne(..) => a != b,
        Cond::Lt(..) => a < b,
    })
}

/// Join environments from two paths: variables that disagree widen to
/// unknown, so surviving facts hold on *every* path.
fn merge_env(a: &Env, b: &Env) -> Env {
    let mut out = Env::new();
    for (k, &va) in a {
        let vb = b.get(k).copied().flatten();
        out.insert(k.clone(), if va == vb { va } else { None });
    }
    for (k, _) in b.iter() {
        out.entry(k.clone()).or_insert(None);
    }
    out
}

fn loop_is_enumerable(lo: i64, hi: i64) -> bool {
    (hi as i128 - lo as i128) <= LOOP_CAP as i128
}

struct SiteWalker<'a> {
    script: &'a Script,
    rank: usize,
    sites: BTreeMap<u32, CommSite>,
    complete: bool,
    exact: bool,
    steps: usize,
}

impl<'a> SiteWalker<'a> {
    fn record(&mut self, line: u32, func: &str, op: SiteOp) {
        match self.sites.entry(line) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(CommSite {
                    rank: self.rank,
                    line,
                    func: func.to_string(),
                    op,
                });
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                // Same source line revisited (loop iteration / other path):
                // join the lattice values.
                match (&mut e.get_mut().op, op) {
                    (SiteOp::Send { dst, .. }, SiteOp::Send { dst: new, .. }) => match new {
                        Peers::Top => *dst = Peers::Top,
                        Peers::Set(vals) => {
                            for v in vals {
                                dst.join_value(Some(v));
                            }
                        }
                    },
                    (SiteOp::Recv { src, .. }, SiteOp::Recv { src: new, .. }) => match new {
                        Peers::Top => *src = Peers::Top,
                        Peers::Set(vals) => {
                            for v in vals {
                                src.join_value(Some(v));
                            }
                        }
                    },
                    _ => {}
                }
            }
        }
    }

    fn walk(&mut self, func: &str, stmts: &[Stmt], env: &mut Env, depth: usize) {
        for s in stmts {
            self.steps += 1;
            if self.steps > STEP_CAP {
                self.complete = false;
                self.exact = false;
                return;
            }
            match &s.kind {
                StmtKind::Let { var, value } => {
                    let v = eval(env, value);
                    env.insert(var.clone(), v);
                }
                StmtKind::Compute { .. } | StmtKind::Trace { .. } => {}
                StmtKind::Send { dst, tag, .. } => {
                    let v = eval(env, dst);
                    if v.is_none() {
                        self.exact = false;
                    }
                    let mut peers = Peers::empty();
                    peers.join_value(v);
                    self.record(
                        s.line,
                        func,
                        SiteOp::Send {
                            dst: peers,
                            tag: *tag,
                        },
                    );
                }
                StmtKind::Recv { src, tag, var } => {
                    let (peers, wildcard) = match src {
                        None => (Peers::Top, true),
                        Some(e) => {
                            let v = eval(env, e);
                            if v.is_none() {
                                self.exact = false;
                            }
                            let mut p = Peers::empty();
                            p.join_value(v);
                            (p, false)
                        }
                    };
                    self.record(
                        s.line,
                        func,
                        SiteOp::Recv {
                            src: peers,
                            tag: *tag,
                            wildcard,
                        },
                    );
                    // The payload and observed sender are data-dependent.
                    env.insert(var.clone(), None);
                    env.insert(format!("{var}_src"), None);
                }
                StmtKind::Call { func: callee } => {
                    if depth >= DEPTH_CAP {
                        // The callee's sites are not collected.
                        self.complete = false;
                        self.exact = false;
                        continue;
                    }
                    if let Some(body) = self.script.functions.get(callee) {
                        self.walk(callee, body, env, depth + 1);
                    }
                    // Undefined callee: the runtime aborts here, so any
                    // sites we collect past this point over-approximate.
                }
                StmtKind::Loop {
                    var,
                    from,
                    to,
                    body,
                } => match (eval(env, from), eval(env, to)) {
                    (Some(lo), Some(hi)) if loop_is_enumerable(lo, hi) => {
                        for i in lo..hi {
                            env.insert(var.clone(), Some(i));
                            self.walk(func, body, env, depth);
                            if self.steps > STEP_CAP {
                                self.complete = false;
                                self.exact = false;
                                return;
                            }
                        }
                    }
                    _ => {
                        // Unknown or oversized bounds: widen body-assigned
                        // variables to a fixpoint, then walk once more so
                        // every site's lattice is joined under an
                        // environment that over-approximates all
                        // iterations.
                        self.exact = false;
                        let mut cur = env.clone();
                        cur.insert(var.clone(), None);
                        let mut converged = false;
                        for _ in 0..WIDEN_CAP {
                            let mut probe = cur.clone();
                            self.walk(func, body, &mut probe, depth);
                            if self.steps > STEP_CAP {
                                return;
                            }
                            let widened = merge_env(&cur, &probe);
                            if widened == cur {
                                converged = true;
                                break;
                            }
                            cur = widened;
                        }
                        if !converged {
                            self.complete = false;
                        }
                        *env = merge_env(env, &cur);
                    }
                },
                StmtKind::If { cond, then, els } => match eval_cond(env, cond) {
                    Some(true) => self.walk(func, then, env, depth),
                    Some(false) => self.walk(func, els, env, depth),
                    None => {
                        self.exact = false;
                        let mut then_env = env.clone();
                        let mut els_env = env.clone();
                        self.walk(func, then, &mut then_env, depth);
                        self.walk(func, els, &mut els_env, depth);
                        *env = merge_env(&then_env, &els_env);
                    }
                },
                StmtKind::Barrier => {
                    self.record(s.line, func, SiteOp::Barrier);
                }
            }
        }
    }
}

// ------------------------------------------------- entry (first-comm) scan

/// What a statement sequence does before its first communication op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EntryOutcome {
    /// Every path performs a communication op inside the sequence.
    Comm,
    /// Some path may reach the end without communicating.
    FallThrough,
    /// The scan gave up (caps, undefined call); the rank must not be
    /// trusted by the deadlock fixpoint.
    Opaque,
}

struct EntryScan<'a> {
    script: &'a Script,
    steps: usize,
}

impl<'a> EntryScan<'a> {
    fn scan(
        &mut self,
        stmts: &[Stmt],
        env: &mut Env,
        depth: usize,
        found: &mut BTreeSet<u32>,
    ) -> EntryOutcome {
        use EntryOutcome::*;
        for s in stmts {
            self.steps += 1;
            if self.steps > STEP_CAP {
                return Opaque;
            }
            match &s.kind {
                StmtKind::Let { var, value } => {
                    let v = eval(env, value);
                    env.insert(var.clone(), v);
                }
                StmtKind::Compute { .. } | StmtKind::Trace { .. } => {}
                StmtKind::Send { .. } | StmtKind::Recv { .. } | StmtKind::Barrier => {
                    found.insert(s.line);
                    return Comm;
                }
                StmtKind::Call { func: callee } => {
                    if depth >= DEPTH_CAP {
                        return Opaque;
                    }
                    match self.script.functions.get(callee) {
                        // An undefined callee aborts the runtime; treat the
                        // whole rank as opaque rather than guess.
                        None => return Opaque,
                        Some(body) => match self.scan(body, env, depth + 1, found) {
                            Comm => return Comm,
                            Opaque => return Opaque,
                            FallThrough => {}
                        },
                    }
                }
                StmtKind::Loop {
                    var,
                    from,
                    to,
                    body,
                } => match (eval(env, from), eval(env, to)) {
                    (Some(lo), Some(hi)) if loop_is_enumerable(lo, hi) => {
                        let mut stopped = None;
                        for i in lo..hi {
                            env.insert(var.clone(), Some(i));
                            match self.scan(body, env, depth, found) {
                                Comm => {
                                    stopped = Some(Comm);
                                    break;
                                }
                                Opaque => {
                                    stopped = Some(Opaque);
                                    break;
                                }
                                FallThrough => {}
                            }
                            if self.steps > STEP_CAP {
                                stopped = Some(Opaque);
                                break;
                            }
                        }
                        if let Some(o) = stopped {
                            return o;
                        }
                    }
                    _ => {
                        // The loop may run zero times, so it can never
                        // *prove* a communication; widen and collect
                        // candidates from the body.
                        let mut cur = env.clone();
                        cur.insert(var.clone(), None);
                        let mut converged = false;
                        for _ in 0..WIDEN_CAP {
                            let mut probe = cur.clone();
                            match self.scan(body, &mut probe, depth, found) {
                                Opaque => return Opaque,
                                // Paths that communicated never fall
                                // through; only fall-through environments
                                // feed the continuation.
                                Comm => probe = cur.clone(),
                                FallThrough => {}
                            }
                            let widened = merge_env(&cur, &probe);
                            if widened == cur {
                                converged = true;
                                break;
                            }
                            cur = widened;
                        }
                        if !converged {
                            return Opaque;
                        }
                        *env = merge_env(env, &cur);
                    }
                },
                StmtKind::If { cond, then, els } => match eval_cond(env, cond) {
                    Some(true) => match self.scan(then, env, depth, found) {
                        Comm => return Comm,
                        Opaque => return Opaque,
                        FallThrough => {}
                    },
                    Some(false) => match self.scan(els, env, depth, found) {
                        Comm => return Comm,
                        Opaque => return Opaque,
                        FallThrough => {}
                    },
                    None => {
                        let mut then_env = env.clone();
                        let mut els_env = env.clone();
                        let t = self.scan(then, &mut then_env, depth, found);
                        let e = self.scan(els, &mut els_env, depth, found);
                        match (t, e) {
                            (Opaque, _) | (_, Opaque) => return Opaque,
                            (Comm, Comm) => return Comm,
                            // Only the branch that can fall through feeds
                            // the continuation environment.
                            (Comm, FallThrough) => *env = els_env,
                            (FallThrough, Comm) => *env = then_env,
                            (FallThrough, FallThrough) => *env = merge_env(&then_env, &els_env),
                        }
                    }
                },
            }
        }
        FallThrough
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_workloads::script::parse;

    fn graph(src: &str, nprocs: usize) -> CommGraph {
        CommGraph::build(&parse(src).expect("parse"), nprocs, "test.sdl")
    }

    #[test]
    fn collects_sites_with_known_peers() {
        let g = graph(
            "fn main\n  if rank == 0\n    send 1 tag 5 7\n  else\n    recv from 0 tag 5 into x\n  end\nend\n",
            2,
        );
        assert!(g.complete && g.exact);
        assert_eq!(g.sites.len(), 2);
        let send = &g.sites[g.site_at(0, 3).unwrap()];
        match &send.op {
            SiteOp::Send { dst, tag } => {
                assert_eq!(*tag, 5);
                assert!(dst.contains(1) && !dst.contains(0));
            }
            other => panic!("expected send, got {other:?}"),
        }
    }

    #[test]
    fn loop_carried_values_widen_to_top() {
        // `x` changes every iteration of a loop with unknown bounds; a
        // single-pass walker would report dst = {1}, which is unsound.
        let src = "fn main\n  recv from any tag 1 into n\n  let x = 1\n  loop i 0 n\n    send x tag 2 0\n    let x = x + 1\n  end\nend\n";
        let g = graph(src, 4);
        assert!(g.complete);
        assert!(!g.exact);
        let send = &g.sites[g.site_at(0, 5).unwrap()];
        match &send.op {
            SiteOp::Send { dst, .. } => assert!(dst.is_top(), "got {dst:?}"),
            other => panic!("expected send, got {other:?}"),
        }
    }

    #[test]
    fn enumerable_loops_stay_exact() {
        let g = graph("fn main\n  loop i 0 3\n    send i tag 9 0\n  end\nend\n", 4);
        assert!(g.complete && g.exact);
        let send = &g.sites[g.site_at(0, 3).unwrap()];
        match &send.op {
            SiteOp::Send { dst, .. } => {
                assert!(dst.contains(0) && dst.contains(1) && dst.contains(2));
                assert!(!dst.contains(3));
            }
            other => panic!("expected send, got {other:?}"),
        }
    }

    #[test]
    fn entry_analysis_tracks_first_comm() {
        let g = graph(
            "fn main\n  if rank == 0\n    send 1 tag 5 7\n  else\n    recv from 0 tag 5 into x\n  end\nend\n",
            2,
        );
        assert!(g.entry[0].certain && g.entry[1].certain);
        assert_eq!(g.entry[0].lines, vec![3]);
        assert_eq!(g.entry[1].lines, vec![5]);
    }

    #[test]
    fn entry_is_uncertain_when_a_path_skips_comm() {
        // rank 1's recv is guarded by a data-dependent condition.
        let src = "fn main\n  if rank == 0\n    send 1 tag 5 7\n    recv from 1 tag 6 into a\n  else\n    recv from 0 tag 5 into x\n    if x < 3\n      send 0 tag 6 1\n    end\n  end\nend\n";
        let g = graph(src, 2);
        assert!(g.entry[0].certain);
        // First comm of rank 1 is still certain (the unconditional recv)…
        assert!(g.entry[1].certain);
        assert_eq!(g.entry[1].lines, vec![6]);
    }

    #[test]
    fn unknown_loop_entries_fall_through() {
        let src = "fn main\n  recv from any tag 1 into n\n  loop i 0 n\n    barrier\n  end\nend\n";
        let g = graph(src, 2);
        // First comm is the unconditional recv; certain.
        assert!(g.entry[0].certain);
        assert_eq!(g.entry[0].lines, vec![2]);
    }

    #[test]
    fn peers_lattice_joins_and_caps() {
        let mut p = Peers::empty();
        p.join_value(Some(3));
        p.join_value(Some(5));
        assert!(p.contains(3) && p.contains(5) && !p.contains(4));
        assert_eq!(p.render(), "3,5");
        p.join_value(None);
        assert!(p.is_top() && p.contains(i64::MIN));
        assert_eq!(p.render(), "*");
    }
}
