//! Static communication analysis over workload scripts.
//!
//! Whole-program reasoning for the same SDL surface the script lints walk:
//! a per-rank communication graph with peer/tag lattice values, a sound
//! may-match over-approximation of every dynamic send/recv match, and
//! rank-level independence facts the explorer's sleep sets consume to skip
//! interleavings that only permute commuting decisions (see DESIGN.md
//! §11).

pub mod graph;
pub mod independence;

pub use graph::{CommGraph, CommSite, Peers, RankEntry, SiteOp};
pub use independence::{IndependenceFacts, MayMatch};

use serde::Serialize;
use std::fmt::Write as _;
use tracedbg_workloads::script::Script;

/// The full analysis result for one (script, nprocs) configuration.
#[derive(Clone, Debug)]
pub struct Analysis {
    pub graph: CommGraph,
    pub may_match: MayMatch,
    pub independence: IndependenceFacts,
}

/// Analyze a script as executed SPMD by `nprocs` ranks. `file` labels the
/// sites, and must equal the file string the engine's site table records
/// for trace-side consumers to correlate.
pub fn analyze(script: &Script, nprocs: usize, file: &str) -> Analysis {
    let graph = CommGraph::build(script, nprocs, file);
    let may_match = MayMatch::build(&graph);
    let independence = IndependenceFacts::build(&graph, &may_match);
    Analysis {
        graph,
        may_match,
        independence,
    }
}

impl Analysis {
    /// Can a send at (send_rank, send_line) ever match a recv at
    /// (recv_rank, recv_line)? Unknown sites answer `false`.
    pub fn may_match_lines(
        &self,
        send_rank: usize,
        send_line: u32,
        recv_rank: usize,
        recv_line: u32,
    ) -> bool {
        match (
            self.graph.site_at(send_rank, send_line),
            self.graph.site_at(recv_rank, recv_line),
        ) {
            (Some(si), Some(ri)) => self.may_match.contains(si, ri),
            _ => false,
        }
    }

    /// Ranks provably deadlocked at startup: a non-empty set B where every
    /// rank in B must receive before it can do anything else, and every
    /// possible sender for each of those receives is itself in B. Sound —
    /// only `certain` entry analyses over a `complete` graph participate.
    pub fn deadlocked_ranks(&self) -> Vec<usize> {
        if !self.graph.complete {
            return Vec::new();
        }
        let mut blocked: Vec<usize> = (0..self.graph.nprocs)
            .filter(|&r| {
                let e = &self.graph.entry[r];
                e.certain
                    && !e.lines.is_empty()
                    && e.lines.iter().all(|&line| {
                        self.graph
                            .site_at(r, line)
                            .map(|i| matches!(self.graph.sites[i].op, SiteOp::Recv { .. }))
                            .unwrap_or(false)
                    })
            })
            .collect();
        loop {
            let snapshot = blocked.clone();
            let before = blocked.len();
            blocked.retain(|&r| {
                self.graph.entry[r].lines.iter().all(|&line| {
                    let idx = match self.graph.site_at(r, line) {
                        Some(i) => i,
                        None => return false,
                    };
                    // Every rank that might feed this entry receive must
                    // itself be blocked for r to stay blocked.
                    self.may_match
                        .recv_senders
                        .get(&idx)
                        .map(|senders| senders.iter().all(|s| snapshot.contains(s)))
                        .unwrap_or(true) // no sender at all: never matched
                })
            });
            if blocked.len() == before {
                break;
            }
        }
        blocked
    }

    /// Ranks whose send sites may feed the recv site at `recv_idx`.
    pub fn senders_of(&self, recv_idx: usize) -> Vec<usize> {
        self.may_match
            .recv_senders
            .get(&recv_idx)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    pub fn to_json(&self, workload: &str) -> String {
        #[derive(Serialize)]
        struct SiteJson {
            rank: usize,
            line: u32,
            func: String,
            op: &'static str,
            peers: String,
            tag: Option<i32>,
            wildcard: bool,
            partners: usize,
        }
        #[derive(Serialize)]
        struct PairJson {
            send_rank: usize,
            send_line: u32,
            recv_rank: usize,
            recv_line: u32,
        }
        #[derive(Serialize)]
        struct RankPair {
            a: usize,
            b: usize,
        }
        #[derive(Serialize)]
        struct EntryJson {
            rank: usize,
            lines: Vec<u32>,
            certain: bool,
        }
        #[derive(Serialize)]
        struct Report {
            workload: String,
            file: String,
            nprocs: usize,
            complete: bool,
            exact: bool,
            sites: Vec<SiteJson>,
            may_match: Vec<PairJson>,
            independent_rank_pairs: Vec<RankPair>,
            independence_pairs: u64,
            wildcard_sites: usize,
            entry: Vec<EntryJson>,
            deadlocked_ranks: Vec<usize>,
        }
        let sites: Vec<SiteJson> = self
            .graph
            .sites
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let (peers, tag, wildcard) = match &s.op {
                    SiteOp::Send { dst, tag } => (dst.render(), Some(*tag), false),
                    SiteOp::Recv { src, tag, wildcard } => (src.render(), *tag, *wildcard),
                    SiteOp::Barrier => (String::new(), None, false),
                };
                SiteJson {
                    rank: s.rank,
                    line: s.line,
                    func: s.func.clone(),
                    op: s.op.kind(),
                    peers,
                    tag,
                    wildcard,
                    partners: self.may_match.partners[i],
                }
            })
            .collect();
        let wildcard_sites = self
            .graph
            .sites
            .iter()
            .filter(|s| matches!(s.op, SiteOp::Recv { wildcard: true, .. }))
            .count();
        let report = Report {
            workload: workload.to_string(),
            file: self.graph.file.clone(),
            nprocs: self.graph.nprocs,
            complete: self.graph.complete,
            exact: self.graph.exact,
            sites,
            may_match: self
                .may_match
                .pairs
                .iter()
                .map(|&(si, ri)| PairJson {
                    send_rank: self.graph.sites[si].rank,
                    send_line: self.graph.sites[si].line,
                    recv_rank: self.graph.sites[ri].rank,
                    recv_line: self.graph.sites[ri].line,
                })
                .collect(),
            independent_rank_pairs: self
                .independence
                .pairs()
                .into_iter()
                .map(|(a, b)| RankPair { a, b })
                .collect(),
            independence_pairs: self.independence.pair_count(),
            wildcard_sites,
            entry: self
                .graph
                .entry
                .iter()
                .enumerate()
                .map(|(rank, e)| EntryJson {
                    rank,
                    lines: e.lines.clone(),
                    certain: e.certain,
                })
                .collect(),
            deadlocked_ranks: self.deadlocked_ranks(),
        };
        serde_json::to_string(&report).expect("analysis report serializes")
    }

    /// Graphviz rendering: one cluster per rank, sites as nodes, may-match
    /// pairs as edges.
    pub fn to_dot(&self, workload: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph may_match {{");
        let _ = writeln!(out, "  label=\"{workload}\";");
        let _ = writeln!(out, "  rankdir=LR;");
        for rank in 0..self.graph.nprocs {
            let _ = writeln!(out, "  subgraph cluster_rank{rank} {{");
            let _ = writeln!(out, "    label=\"rank {rank}\";");
            for (i, s) in self.graph.sites.iter().enumerate() {
                if s.rank != rank {
                    continue;
                }
                let desc = match &s.op {
                    SiteOp::Send { dst, tag } => {
                        format!("send→{} tag {tag}", dst.render())
                    }
                    SiteOp::Recv { src, tag, .. } => match tag {
                        Some(t) => format!("recv←{} tag {t}", src.render()),
                        None => format!("recv←{}", src.render()),
                    },
                    SiteOp::Barrier => "barrier".to_string(),
                };
                let _ = writeln!(out, "    s{i} [label=\"L{}: {desc}\"];", s.line);
            }
            let _ = writeln!(out, "  }}");
        }
        for &(si, ri) in &self.may_match.pairs {
            let _ = writeln!(out, "  s{si} -> s{ri};");
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_workloads::script::parse;

    fn run(src: &str, nprocs: usize) -> Analysis {
        analyze(&parse(src).expect("parse"), nprocs, "test.sdl")
    }

    /// Head-to-head: both ranks receive first, from each other.
    const DEADLOCKED: &str = "fn main\n  let peer = 1 - rank\n  recv from peer tag 1 into x\n  send peer tag 1 rank\nend\n";

    #[test]
    fn head_to_head_recvs_are_statically_deadlocked() {
        let a = run(DEADLOCKED, 2);
        assert_eq!(a.deadlocked_ranks(), vec![0, 1]);
    }

    #[test]
    fn ring_with_a_kickoff_send_is_not_deadlocked() {
        // Rank 0 sends first; everyone else receives first but rank 0's
        // send eventually feeds the chain.
        let src = "fn main\n  let nxt = ( rank + 1 ) % nprocs\n  let prv = ( rank + nprocs - 1 ) % nprocs\n  if rank == 0\n    send nxt tag 1 0\n    recv from prv tag 1 into x\n  else\n    recv from prv tag 1 into x\n    send nxt tag 1 x\n  end\nend\n";
        let a = run(src, 4);
        assert!(a.graph.complete && a.graph.exact);
        assert!(a.deadlocked_ranks().is_empty());
    }

    #[test]
    fn orphan_recv_with_no_sender_is_deadlocked() {
        let src = "fn main\n  if rank == 0\n    recv from 1 tag 9 into x\n  end\nend\n";
        let a = run(src, 2);
        assert_eq!(a.deadlocked_ranks(), vec![0]);
    }

    #[test]
    fn may_match_lines_answers_by_location() {
        let a = run(DEADLOCKED, 2);
        // send at line 4, recv at line 3, both directions.
        assert!(a.may_match_lines(0, 4, 1, 3));
        assert!(a.may_match_lines(1, 4, 0, 3));
        assert!(!a.may_match_lines(0, 3, 1, 4)); // recv is not a send
        assert!(!a.may_match_lines(0, 99, 1, 3)); // unknown site
    }

    #[test]
    fn json_report_has_schema_keys() {
        let a = run(DEADLOCKED, 2);
        let js = a.to_json("test");
        for key in [
            "\"workload\"",
            "\"file\"",
            "\"nprocs\"",
            "\"complete\"",
            "\"exact\"",
            "\"sites\"",
            "\"may_match\"",
            "\"independent_rank_pairs\"",
            "\"independence_pairs\"",
            "\"wildcard_sites\"",
            "\"entry\"",
            "\"deadlocked_ranks\"",
        ] {
            assert!(js.contains(key), "missing {key} in {js}");
        }
    }

    #[test]
    fn dot_report_renders_clusters_and_edges() {
        let a = run(DEADLOCKED, 2);
        let dot = a.to_dot("test");
        assert!(dot.starts_with("digraph may_match {"));
        assert!(dot.contains("cluster_rank0") && dot.contains("cluster_rank1"));
        assert!(dot.contains("->"));
    }
}
