//! VCG exporters.
//!
//! The paper's Figure 9 caption: "The graph was converted to VCG format
//! displayed with the xvcg graph layout tool." VCG is the GDL-like format
//! of Sander's visualization tool; these exporters produce the same graphs
//! as the DOT back end in that format.

use std::fmt::Write as _;
use tracedbg_tracegraph::{ArcKind, CallGraph, CommGraph, TraceGraph, TraceNode};

fn header(title: &str) -> String {
    format!(
        "graph: {{\n  title: \"{title}\"\n  layoutalgorithm: minbackward\n  display_edge_labels: yes\n"
    )
}

/// Export a communication graph (Figure 4) to VCG.
pub fn comm_graph_vcg(g: &CommGraph) -> String {
    let mut s = header("communication graph");
    for id in g.ids() {
        let _ = writeln!(
            s,
            "  node: {{ title: \"n{}\" label: \"{}\" }}",
            id.0,
            g.label(id)
        );
    }
    for (a, b) in g.arcs() {
        let _ = writeln!(
            s,
            "  edge: {{ sourcename: \"n{}\" targetname: \"n{}\" }}",
            a.0, b.0
        );
    }
    s.push_str("}\n");
    s
}

/// Export a dynamic call graph (Figure 9) to VCG. Multiple arcs appear as
/// multiple edges, exactly like the xvcg display in the paper.
pub fn call_graph_vcg(g: &CallGraph, max_arcs_per_pair: usize) -> String {
    let mut s = header(&format!("dynamic call graph P{}", g.rank));
    for (i, f) in g.functions.iter().enumerate() {
        let _ = writeln!(s, "  node: {{ title: \"f{i}\" label: \"{f}\" }}");
    }
    let ix_of = |name: &str| g.functions.iter().position(|f| f == name).unwrap();
    for a in g.arcs_grouped(max_arcs_per_pair) {
        let _ = writeln!(
            s,
            "  edge: {{ sourcename: \"f{}\" targetname: \"f{}\" label: \"x{}\" }}",
            ix_of(&a.caller),
            ix_of(&a.callee),
            a.calls
        );
    }
    s.push_str("}\n");
    s
}

/// Export the trace graph to VCG.
pub fn trace_graph_vcg(g: &TraceGraph) -> String {
    let mut s = header("trace graph");
    for (i, n) in g.nodes().iter().enumerate() {
        let shape = match n {
            TraceNode::Function { .. } => "box",
            TraceNode::Channel(_) => "rhomb",
        };
        let _ = writeln!(
            s,
            "  node: {{ title: \"n{i}\" label: \"{}\" shape: {shape} }}",
            n.label()
        );
    }
    for a in g.all_arcs() {
        let class = match a.kind {
            ArcKind::Call => 1,
            ArcKind::MsgSend => 2,
            ArcKind::MsgRecv => 3,
        };
        let _ = writeln!(
            s,
            "  edge: {{ sourcename: \"n{}\" targetname: \"n{}\" class: {class} label: \"x{}\" }}",
            a.from.0, a.to.0, a.multiplicity
        );
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_trace::{EventKind, MsgInfo, Rank, SiteTable, Tag, TraceRecord, TraceStore};
    use tracedbg_tracegraph::MessageMatching;

    fn store() -> TraceStore {
        let sites = SiteTable::new();
        let f = sites.site("a.c", 1, "work");
        let m = MsgInfo {
            src: Rank(0),
            dst: Rank(1),
            tag: Tag(1),
            bytes: 8,
            seq: 0,
        };
        let recs = vec![
            TraceRecord::basic(0u32, EventKind::FnEnter, 1, 0).with_site(f),
            TraceRecord::basic(0u32, EventKind::Send, 2, 1)
                .with_span(1, 2)
                .with_msg(m),
            TraceRecord::basic(0u32, EventKind::FnExit, 3, 3).with_site(f),
            TraceRecord::basic(1u32, EventKind::RecvDone, 1, 4)
                .with_span(4, 5)
                .with_msg(m),
        ];
        TraceStore::build(recs, sites, 2)
    }

    #[test]
    fn vcg_structure() {
        let s = store();
        let mm = MessageMatching::build(&s);
        let g = CommGraph::build(&s, &mm);
        let vcg = comm_graph_vcg(&g);
        assert!(vcg.starts_with("graph: {"));
        assert!(vcg.contains("node: {"));
        assert!(vcg.trim_end().ends_with('}'));
    }

    #[test]
    fn call_graph_vcg_has_edges() {
        let s = store();
        let tg = TraceGraph::build(&s);
        let cg = CallGraph::project(&tg, Rank(0));
        let vcg = call_graph_vcg(&cg, 1);
        assert!(vcg.contains("edge: {"), "{vcg}");
        assert!(vcg.contains("label: \"x1\""), "{vcg}");
    }

    #[test]
    fn trace_graph_vcg_classes() {
        let s = store();
        let tg = TraceGraph::build(&s);
        let vcg = trace_graph_vcg(&tg);
        assert!(vcg.contains("class: 1"));
        assert!(vcg.contains("class: 2"));
        assert!(vcg.contains("class: 3"));
        assert!(vcg.contains("shape: rhomb"));
    }
}
