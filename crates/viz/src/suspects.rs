//! ASCII rendering of a fault-localization result.
//!
//! `tracedbg localize` ranks suspect processes by four comparative
//! signals (decision-log divergence, event-graph diff, telemetry
//! anomaly, wait-state blame); this module draws that ranking as a
//! terminal table — one row
//! per suspect with its component scores and a proportional bar, evidence
//! lines indented underneath, then the per-channel edge diffs.
//!
//! The renderer is deliberately decoupled from `tracedbg-localize`: it
//! consumes plain row structs, so the viz crate stays a leaf that any
//! report producer can feed.

/// One ranked suspect process.
#[derive(Clone, Debug, Default)]
pub struct SuspectRow {
    pub rank: u32,
    /// Combined score in milli-units (0..=1000).
    pub score: u64,
    pub divergence: u64,
    pub graph: u64,
    pub anomaly: u64,
    /// Wait-state blame component (0..=1000).
    pub blame: u64,
    /// Free-form contribution notes, printed indented under the row.
    pub evidence: Vec<String>,
}

/// One channel's edge-diff summary.
#[derive(Clone, Debug, Default)]
pub struct ChannelRow {
    pub src: u32,
    pub dst: u32,
    pub tag: i32,
    pub missing: u64,
    pub extra: u64,
    pub reordered: u64,
}

/// The localization header: what failed and where the schedules part ways.
#[derive(Clone, Debug, Default)]
pub struct SuspectSummary {
    pub workload: String,
    pub verdict: String,
    pub failure: String,
    pub passing_runs: usize,
    /// `(index, chosen, expected)` of the first diverging decision.
    pub divergence: Option<(usize, String, String)>,
    /// Stopline marker frontier at the divergence.
    pub markers: Vec<u64>,
}

/// Width of the score bar for a 1000-milli suspect.
const BAR_WIDTH: usize = 24;

/// Render the suspect ranking. Pure function of its inputs — byte-stable
/// for a given report, like every other render in this crate.
pub fn render_suspects(
    summary: &SuspectSummary,
    suspects: &[SuspectRow],
    channels: &[ChannelRow],
) -> String {
    let mut out = String::new();
    // Panic details can span lines; the header stays one line.
    let failure: Vec<&str> = summary.failure.lines().map(str::trim).collect();
    out.push_str(&format!(
        "localize {} — {} ({})\n",
        summary.workload,
        summary.verdict,
        failure.join(" ")
    ));
    out.push_str(&format!(
        "references: {} passing run(s)\n",
        summary.passing_runs
    ));
    if let Some((index, chosen, expected)) = &summary.divergence {
        out.push_str(&format!(
            "first divergence at decision {index}: chose {chosen}, passing runs {expected}\n"
        ));
        if !summary.markers.is_empty() {
            let m: Vec<String> = summary.markers.iter().map(|v| v.to_string()).collect();
            out.push_str(&format!("stopline markers: [{}]\n", m.join(", ")));
        }
    }
    if suspects.is_empty() {
        out.push_str("no suspects.\n");
        return out;
    }
    out.push_str(&format!(
        "{:<6} {:>6} {:>5} {:>6} {:>4} {:>6}  suspicion\n",
        "rank", "score", "div", "graph", "mad", "blame"
    ));
    for s in suspects {
        let bar = (s.score as usize * BAR_WIDTH) / 1000;
        out.push_str(&format!(
            "P{:<5} {:>6} {:>5} {:>6} {:>4} {:>6}  {}\n",
            s.rank,
            s.score,
            s.divergence,
            s.graph,
            s.anomaly,
            s.blame,
            "#".repeat(bar)
        ));
        for e in &s.evidence {
            out.push_str(&format!("       - {e}\n"));
        }
    }
    if !channels.is_empty() {
        out.push_str("channel diffs vs nearest passing trace:\n");
        for c in channels {
            out.push_str(&format!(
                "  P{} -> P{} tag {}: {} missing, {} extra, {} reordered\n",
                c.src, c.dst, c.tag, c.missing, c.extra, c.reordered
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (SuspectSummary, Vec<SuspectRow>, Vec<ChannelRow>) {
        let summary = SuspectSummary {
            workload: "planted-wildcard".into(),
            verdict: "localized".into(),
            failure: "panic: poisoned leader".into(),
            passing_runs: 3,
            divergence: Some((0, "turn P2".into(), "turn P0".into())),
            markers: vec![4, 1, 2, 1],
        };
        let suspects = vec![
            SuspectRow {
                rank: 2,
                score: 1000,
                divergence: 1000,
                graph: 1000,
                anomaly: 1000,
                blame: 1000,
                evidence: vec!["first diverging decision involves rank 2".into()],
            },
            SuspectRow {
                rank: 0,
                score: 500,
                divergence: 1000,
                graph: 0,
                anomaly: 0,
                blame: 0,
                evidence: vec![],
            },
        ];
        let channels = vec![ChannelRow {
            src: 2,
            dst: 0,
            tag: 40,
            missing: 0,
            extra: 0,
            reordered: 1,
        }];
        (summary, suspects, channels)
    }

    #[test]
    fn render_shows_header_rows_evidence_and_channels() {
        let (summary, suspects, channels) = sample();
        let s = render_suspects(&summary, &suspects, &channels);
        assert!(s.contains("localize planted-wildcard — localized"), "{s}");
        assert!(s.contains("first divergence at decision 0"), "{s}");
        assert!(s.contains("stopline markers: [4, 1, 2, 1]"), "{s}");
        assert!(s.contains("P2 "), "{s}");
        assert!(s.contains("- first diverging decision"), "{s}");
        assert!(s.contains("P2 -> P0 tag 40"), "{s}");
    }

    #[test]
    fn bar_is_proportional_to_the_combined_score() {
        let (summary, suspects, channels) = sample();
        let s = render_suspects(&summary, &suspects, &channels);
        let bar_of = |rank: &str| {
            s.lines()
                .find(|l| l.starts_with(rank))
                .unwrap()
                .chars()
                .filter(|&c| c == '#')
                .count()
        };
        assert_eq!(
            bar_of("P2"),
            BAR_WIDTH,
            "a 1000-milli suspect fills the bar"
        );
        assert_eq!(bar_of("P0"), BAR_WIDTH / 2);
    }

    #[test]
    fn empty_ranking_says_so() {
        let (mut summary, _, _) = sample();
        summary.divergence = None;
        let s = render_suspects(&summary, &[], &[]);
        assert!(s.contains("no suspects."), "{s}");
        assert!(!s.contains("stopline"), "{s}");
    }
}
