//! Graphviz DOT exporters for the trace-graph family.

use std::fmt::Write as _;
use tracedbg_tracegraph::{ArcKind, CallGraph, CommGraph, TraceGraph, TraceNode};

/// Export a communication graph (Figure 4) to DOT.
pub fn comm_graph_dot(g: &CommGraph) -> String {
    let mut s = String::from("digraph comm {\n  rankdir=LR;\n  node [shape=box];\n");
    for id in g.ids() {
        let _ = writeln!(s, "  n{} [label=\"{}\"];", id.0, g.label(id));
    }
    for (a, b) in g.arcs() {
        let _ = writeln!(s, "  n{} -> n{};", a.0, b.0);
    }
    s.push_str("}\n");
    s
}

/// Export a dynamic call graph (Figure 9) to DOT; `max_arcs_per_pair`
/// controls arc grouping ("the number of calls per arc is adjustable").
pub fn call_graph_dot(g: &CallGraph, max_arcs_per_pair: usize) -> String {
    let mut s = String::from("digraph calls {\n  node [shape=ellipse];\n");
    for f in &g.functions {
        let _ = writeln!(s, "  \"{f}\";");
    }
    for a in g.arcs_grouped(max_arcs_per_pair) {
        let _ = writeln!(
            s,
            "  \"{}\" -> \"{}\" [label=\"x{}\"];",
            a.caller, a.callee, a.calls
        );
    }
    s.push_str("}\n");
    s
}

/// Export the full trace graph to DOT (functions as ellipses, channels as
/// diamonds; arc style by kind).
pub fn trace_graph_dot(g: &TraceGraph) -> String {
    let mut s = String::from("digraph trace {\n");
    for (i, n) in g.nodes().iter().enumerate() {
        let shape = match n {
            TraceNode::Function { .. } => "ellipse",
            TraceNode::Channel(_) => "diamond",
        };
        let _ = writeln!(s, "  n{i} [shape={shape} label=\"{}\"];", n.label());
    }
    for a in g.all_arcs() {
        let style = match a.kind {
            ArcKind::Call => "solid",
            ArcKind::MsgSend => "dashed",
            ArcKind::MsgRecv => "dotted",
        };
        let _ = writeln!(
            s,
            "  n{} -> n{} [style={style} label=\"x{}\"];",
            a.from.0, a.to.0, a.multiplicity
        );
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_trace::{EventKind, MsgInfo, Rank, SiteTable, Tag, TraceRecord, TraceStore};
    use tracedbg_tracegraph::MessageMatching;

    fn store() -> TraceStore {
        let sites = SiteTable::new();
        let f = sites.site("a.c", 1, "work");
        let m = MsgInfo {
            src: Rank(0),
            dst: Rank(1),
            tag: Tag(1),
            bytes: 8,
            seq: 0,
        };
        let recs = vec![
            TraceRecord::basic(0u32, EventKind::FnEnter, 1, 0).with_site(f),
            TraceRecord::basic(0u32, EventKind::Send, 2, 1)
                .with_span(1, 2)
                .with_msg(m),
            TraceRecord::basic(0u32, EventKind::FnExit, 3, 3).with_site(f),
            TraceRecord::basic(1u32, EventKind::RecvDone, 1, 4)
                .with_span(4, 5)
                .with_msg(m),
        ];
        TraceStore::build(recs, sites, 2)
    }

    #[test]
    fn comm_dot_is_wellformed() {
        let s = store();
        let mm = MessageMatching::build(&s);
        let g = CommGraph::build(&s, &mm);
        let dot = comm_graph_dot(&g);
        assert!(dot.starts_with("digraph comm {"));
        assert!(dot.contains("P0->P1 tag1 #0"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn call_dot_contains_arcs() {
        let s = store();
        let tg = TraceGraph::build(&s);
        let cg = CallGraph::project(&tg, Rank(0));
        let dot = call_graph_dot(&cg, 1);
        assert!(dot.contains("\"main\" -> \"work\" [label=\"x1\"]"), "{dot}");
    }

    #[test]
    fn trace_dot_styles_by_kind() {
        let s = store();
        let tg = TraceGraph::build(&s);
        let dot = trace_graph_dot(&tg);
        assert!(dot.contains("shape=diamond"), "{dot}");
        assert!(dot.contains("style=dashed"), "{dot}");
        assert!(dot.contains("style=dotted"), "{dot}");
        assert!(dot.contains("style=solid"), "{dot}");
    }
}
