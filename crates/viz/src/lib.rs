//! Trace visualization (§3).
//!
//! The paper displays history with two X11 tools: *NTV* (whole trace,
//! zoom/pan) and *VK* from AIMS (scrolling animated window). Both render a
//! **time-space diagram**: one lane per process, a colored bar per
//! construct, a line segment per message from `(time_sent, source)` to
//! `(time_received, destination)`, and overlays for stoplines and
//! past/future frontiers.
//!
//! This crate reproduces those displays on two render targets:
//!
//! * [`ascii`] — terminal rendering of the same view model;
//! * [`svg`] — publication-style SVG, used by the `repro_fig*` harnesses
//!   to regenerate Figures 2, 3, 5, 6 and 8;
//!
//! plus the two interaction models ([`NtvView`], [`VkView`]) and graph
//! exporters in DOT and VCG format (Figures 4 and 9 — the paper fed xvcg).

pub mod ascii;
pub mod dot;
pub mod html;
pub mod ntv;
pub mod profile;
pub mod suspects;
pub mod svg;
pub mod timeline;
pub mod vcg;
pub mod vk;
pub mod waitblame;

pub use ascii::render_ascii;
pub use html::render_html_report;
pub use ntv::NtvView;
pub use profile::render_rank_profile;
pub use suspects::{render_suspects, ChannelRow, SuspectRow, SuspectSummary};
pub use svg::render_svg;
pub use timeline::{Bar, BarKind, MsgLine, Overlay, TimelineModel};
pub use vk::VkView;
pub use waitblame::{render_wait_blame, ProfileSummary, WaitKindRow, WaitRankRow};
