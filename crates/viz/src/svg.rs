//! SVG rendering of the time-space diagram.
//!
//! Produces self-contained SVG in the visual style of the paper's NTV/VK
//! screenshots: horizontal lanes (process 0 at the bottom), colored
//! construct bars, angled message lines, a red stopline, frontier
//! polylines and a selection circle.

use crate::timeline::{Overlay, TimelineModel};
use std::fmt::Write as _;

const LANE_H: f64 = 28.0;
const BAR_H: f64 = 14.0;
const MARGIN_L: f64 = 50.0;
const MARGIN_T: f64 = 30.0;
const MARGIN_B: f64 = 40.0;

/// Render the model to an SVG document string.
pub fn render_svg(model: &TimelineModel, width: f64) -> String {
    let width = width.max(200.0);
    let plot_w = width - MARGIN_L - 20.0;
    let span = model.span() as f64;
    let n = model.n_ranks;
    let height = MARGIN_T + n as f64 * LANE_H + MARGIN_B;
    let x_of =
        |t: u64| -> f64 { MARGIN_L + (t.saturating_sub(model.t_min)) as f64 / span * plot_w };
    // Rank 0 at the bottom, like Figure 3.
    let lane_y = |r: usize| -> f64 { MARGIN_T + (n - 1 - r) as f64 * LANE_H };
    let bar_y = |r: usize| -> f64 { lane_y(r) + (LANE_H - BAR_H) / 2.0 };
    let mid_y = |r: usize| -> f64 { lane_y(r) + LANE_H / 2.0 };

    let mut s = String::new();
    let _ = write!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}" font-family="sans-serif" font-size="10">"#
    );
    let _ = write!(
        s,
        r#"<rect x="0" y="0" width="{width}" height="{height}" fill="white"/>"#
    );
    // Lane baselines + labels.
    for r in 0..n {
        let y = mid_y(r);
        let _ = write!(
            s,
            r##"<line x1="{MARGIN_L}" y1="{y}" x2="{:.1}" y2="{y}" stroke="#dddddd"/>"##,
            MARGIN_L + plot_w
        );
        let _ = write!(s, r#"<text x="8" y="{:.1}">P{r}</text>"#, y + 3.0);
    }
    // Bars.
    for b in &model.bars {
        let x0 = x_of(b.t0.max(model.t_min));
        let mut x1 = x_of(b.t1.min(model.t_max));
        let open_ended = b.kind == crate::timeline::BarKind::BlockedRecv;
        if open_ended {
            x1 = MARGIN_L + plot_w; // runs off the right edge
        }
        let w = (x1 - x0).max(1.0);
        let y = bar_y(b.rank.ix());
        let _ = write!(
            s,
            r#"<rect x="{x0:.1}" y="{y:.1}" width="{w:.1}" height="{BAR_H}" fill="{}"{}><title>{}</title></rect>"#,
            b.kind.color(),
            if open_ended {
                r#" fill-opacity="0.6""#
            } else {
                ""
            },
            xml_escape(&b.label)
        );
    }
    // Message lines.
    for m in &model.messages {
        let x0 = x_of(m.t_sent);
        let x1 = x_of(m.t_recv);
        let y0 = mid_y(m.src.ix());
        let y1 = mid_y(m.dst.ix());
        let _ = write!(
            s,
            r##"<line x1="{x0:.1}" y1="{y0:.1}" x2="{x1:.1}" y2="{y1:.1}" stroke="#333333" stroke-width="0.8"><title>P{}→P{} tag{}</title></line>"##,
            m.src, m.dst, m.tag
        );
    }
    // Overlays.
    for o in &model.overlays {
        match o {
            Overlay::Stopline { t, label } => {
                let x = x_of(*t);
                let _ = write!(
                    s,
                    r#"<line x1="{x:.1}" y1="{MARGIN_T}" x2="{x:.1}" y2="{:.1}" stroke="red" stroke-width="1.5"/>"#,
                    MARGIN_T + n as f64 * LANE_H
                );
                let _ = write!(
                    s,
                    r#"<text x="{:.1}" y="{:.1}" fill="red">{}</text>"#,
                    x + 3.0,
                    MARGIN_T - 5.0,
                    xml_escape(label)
                );
            }
            Overlay::FrontierLine { points, label } => {
                if points.is_empty() {
                    continue;
                }
                let mut pts: Vec<(f64, f64)> = points
                    .iter()
                    .map(|(r, t)| (x_of(*t), mid_y(r.ix())))
                    .collect();
                pts.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
                let path: String = pts
                    .iter()
                    .enumerate()
                    .map(|(i, (x, y))| format!("{}{x:.1},{y:.1}", if i == 0 { "M" } else { "L" }))
                    .collect();
                let _ = write!(
                    s,
                    r#"<path d="{path}" fill="none" stroke="black" stroke-width="1.5"><title>{}</title></path>"#,
                    xml_escape(label)
                );
            }
            Overlay::Mark { rank, t, label } => {
                let x = x_of(*t);
                let y = mid_y(rank.ix());
                let _ = write!(
                    s,
                    r#"<circle cx="{x:.1}" cy="{y:.1}" r="6" fill="none" stroke="black" stroke-width="1.5"><title>{}</title></circle>"#,
                    xml_escape(label)
                );
            }
        }
    }
    // Time axis.
    let y_axis = MARGIN_T + n as f64 * LANE_H + 14.0;
    for i in 0..=4 {
        let t = model.t_min + model.span() * i / 4;
        let x = x_of(t);
        let _ = write!(
            s,
            r##"<text x="{x:.1}" y="{y_axis:.1}" text-anchor="middle" fill="#666666">{t}</text>"##
        );
    }
    s.push_str("</svg>");
    s
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::TimelineModel;
    use tracedbg_trace::{EventKind, MsgInfo, Rank, SiteTable, Tag, TraceRecord, TraceStore};
    use tracedbg_tracegraph::MessageMatching;

    fn model() -> (TraceStore, TimelineModel) {
        let m = MsgInfo {
            src: Rank(0),
            dst: Rank(1),
            tag: Tag(3),
            bytes: 8,
            seq: 0,
        };
        let recs = vec![
            TraceRecord::basic(0u32, EventKind::Compute, 1, 0).with_span(0, 100),
            TraceRecord::basic(0u32, EventKind::Send, 2, 100)
                .with_span(100, 110)
                .with_msg(m),
            TraceRecord::basic(1u32, EventKind::RecvDone, 1, 0)
                .with_span(0, 160)
                .with_msg(m),
            TraceRecord::basic(1u32, EventKind::RecvPost, 2, 170).with_args(0, -1),
        ];
        let store = TraceStore::build(recs, SiteTable::new(), 2);
        let mm = MessageMatching::build(&store);
        let tm = TimelineModel::build(&store, &mm, false);
        (store, tm)
    }

    #[test]
    fn produces_valid_looking_svg() {
        let (_, tm) = model();
        let svg = render_svg(&tm, 800.0);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("<rect"));
        assert!(svg.contains("<line"));
        assert!(svg.contains("P0"));
        assert!(svg.contains("P1"));
    }

    #[test]
    fn stopline_is_red() {
        let (_, mut tm) = model();
        tm.add_stopline(50, "stop here");
        let svg = render_svg(&tm, 800.0);
        assert!(svg.contains(r#"stroke="red""#));
        assert!(svg.contains("stop here"));
    }

    #[test]
    fn blocked_recv_runs_to_edge() {
        let (_, tm) = model();
        let svg = render_svg(&tm, 800.0);
        assert!(svg.contains("fill-opacity"), "open-ended bar missing");
    }

    #[test]
    fn escapes_labels() {
        assert_eq!(xml_escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
    }

    #[test]
    fn mark_overlay_draws_circle() {
        let (s, mut tm) = model();
        tm.add_mark(&s, tracedbg_trace::EventId(0), "sel");
        let svg = render_svg(&tm, 800.0);
        assert!(svg.contains("<circle"));
    }
}
