//! AIMS-statistics-style per-rank profile.
//!
//! The paper pairs its trace displays with AIMS' statistical views —
//! aggregate communication volume and wait time per process, next to the
//! time-space diagram. [`render_rank_profile`] reproduces that view in the
//! terminal from an [`EngineMetrics`]: one row per rank with its message
//! count, byte volume, receive count, and turns spent blocked in a
//! receive, the last visualized as a proportional bar so the most-starved
//! rank is visible at a glance.

use tracedbg_obs::EngineMetrics;

/// Width of the blocked-turns bar for the fullest rank.
const BAR_WIDTH: usize = 24;

/// Render a per-rank wait-time/volume table. Pure function of the
/// metrics — no wall-clock input — so output is byte-stable for a given
/// run.
pub fn render_rank_profile(m: &EngineMetrics) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<6} {:>8} {:>10} {:>7} {:>8}  {}\n",
        "rank", "msgs", "bytes", "recvs", "blocked", "wait profile"
    ));
    let max_blocked = m.blocked_turns.iter().copied().max().unwrap_or(0).max(1);
    for r in 0..m.nprocs() {
        let blocked = m.blocked_turns[r];
        let bar_len = (blocked as usize * BAR_WIDTH) / max_blocked as usize;
        out.push_str(&format!(
            "P{:<5} {:>8} {:>10} {:>7} {:>8}  {}\n",
            r,
            m.msgs_sent[r],
            m.bytes_sent[r],
            m.recvs[r],
            blocked,
            "#".repeat(bar_len)
        ));
    }
    out.push_str(&format!(
        "total  {:>8} {:>10} {:>7} {:>8}\n",
        m.total_msgs(),
        m.total_bytes(),
        m.recvs.iter().sum::<u64>(),
        m.blocked_turns.iter().sum::<u64>(),
    ));
    out.push_str(&format!(
        "turns {}  matches {}  queue high-water {}  match latency mean {} turn(s) (max {})\n",
        m.turns,
        m.matches,
        m.queue_hwm.iter().copied().max().unwrap_or(0),
        m.match_latency.mean(),
        m.match_latency.max,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EngineMetrics {
        let mut m = EngineMetrics::new(3);
        m.turns = 40;
        m.matches = 5;
        m.msgs_sent = vec![4, 1, 0];
        m.bytes_sent = vec![64, 8, 0];
        m.recvs = vec![0, 2, 3];
        m.blocked_turns = vec![0, 6, 12];
        m.queue_hwm = vec![2, 1, 0];
        m.match_latency.record(3);
        m.match_latency.record(5);
        m
    }

    #[test]
    fn profile_has_one_row_per_rank_plus_totals() {
        let s = render_rank_profile(&sample());
        assert!(s.contains("P0"), "{s}");
        assert!(s.contains("P2"), "{s}");
        assert!(s.contains("total"), "{s}");
        assert_eq!(
            s.lines().count(),
            1 + 3 + 1 + 1,
            "header, ranks, totals, summary"
        );
    }

    #[test]
    fn bar_length_is_proportional_to_blocked_turns() {
        let s = render_rank_profile(&sample());
        let bar_of = |rank: &str| {
            s.lines()
                .find(|l| l.starts_with(rank))
                .unwrap()
                .chars()
                .filter(|&c| c == '#')
                .count()
        };
        assert_eq!(bar_of("P2"), BAR_WIDTH, "fullest rank gets a full bar");
        assert_eq!(bar_of("P1"), BAR_WIDTH / 2, "half the wait, half the bar");
        assert_eq!(bar_of("P0"), 0);
    }

    #[test]
    fn all_idle_ranks_render_without_bars() {
        let m = EngineMetrics::new(2);
        let s = render_rank_profile(&m);
        assert!(!s.contains('#'), "{s}");
        assert!(s.contains("match latency mean 0"), "{s}");
    }
}
