//! Terminal rendering of the time-space diagram.
//!
//! One text row per process, time mapped linearly onto the given width.
//! Construct bars are runs of their [`BarKind`](crate::BarKind) character,
//! message endpoints are marked (`>` at the send, `v` at the receive) and
//! a stopline is a `|` column drawn through every lane.

use crate::timeline::{Overlay, TimelineModel};

/// Render the model to a text block. `width` is the number of time
/// columns (the lane labels are prepended).
pub fn render_ascii(model: &TimelineModel, width: usize) -> String {
    let width = width.max(10);
    let span = model.span() as f64;
    let col = |t: u64| -> usize {
        let x = (t.saturating_sub(model.t_min)) as f64 / span * (width - 1) as f64;
        (x.round() as usize).min(width - 1)
    };
    let mut lanes: Vec<Vec<char>> = vec![vec![' '; width]; model.n_ranks];
    for b in &model.bars {
        let (c0, c1) = (col(b.t0.max(model.t_min)), col(b.t1.min(model.t_max)));
        let ch = b.kind.ch();
        let lane = &mut lanes[b.rank.ix()];
        for cell in lane[c0..=c1].iter_mut() {
            *cell = ch;
        }
        // An open-ended blocked receive extends to the right edge.
        if b.kind == crate::timeline::BarKind::BlockedRecv {
            for cell in lane[c0..].iter_mut() {
                if *cell == ' ' {
                    *cell = '?';
                }
            }
        }
    }
    for m in &model.messages {
        if m.t_sent >= model.t_min && m.t_sent <= model.t_max {
            lanes[m.src.ix()][col(m.t_sent)] = '>';
        }
        if m.t_recv >= model.t_min && m.t_recv <= model.t_max {
            lanes[m.dst.ix()][col(m.t_recv)] = 'v';
        }
    }
    let mut footer: Vec<String> = Vec::new();
    for o in &model.overlays {
        match o {
            Overlay::Stopline { t, label } => {
                let c = col(*t);
                for lane in &mut lanes {
                    lane[c] = '|';
                }
                footer.push(format!("| stopline '{label}' at t={t}"));
            }
            Overlay::FrontierLine { points, label } => {
                for (rank, t) in points {
                    if *t >= model.t_min && *t <= model.t_max {
                        lanes[rank.ix()][col(*t)] = '!';
                    }
                }
                footer.push(format!("! frontier '{label}'"));
            }
            Overlay::Mark { rank, t, label } => {
                if *t >= model.t_min && *t <= model.t_max {
                    lanes[rank.ix()][col(*t)] = 'O';
                }
                footer.push(format!("O mark '{label}' at P{rank} t={t}"));
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "time {} .. {} ns ({} lanes)\n",
        model.t_min, model.t_max, model.n_ranks
    ));
    // Highest rank on top, like the paper's figures (process 0 at the
    // bottom of Figure 3).
    for r in (0..model.n_ranks).rev() {
        out.push_str(&format!("P{r:<3}|"));
        out.extend(lanes[r].iter());
        out.push('\n');
    }
    out.push_str(
        "legend: = compute  S send  R recv  ? blocked-recv  # collective  > msg-out  v msg-in\n",
    );
    for f in footer {
        out.push_str(&f);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_trace::{EventKind, MsgInfo, Rank, SiteTable, Tag, TraceRecord, TraceStore};
    use tracedbg_tracegraph::MessageMatching;

    fn model() -> TimelineModel {
        let m = MsgInfo {
            src: Rank(0),
            dst: Rank(1),
            tag: Tag(3),
            bytes: 8,
            seq: 0,
        };
        let recs = vec![
            TraceRecord::basic(0u32, EventKind::Compute, 1, 0).with_span(0, 100),
            TraceRecord::basic(0u32, EventKind::Send, 2, 100)
                .with_span(100, 110)
                .with_msg(m),
            TraceRecord::basic(1u32, EventKind::RecvDone, 1, 0)
                .with_span(0, 160)
                .with_msg(m),
        ];
        let store = TraceStore::build(recs, SiteTable::new(), 2);
        let mm = MessageMatching::build(&store);
        TimelineModel::build(&store, &mm, false)
    }

    #[test]
    fn renders_lanes_and_legend() {
        let txt = render_ascii(&model(), 60);
        assert!(txt.contains("P0  |"), "{txt}");
        assert!(txt.contains("P1  |"), "{txt}");
        assert!(txt.contains("legend:"), "{txt}");
        assert!(txt.contains('='), "compute bar missing:\n{txt}");
        assert!(txt.contains('v'), "recv endpoint missing:\n{txt}");
    }

    #[test]
    fn p0_is_bottom_lane() {
        let txt = render_ascii(&model(), 40);
        let p1_pos = txt.find("P1  |").unwrap();
        let p0_pos = txt.find("P0  |").unwrap();
        assert!(p1_pos < p0_pos, "higher ranks on top");
    }

    #[test]
    fn stopline_spans_all_lanes() {
        let mut m = model();
        m.add_stopline(50, "test");
        let txt = render_ascii(&m, 60);
        let lines: Vec<&str> = txt.lines().collect();
        let bar_lines: Vec<&str> = lines
            .iter()
            .filter(|l| l.starts_with('P'))
            .copied()
            .collect();
        assert!(bar_lines.iter().all(|l| l.contains('|')));
        assert!(txt.contains("stopline 'test' at t=50"));
    }

    #[test]
    fn tiny_width_clamped() {
        let txt = render_ascii(&model(), 1);
        assert!(txt.contains("P0"));
    }
}
