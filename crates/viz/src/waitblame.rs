//! ASCII rendering of a profiling result — the wait/blame table.
//!
//! `tracedbg profile` classifies every blocked interval and extracts the
//! critical path; this module draws the answer as a terminal summary:
//! the makespan / critical-path headline, per-kind wait totals, and one
//! row per rank with its busy/wait split, the cost *blamed on* it, and
//! its critical-path share. Like `suspects`, the renderer consumes plain
//! row structs so the viz crate stays a leaf.

/// The profiling headline numbers.
#[derive(Clone, Debug, Default)]
pub struct ProfileSummary {
    pub workload: String,
    pub procs: usize,
    pub events: usize,
    pub makespan: u64,
    pub critical_path_len: u64,
    pub busy_total: u64,
    pub wait_total: u64,
    pub flight_dropped: u64,
}

/// Per-rank accounting row, all in simulated ns.
#[derive(Clone, Debug, Default)]
pub struct WaitRankRow {
    pub rank: u32,
    pub busy: u64,
    pub wait: u64,
    /// Wait cost blamed *on* this rank.
    pub blamed: u64,
    /// Critical-path contribution of this rank.
    pub path: u64,
}

/// Aggregate cost of one wait-state kind.
#[derive(Clone, Debug, Default)]
pub struct WaitKindRow {
    pub kind: String,
    pub count: u64,
    pub cost: u64,
}

/// Width of the blame bar for the most-blamed rank.
const BAR_WIDTH: usize = 24;

/// Rank rows shown; the rest are summarized in one line (the table must
/// stay readable at 1024 ranks).
const RANK_ROWS: usize = 16;

fn ns(v: u64) -> String {
    match v {
        0..=9_999 => format!("{v}ns"),
        10_000..=9_999_999 => format!("{:.1}us", v as f64 / 1e3),
        10_000_000..=999_999_999 => format!("{:.1}ms", v as f64 / 1e6),
        _ => format!("{:.2}s", v as f64 / 1e9),
    }
}

/// Render the wait/blame table. Pure function of its inputs — byte-stable
/// for a given report.
pub fn render_wait_blame(
    summary: &ProfileSummary,
    ranks: &[WaitRankRow],
    kinds: &[WaitKindRow],
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "profile {} — {} ranks, {} events\n",
        summary.workload, summary.procs, summary.events
    ));
    let share = (summary.critical_path_len * 100)
        .checked_div(summary.makespan)
        .unwrap_or(0);
    out.push_str(&format!(
        "makespan {}  critical path {} ({share}% of makespan)\n",
        ns(summary.makespan),
        ns(summary.critical_path_len)
    ));
    out.push_str(&format!(
        "busy {}  wait {}\n",
        ns(summary.busy_total),
        ns(summary.wait_total)
    ));
    if summary.flight_dropped > 0 {
        out.push_str(&format!(
            "flight recorder dropped {} spans\n",
            summary.flight_dropped
        ));
    }
    if !kinds.is_empty() {
        out.push_str("wait states:\n");
        for k in kinds {
            out.push_str(&format!(
                "  {:<18} {:>6}x {:>10}\n",
                k.kind,
                k.count,
                ns(k.cost)
            ));
        }
    }
    if ranks.is_empty() {
        return out;
    }
    // Most interesting ranks first: by blamed cost, then wait, then rank.
    let mut order: Vec<&WaitRankRow> = ranks.iter().collect();
    order.sort_by(|a, b| {
        (b.blamed, b.wait)
            .cmp(&(a.blamed, a.wait))
            .then(a.rank.cmp(&b.rank))
    });
    let max_blame = order.iter().map(|r| r.blamed).max().unwrap_or(0).max(1);
    out.push_str(&format!(
        "{:<6} {:>10} {:>10} {:>10} {:>10}  blame\n",
        "rank", "busy", "wait", "blamed", "path"
    ));
    for r in order.iter().take(RANK_ROWS) {
        let bar = (r.blamed as u128 * BAR_WIDTH as u128 / max_blame as u128) as usize;
        out.push_str(&format!(
            "P{:<5} {:>10} {:>10} {:>10} {:>10}  {}\n",
            r.rank,
            ns(r.busy),
            ns(r.wait),
            ns(r.blamed),
            ns(r.path),
            "#".repeat(bar)
        ));
    }
    if order.len() > RANK_ROWS {
        out.push_str(&format!("... {} more ranks\n", order.len() - RANK_ROWS));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (ProfileSummary, Vec<WaitRankRow>, Vec<WaitKindRow>) {
        let summary = ProfileSummary {
            workload: "ring:4".into(),
            procs: 4,
            events: 40,
            makespan: 100_000,
            critical_path_len: 80_000,
            busy_total: 220_000,
            wait_total: 60_000,
            flight_dropped: 3,
        };
        let ranks = vec![
            WaitRankRow {
                rank: 0,
                busy: 70_000,
                wait: 10_000,
                blamed: 40_000,
                path: 50_000,
            },
            WaitRankRow {
                rank: 1,
                busy: 50_000,
                wait: 50_000,
                blamed: 0,
                path: 30_000,
            },
        ];
        let kinds = vec![WaitKindRow {
            kind: "late-sender".into(),
            count: 3,
            cost: 60_000,
        }];
        (summary, ranks, kinds)
    }

    #[test]
    fn render_shows_headline_kinds_and_rows() {
        let (summary, ranks, kinds) = sample();
        let s = render_wait_blame(&summary, &ranks, &kinds);
        assert!(s.contains("profile ring:4 — 4 ranks, 40 events"), "{s}");
        assert!(s.contains("critical path 80.0us (80% of makespan)"), "{s}");
        assert!(s.contains("late-sender"), "{s}");
        assert!(s.contains("flight recorder dropped 3 spans"), "{s}");
        // Rank 0 is most blamed: first row, full bar.
        let row0 = s.lines().find(|l| l.starts_with("P0")).unwrap();
        assert_eq!(row0.chars().filter(|&c| c == '#').count(), BAR_WIDTH);
        let p0 = s.find("P0").unwrap();
        let p1 = s.find("P1").unwrap();
        assert!(p0 < p1, "blame-descending order");
    }

    #[test]
    fn long_rank_lists_are_summarized() {
        let (summary, _, _) = sample();
        let ranks: Vec<WaitRankRow> = (0..40)
            .map(|r| WaitRankRow {
                rank: r,
                busy: 1,
                wait: 0,
                blamed: (40 - r) as u64,
                path: 0,
            })
            .collect();
        let s = render_wait_blame(&summary, &ranks, &[]);
        assert!(s.contains("... 24 more ranks"), "{s}");
        assert!(!s.contains("P39 "), "tail ranks are folded: {s}");
    }
}
