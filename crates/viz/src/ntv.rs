//! The NTV-style interaction model (§3.1).
//!
//! "NTV provides the user with the entire trace file at one time and
//! allows selective zooming and panning to find events of interest." The
//! Ben-library integration gives the debugger two hooks this type
//! reproduces: *what are the execution markers at the point of a mouse
//! click in the time line* ([`NtvView::click`]) and *an indicator (a
//! vertical line) that the debugger can use to mark a point in the
//! history* ([`NtvView::set_indicator`]).

use crate::timeline::TimelineModel;
use tracedbg_trace::{EventId, MarkerVector, Rank, TraceStore};

/// Whole-trace view with zoom/pan and the debugger indicator line.
pub struct NtvView {
    /// Full extent of the trace.
    t_lo: u64,
    t_hi: u64,
    /// Current zoom window.
    win_lo: u64,
    win_hi: u64,
    /// The stopline indicator, if placed.
    indicator: Option<u64>,
}

impl NtvView {
    pub fn new(store: &TraceStore) -> Self {
        let (t_lo, t_hi) = store.time_bounds();
        NtvView {
            t_lo,
            t_hi,
            win_lo: t_lo,
            win_hi: t_hi,
            indicator: None,
        }
    }

    pub fn window(&self) -> (u64, u64) {
        (self.win_lo, self.win_hi)
    }

    /// Zoom so the window covers `[lo, hi]` (clamped to the trace).
    pub fn zoom(&mut self, lo: u64, hi: u64) {
        let lo = lo.max(self.t_lo);
        let hi = hi.min(self.t_hi).max(lo + 1);
        self.win_lo = lo;
        self.win_hi = hi;
    }

    /// Zoom in around a center by a factor (>1 = closer).
    pub fn zoom_factor(&mut self, center: u64, factor: f64) {
        assert!(factor > 0.0);
        let half = ((self.win_hi - self.win_lo) as f64 / (2.0 * factor)).max(1.0) as u64;
        let lo = center.saturating_sub(half);
        let hi = center + half;
        self.zoom(lo, hi);
    }

    /// Pan by a signed amount of time.
    pub fn pan(&mut self, delta: i64) {
        let w = self.win_hi - self.win_lo;
        let lo = if delta < 0 {
            self.win_lo.saturating_sub((-delta) as u64).max(self.t_lo)
        } else {
            (self.win_lo + delta as u64).min(self.t_hi.saturating_sub(w))
        };
        self.win_lo = lo;
        self.win_hi = lo + w;
    }

    /// Reset to the full trace.
    pub fn reset(&mut self) {
        self.win_lo = self.t_lo;
        self.win_hi = self.t_hi;
    }

    /// A click at time `t`: the execution markers of every process at that
    /// point — what the debugger turns into a stopline.
    pub fn click(&self, store: &TraceStore, t: u64) -> MarkerVector {
        store.markers_at_time(t)
    }

    /// A click on a specific lane: the nearest event of that rank whose
    /// span contains or precedes `t` (for source-location lookup).
    pub fn click_event(&self, store: &TraceStore, rank: Rank, t: u64) -> Option<EventId> {
        let mut best: Option<EventId> = None;
        for &id in store.by_rank(rank) {
            let rec = store.record(id);
            if rec.t_start <= t {
                best = Some(id);
            }
            if rec.t_start > t {
                break;
            }
        }
        best
    }

    /// Place the indicator (stopline) at a time.
    pub fn set_indicator(&mut self, t: u64) {
        self.indicator = Some(t);
    }

    pub fn indicator(&self) -> Option<u64> {
        self.indicator
    }

    /// Produce the windowed view model with the indicator drawn.
    pub fn render_model(&self, full: &TimelineModel) -> TimelineModel {
        let mut m = full.window(self.win_lo, self.win_hi);
        if let Some(t) = self.indicator {
            if t >= self.win_lo && t <= self.win_hi {
                m.add_stopline(t, "stopline");
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_trace::{EventKind, SiteTable, TraceRecord};

    fn store() -> TraceStore {
        let recs = vec![
            TraceRecord::basic(0u32, EventKind::Compute, 1, 0).with_span(0, 100),
            TraceRecord::basic(0u32, EventKind::Compute, 2, 100).with_span(100, 200),
            TraceRecord::basic(1u32, EventKind::Compute, 1, 0).with_span(0, 150),
        ];
        TraceStore::build(recs, SiteTable::new(), 2)
    }

    #[test]
    fn zoom_and_pan() {
        let s = store();
        let mut v = NtvView::new(&s);
        assert_eq!(v.window(), (0, 200));
        v.zoom(50, 150);
        assert_eq!(v.window(), (50, 150));
        v.pan(25);
        assert_eq!(v.window(), (75, 175));
        v.pan(-1000);
        assert_eq!(v.window(), (0, 100));
        v.reset();
        assert_eq!(v.window(), (0, 200));
    }

    #[test]
    fn zoom_factor_centers() {
        let s = store();
        let mut v = NtvView::new(&s);
        v.zoom_factor(100, 2.0);
        let (lo, hi) = v.window();
        assert!(lo >= 50 && hi <= 150, "({lo},{hi})");
    }

    #[test]
    fn click_returns_markers() {
        let s = store();
        let v = NtvView::new(&s);
        let mv = v.click(&s, 120);
        assert_eq!(mv.get(Rank(0)), 1); // compute(0..100) done by 120
        assert_eq!(mv.get(Rank(1)), 0); // compute(0..150) not yet
    }

    #[test]
    fn click_event_finds_enclosing() {
        let s = store();
        let v = NtvView::new(&s);
        let id = v.click_event(&s, Rank(0), 150).unwrap();
        assert_eq!(s.record(id).marker, 2);
        assert!(v.click_event(&s, Rank(0), 0).is_some());
    }

    #[test]
    fn indicator_appears_in_model() {
        let s = store();
        let mm = tracedbg_tracegraph::MessageMatching::build(&s);
        let full = TimelineModel::build(&s, &mm, false);
        let mut v = NtvView::new(&s);
        v.set_indicator(90);
        let m = v.render_model(&full);
        assert_eq!(m.overlays.len(), 1);
    }
}
