//! The time-space diagram view model.
//!
//! Built once from a trace; rendered by the ASCII and SVG back ends.
//! "Each construct is represented by a bar positioned according to its
//! process number and start/end times. The bar is colored depending on the
//! type of the construct. Each message is represented by a straight line
//! segment connecting (time_sent, source) and (time_received, destination)
//! points of the time-space display." (§3.1)

use tracedbg_causality::Frontier;
use tracedbg_trace::{EventId, EventKind, Marker, Rank, TraceStore};
use tracedbg_tracegraph::MessageMatching;

/// Visual classification of a bar (maps to a color / character).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BarKind {
    Compute,
    Send,
    Recv,
    /// A receive that never completed — drawn open-ended (the Figure 5
    /// blocked processes).
    BlockedRecv,
    Function,
    Collective,
    Probe,
    Lifecycle,
}

impl BarKind {
    pub fn of(kind: EventKind) -> BarKind {
        match kind {
            EventKind::Compute => BarKind::Compute,
            EventKind::Send => BarKind::Send,
            EventKind::RecvDone => BarKind::Recv,
            EventKind::RecvPost => BarKind::BlockedRecv,
            EventKind::FnEnter | EventKind::FnExit => BarKind::Function,
            EventKind::Collective(_) => BarKind::Collective,
            EventKind::Probe => BarKind::Probe,
            EventKind::ProcStart | EventKind::ProcEnd => BarKind::Lifecycle,
        }
    }

    /// ASCII fill character.
    pub fn ch(self) -> char {
        match self {
            BarKind::Compute => '=',
            BarKind::Send => 'S',
            BarKind::Recv => 'R',
            BarKind::BlockedRecv => '?',
            BarKind::Function => '-',
            BarKind::Collective => '#',
            BarKind::Probe => '*',
            BarKind::Lifecycle => '.',
        }
    }

    /// SVG fill color.
    pub fn color(self) -> &'static str {
        match self {
            BarKind::Compute => "#4c78a8",
            BarKind::Send => "#f58518",
            BarKind::Recv => "#54a24b",
            BarKind::BlockedRecv => "#e45756",
            BarKind::Function => "#b5b5b5",
            BarKind::Collective => "#72b7b2",
            BarKind::Probe => "#eeca3b",
            BarKind::Lifecycle => "#9d755d",
        }
    }
}

/// One construct bar.
#[derive(Clone, Debug)]
pub struct Bar {
    pub rank: Rank,
    pub t0: u64,
    pub t1: u64,
    pub kind: BarKind,
    pub event: EventId,
    pub label: String,
}

/// One message line.
#[derive(Clone, Debug)]
pub struct MsgLine {
    pub src: Rank,
    pub dst: Rank,
    pub t_sent: u64,
    pub t_recv: u64,
    pub tag: i32,
    pub send_event: EventId,
    pub recv_event: EventId,
}

/// Decorations drawn on top of the diagram.
#[derive(Clone, Debug)]
pub enum Overlay {
    /// A vertical stopline at a simulated time (Figures 2 and 6).
    Stopline { t: u64, label: String },
    /// A frontier polyline: one `(rank, t)` vertex per rank (Figure 8's
    /// slanted black lines).
    FrontierLine {
        points: Vec<(Rank, u64)>,
        label: String,
    },
    /// A highlighted point (the Figure 8 selection circle).
    Mark { rank: Rank, t: u64, label: String },
}

/// The complete view model.
pub struct TimelineModel {
    pub n_ranks: usize,
    pub t_min: u64,
    pub t_max: u64,
    pub bars: Vec<Bar>,
    pub messages: Vec<MsgLine>,
    pub overlays: Vec<Overlay>,
}

impl TimelineModel {
    /// Build from a trace. Function enter/exit and probes are skipped as
    /// bars by default (they are instantaneous); pass `detailed = true` to
    /// include them as ticks.
    pub fn build(store: &TraceStore, matching: &MessageMatching, detailed: bool) -> Self {
        let (t_min, t_max) = store.time_bounds();
        let mut bars = Vec::new();
        for id in store.ids() {
            let rec = store.record(id);
            let kind = match rec.kind {
                EventKind::Compute
                | EventKind::RecvDone
                | EventKind::Send
                | EventKind::Collective(_) => BarKind::of(rec.kind),
                EventKind::RecvPost => {
                    // Only blocked (never completed) posts become bars.
                    if matching.unmatched_recvs.iter().any(|u| u.post == id) {
                        BarKind::BlockedRecv
                    } else {
                        continue;
                    }
                }
                EventKind::FnEnter | EventKind::Probe if detailed => BarKind::of(rec.kind),
                _ => continue,
            };
            let label = match kind {
                BarKind::BlockedRecv => {
                    format!("P{} blocked recv (marker {})", rec.rank, rec.marker)
                }
                _ => format!("{} m{}", rec.kind.code(), rec.marker),
            };
            bars.push(Bar {
                rank: rec.rank,
                t0: rec.t_start,
                t1: rec.t_end,
                kind,
                event: id,
                label,
            });
        }
        let messages = matching
            .matched
            .iter()
            .map(|m| {
                let send = store.record(m.send);
                let recv = store.record(m.recv);
                MsgLine {
                    src: m.info.src,
                    dst: m.info.dst,
                    t_sent: send.t_end,
                    t_recv: recv.t_end,
                    tag: m.info.tag.0,
                    send_event: m.send,
                    recv_event: m.recv,
                }
            })
            .collect();
        TimelineModel {
            n_ranks: store.n_ranks(),
            t_min,
            t_max,
            bars,
            messages,
            overlays: Vec::new(),
        }
    }

    /// Add a vertical stopline overlay.
    pub fn add_stopline(&mut self, t: u64, label: impl Into<String>) {
        self.overlays.push(Overlay::Stopline {
            t,
            label: label.into(),
        });
    }

    /// Add a frontier overlay from markers: each frontier event is drawn
    /// at its completion time.
    pub fn add_frontier(
        &mut self,
        store: &TraceStore,
        frontier: &Frontier,
        label: impl Into<String>,
    ) {
        let points: Vec<(Rank, u64)> = frontier
            .iter()
            .filter_map(|m: Marker| {
                store
                    .find_marker(m)
                    .map(|id| (m.rank, store.record(id).t_end))
            })
            .collect();
        self.overlays.push(Overlay::FrontierLine {
            points,
            label: label.into(),
        });
    }

    /// Mark a selected event (the Figure 8 circle).
    pub fn add_mark(&mut self, store: &TraceStore, event: EventId, label: impl Into<String>) {
        let rec = store.record(event);
        self.overlays.push(Overlay::Mark {
            rank: rec.rank,
            t: rec.t_end,
            label: label.into(),
        });
    }

    /// Restrict to a time window (zoom): keeps bars/messages intersecting
    /// `[lo, hi]` and clamps the canvas.
    pub fn window(&self, lo: u64, hi: u64) -> TimelineModel {
        TimelineModel {
            n_ranks: self.n_ranks,
            t_min: lo,
            t_max: hi,
            bars: self
                .bars
                .iter()
                .filter(|b| b.t0 <= hi && b.t1 >= lo)
                .cloned()
                .collect(),
            messages: self
                .messages
                .iter()
                .filter(|m| m.t_sent.min(m.t_recv) <= hi && m.t_sent.max(m.t_recv) >= lo)
                .cloned()
                .collect(),
            overlays: self
                .overlays
                .iter()
                .filter(|o| match o {
                    Overlay::Stopline { t, .. } => *t >= lo && *t <= hi,
                    Overlay::Mark { t, .. } => *t >= lo && *t <= hi,
                    Overlay::FrontierLine { .. } => true,
                })
                .cloned()
                .collect(),
        }
    }

    /// Duration of the displayed window.
    pub fn span(&self) -> u64 {
        self.t_max.saturating_sub(self.t_min).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_trace::{MsgInfo, SiteTable, Tag, TraceRecord};

    fn store() -> TraceStore {
        let m = MsgInfo {
            src: Rank(0),
            dst: Rank(1),
            tag: Tag(3),
            bytes: 8,
            seq: 0,
        };
        let recs = vec![
            TraceRecord::basic(0u32, EventKind::Compute, 1, 0).with_span(0, 100),
            TraceRecord::basic(0u32, EventKind::Send, 2, 100)
                .with_span(100, 110)
                .with_msg(m),
            TraceRecord::basic(1u32, EventKind::RecvPost, 1, 50),
            TraceRecord::basic(1u32, EventKind::RecvDone, 2, 50)
                .with_span(50, 160)
                .with_msg(m),
            // a blocked recv on rank 1 at the end
            TraceRecord::basic(1u32, EventKind::RecvPost, 3, 200).with_args(0, -1),
        ];
        TraceStore::build(recs, SiteTable::new(), 2)
    }

    #[test]
    fn bars_and_messages() {
        let s = store();
        let mm = MessageMatching::build(&s);
        let tm = TimelineModel::build(&s, &mm, false);
        // compute, send, recvdone, blocked recv = 4 bars
        assert_eq!(tm.bars.len(), 4);
        assert_eq!(tm.messages.len(), 1);
        let msg = &tm.messages[0];
        assert_eq!(msg.t_sent, 110);
        assert_eq!(msg.t_recv, 160);
        assert!(tm
            .bars
            .iter()
            .any(|b| b.kind == BarKind::BlockedRecv && b.rank == Rank(1)));
        // completed post did NOT become a bar
        assert_eq!(
            tm.bars
                .iter()
                .filter(|b| b.kind == BarKind::BlockedRecv)
                .count(),
            1
        );
    }

    #[test]
    fn window_filters() {
        let s = store();
        let mm = MessageMatching::build(&s);
        let tm = TimelineModel::build(&s, &mm, false);
        let w = tm.window(0, 60);
        // compute (0..100) and recvdone (50..160) intersect; send does not
        assert_eq!(w.bars.len(), 2);
        assert_eq!(w.span(), 60);
    }

    #[test]
    fn overlays_accumulate() {
        let s = store();
        let mm = MessageMatching::build(&s);
        let mut tm = TimelineModel::build(&s, &mm, false);
        tm.add_stopline(80, "stopline");
        tm.add_mark(&s, tracedbg_trace::EventId(0), "sel");
        assert_eq!(tm.overlays.len(), 2);
        let w = tm.window(0, 50);
        // stopline at 80 outside window, mark at... compute ends 100 — out.
        assert_eq!(w.overlays.len(), 0);
    }

    #[test]
    fn barkind_mapping_total() {
        for k in EventKind::all() {
            let b = BarKind::of(k);
            let _ = b.ch();
            let _ = b.color();
        }
    }
}
