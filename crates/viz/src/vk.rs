//! The VK-style interaction model (§3.1).
//!
//! "VK, on the other hand, gives the user a window into the trace file and
//! provides an animated view of the events of execution. The user can
//! scroll through the history in both directions and change the time
//! scale."

use crate::timeline::TimelineModel;
use tracedbg_trace::TraceStore;

/// A fixed-width window that scrolls/animates over the trace.
pub struct VkView {
    t_lo: u64,
    t_hi: u64,
    /// Window start.
    pos: u64,
    /// Window width ("time scale").
    scale: u64,
}

impl VkView {
    pub fn new(store: &TraceStore, scale: u64) -> Self {
        let (t_lo, t_hi) = store.time_bounds();
        VkView {
            t_lo,
            t_hi,
            pos: t_lo,
            scale: scale.max(1),
        }
    }

    pub fn window(&self) -> (u64, u64) {
        (self.pos, (self.pos + self.scale).min(self.t_hi))
    }

    /// Change the time scale, keeping the window start.
    pub fn set_scale(&mut self, scale: u64) {
        self.scale = scale.max(1);
    }

    pub fn scale(&self) -> u64 {
        self.scale
    }

    /// Scroll forward/backward by a fraction of the window.
    pub fn scroll(&mut self, forward: bool) {
        let step = (self.scale / 2).max(1);
        if forward {
            self.pos = (self.pos + step).min(self.t_hi.saturating_sub(self.scale).max(self.t_lo));
        } else {
            self.pos = self.pos.saturating_sub(step).max(self.t_lo);
        }
    }

    /// Is the window at the end of the trace?
    pub fn at_end(&self) -> bool {
        self.pos + self.scale >= self.t_hi
    }

    /// Animate: produce the sequence of window frames from the current
    /// position to the end of the trace (the VK animation).
    pub fn animate(&mut self) -> Vec<(u64, u64)> {
        let mut frames = vec![self.window()];
        while !self.at_end() {
            self.scroll(true);
            frames.push(self.window());
        }
        frames
    }

    /// View model for the current frame.
    pub fn render_model(&self, full: &TimelineModel) -> TimelineModel {
        let (lo, hi) = self.window();
        full.window(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_trace::{EventKind, SiteTable, TraceRecord};

    fn store() -> TraceStore {
        let recs: Vec<_> = (0..10)
            .map(|i| {
                TraceRecord::basic(0u32, EventKind::Compute, i + 1, i * 100)
                    .with_span(i * 100, i * 100 + 90)
            })
            .collect();
        TraceStore::build(recs, SiteTable::new(), 1)
    }

    #[test]
    fn scroll_both_directions() {
        let s = store();
        let mut v = VkView::new(&s, 200);
        assert_eq!(v.window(), (0, 200));
        v.scroll(true);
        assert_eq!(v.window(), (100, 300));
        v.scroll(false);
        assert_eq!(v.window(), (0, 200));
        v.scroll(false); // clamped at start
        assert_eq!(v.window(), (0, 200));
    }

    #[test]
    fn animation_reaches_end() {
        let s = store();
        let mut v = VkView::new(&s, 300);
        let frames = v.animate();
        assert!(frames.len() > 2);
        assert!(v.at_end());
        let (_, hi) = *frames.last().unwrap();
        assert_eq!(hi, 990);
    }

    #[test]
    fn scale_change() {
        let s = store();
        let mut v = VkView::new(&s, 100);
        v.set_scale(500);
        assert_eq!(v.scale(), 500);
        assert_eq!(v.window(), (0, 500));
        v.set_scale(0); // clamped
        assert_eq!(v.scale(), 1);
    }

    #[test]
    fn render_model_windows() {
        let s = store();
        let mm = tracedbg_tracegraph::MessageMatching::build(&s);
        let full = TimelineModel::build(&s, &mm, false);
        let v = VkView::new(&s, 250);
        let m = v.render_model(&full);
        // computes at 0..90, 100..190, 200..290 intersect [0,250]
        assert_eq!(m.bars.len(), 3);
    }
}
