//! Engine-isolation stress: the parallel explorer drives one `mpsim`
//! engine per worker thread, so engines must share *nothing*. This test
//! runs 8 engines concurrently on separate OS threads — mixed workloads,
//! full recording — and checks every concurrent run produces exactly the
//! trace digest of its solo (single-engine) run: no cross-engine bleed,
//! no panics, no lost messages.

use tracedbg_instrument::RecorderConfig;
use tracedbg_mpsim::{Engine, EngineConfig, RankProgram};
use tracedbg_trace::trace_digest;
use tracedbg_workloads::{heat, lu, master_worker, ring};

type Factory = Box<dyn Fn() -> Vec<RankProgram> + Send + Sync>;

/// The 8-engine mix: deterministic workloads under round-robin, so each
/// has exactly one legal trace.
fn mix() -> Vec<(&'static str, Factory)> {
    vec![
        (
            "ring-a",
            Box::new(|| {
                ring::programs(&ring::RingConfig {
                    nprocs: 4,
                    rounds: 32,
                    hop_cost: 100,
                    tag_stride: 0,
                })
            }),
        ),
        (
            "ring-b",
            Box::new(|| {
                ring::programs(&ring::RingConfig {
                    nprocs: 8,
                    rounds: 16,
                    hop_cost: 50,
                    tag_stride: 0,
                })
            }),
        ),
        ("heat-a", Box::new(|| heat::programs(&Default::default()))),
        (
            "heat-b",
            Box::new(|| {
                heat::programs(&heat::HeatConfig {
                    nprocs: 2,
                    ..Default::default()
                })
            }),
        ),
        ("lu-a", Box::new(|| lu::programs(&Default::default()))),
        (
            "lu-b",
            Box::new(|| {
                lu::programs(&lu::LuConfig {
                    nprocs: 2,
                    ..Default::default()
                })
            }),
        ),
        (
            "pool-a",
            Box::new(|| master_worker::programs(&Default::default())),
        ),
        (
            "pool-b",
            Box::new(|| {
                master_worker::programs(&master_worker::PoolConfig {
                    nprocs: 3,
                    tasks: 6,
                    base_cost: 10_000,
                })
            }),
        ),
    ]
}

fn run_once(programs: Vec<RankProgram>) -> u64 {
    let mut e = Engine::launch(
        EngineConfig::with_recorder(RecorderConfig::full()),
        programs,
    );
    let outcome = e.run();
    assert!(
        outcome.is_completed(),
        "workload must complete: {outcome:?}"
    );
    trace_digest(e.trace_store().records())
}

#[test]
fn eight_concurrent_engines_stay_isolated() {
    let workloads = mix();
    assert_eq!(workloads.len(), 8);

    // Solo baselines, one engine at a time.
    let solo: Vec<u64> = workloads.iter().map(|(_, f)| run_once(f())).collect();

    // All 8 engines at once, each on its own OS thread. Repeat a few
    // times: interleaving-dependent bleed rarely shows on a single round.
    for round in 0..3 {
        let concurrent: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = workloads
                .iter()
                .map(|(name, f)| {
                    let programs = f();
                    scope.spawn(move || (*name, run_once(programs)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no engine thread may panic").1)
                .collect()
        });
        for (i, (name, _)) in workloads.iter().enumerate() {
            assert_eq!(
                concurrent[i], solo[i],
                "round {round}: engine {name} diverged from its solo digest \
                 while 7 other engines ran concurrently"
            );
        }
    }
}
