//! Built-in SDL workload scripts.
//!
//! These mirror the native workloads (`ring`, `racy`) in the script
//! dialect, so the static analysis in `crates/analysis` — which reasons
//! about script source — has first-class workloads to chew on. The engine
//! executes exactly the analyzed source, which is what makes explorer
//! sleep sets and the TDL008 divergence lint meaningful: every dynamic
//! match the engine produces must fall inside the statically computed
//! may-match relation for the same file label.

use crate::script::{parse, Script};

/// One named, built-in script workload.
#[derive(Clone, Copy, Debug)]
pub struct BuiltinScript {
    pub name: &'static str,
    pub description: &'static str,
    /// Smallest process count the pattern is meaningful at.
    pub min_procs: usize,
    pub source: &'static str,
}

impl BuiltinScript {
    /// Parse the source; built-in sources are tested, so this cannot fail.
    pub fn parse(&self) -> Script {
        parse(self.source).expect("built-in script parses")
    }

    /// The file label under which the engine records this script's sites
    /// — shared with the analysis so locations correlate.
    pub fn file(&self) -> String {
        format!("sdl:{}", self.name)
    }
}

const RING: &str = "\
# Token ring: rank 0 kicks off, everyone forwards once around.
fn main
  let nxt = ( rank + 1 ) % nprocs
  let prv = ( rank + nprocs - 1 ) % nprocs
  if rank == 0
    send nxt tag 1 0
    recv from prv tag 1 into x
  else
    recv from prv tag 1 into x
    send nxt tag 1 ( x + 1 )
  end
end
";

const PAIRS: &str = "\
# Disjoint ping-pong pairs: rank 2k <-> 2k+1. Cross-pair ranks never
# communicate, so their scheduling decisions provably commute — the
# workload sleep-set DPOR is benchmarked on.
fn main
  if ( rank % 2 ) == 0
    let partner = rank + 1
    if partner < nprocs
      loop k 0 2
        send partner tag 10 ( rank * 100 + k )
        recv from partner tag 11 into r
      end
    end
  else
    let partner = rank - 1
    loop k 0 2
      recv from partner tag 10 into v
      send partner tag 11 ( v + 1 )
    end
  end
end
";

const RACY_WILDCARD: &str = "\
# The master assumes worker 1's report lands first; nothing enforces it.
# A schedule that lets another worker go first divides by zero: the
# script analog of the native wildcard-race workload.
fn main
  if rank == 0
    recv from any tag 30 into v
    if v_src != 1
      let boom = ( 1 % 0 )
    end
    loop k 2 nprocs
      recv from any tag 30 into w
    end
  else
    compute ( ( rank - 1 ) * 200000 )
    send 0 tag 30 rank
  end
end
";

const RACY_DEADLOCK: &str = "\
# The master follows up with whoever reported first, but only worker 1
# ever sends the follow-up: any other first match orphans the directed
# receive — the script analog of the native orphan-deadlock workload.
fn main
  if rank == 0
    recv from any tag 30 into v
    recv from v_src tag 31 into w
    loop k 2 nprocs
      recv from any tag 30 into z
    end
  else
    compute ( ( rank - 1 ) * 200000 )
    send 0 tag 30 rank
    if rank == 1
      send 0 tag 31 rank
    end
  end
end
";

const BUILTINS: &[BuiltinScript] = &[
    BuiltinScript {
        name: "ring",
        description: "token ring in the script dialect; statically clean",
        min_procs: 2,
        source: RING,
    },
    BuiltinScript {
        name: "pairs",
        description: "disjoint ping-pong pairs with provably-commuting cross-pair schedules",
        min_procs: 2,
        source: PAIRS,
    },
    BuiltinScript {
        name: "racy-wildcard",
        description: "wildcard-receive race ending in a panic off the assumed match order",
        min_procs: 3,
        source: RACY_WILDCARD,
    },
    BuiltinScript {
        name: "racy-deadlock",
        description:
            "orphaned directed receive after a wildcard match: schedule-dependent deadlock",
        min_procs: 3,
        source: RACY_DEADLOCK,
    },
];

/// All built-in script workloads.
pub fn builtins() -> &'static [BuiltinScript] {
    BUILTINS
}

/// Look up a built-in script by name.
pub fn builtin(name: &str) -> Option<&'static BuiltinScript> {
    BUILTINS.iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::programs;
    use tracedbg_mpsim::{Engine, EngineConfig, RecorderConfig, SchedPolicy};

    #[test]
    fn all_builtins_parse() {
        for b in builtins() {
            let script = b.parse();
            assert!(script.functions.contains_key("main"), "{}", b.name);
        }
    }

    #[test]
    fn all_builtins_complete_under_round_robin() {
        for b in builtins() {
            for nprocs in [b.min_procs, b.min_procs + 1, b.min_procs + 2] {
                let progs = programs(&b.parse(), nprocs, &b.file());
                let mut e = Engine::launch(
                    EngineConfig {
                        policy: SchedPolicy::RoundRobin,
                        recorder: RecorderConfig::full(),
                        ..Default::default()
                    },
                    progs,
                );
                assert!(
                    e.run().is_completed(),
                    "{} did not complete at nprocs={nprocs}",
                    b.name
                );
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(builtin("pairs").is_some());
        assert!(builtin("nope").is_none());
        assert_eq!(builtin("racy-wildcard").unwrap().min_procs, 3);
    }
}
