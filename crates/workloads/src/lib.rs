//! Target programs for the trace-driven debugger.
//!
//! These are the programs the paper's evaluation runs:
//!
//! * [`strassen`] — the distributed Strassen matrix multiply that is the
//!   running example of §3–§4 (Figures 3–7, 9), in a correct variant and
//!   the paper's buggy variant (`jres` where `jres+1` was meant, the
//!   "line 161" bug of Figure 7);
//! * [`fib`] — the recursive Fibonacci used as the worst-case
//!   instrumentation-overhead driver of Table 1;
//! * [`lu`] — a wavefront pipeline modeled on the NAS LU benchmark's
//!   communication structure (Figure 8);
//! * [`ring`], [`master_worker`] — additional stress/demo generators:
//!   a token ring, and a wildcard-receive master/worker pattern that
//!   exercises nondeterminism control and race detection;
//! * [`racy`] — intentionally schedule-sensitive patterns (wildcard race,
//!   orphaned receive) that `tracedbg explore` is expected to break.

pub mod fib;
pub mod heat;
pub mod lu;
pub mod master_worker;
pub mod matrix;
pub mod planted;
pub mod racy;
pub mod random_comm;
pub mod ring;
pub mod script;
pub mod scripts;
pub mod strassen;
pub mod wide;

pub use matrix::Matrix;
pub use racy::RacyConfig;
pub use script::{InstrumentLevel, Script};
pub use strassen::Variant;
