//! The distributed Strassen matrix multiplication of §3–§4.
//!
//! "A trace of Strassen's matrix multiplication running on 8 processes.
//! Process 0 (at the bottom) distributes pairs of submatrices among the
//! other processes (each send is shown as a separate message). Then
//! process 0 receives 7 partial results and combines them into the final
//! result." (Figure 3)
//!
//! The seven Strassen products M1..M7 are distributed round-robin over the
//! worker ranks (all seven to workers 1..7 in the 8-process runs of the
//! figures). [`Variant::JresBug`] plants the paper's bug: in `MatrSend`'s
//! loop the destination of the second submatrix of each pair is `jres`
//! where `jres+1` was meant ("the user will find that jres should be
//! replaced by jres+1 in line 161", Figure 7) — which starves the last
//! worker of one message and deadlocks ranks 0 and 7 against each other
//! (Figures 5 and 6). Task-backed ([`RankProgram::task`]): the in-flight
//! matrices live in the task state, so a checkpoint mid-distribution
//! carries them by clone.

use crate::matrix::Matrix;
use tracedbg_mpsim::task::TaskOp;
use tracedbg_mpsim::{Payload, Prog, Rank, RankProgram, SendMode, SiteId, Tag};

/// Message tags.
pub const TAG_A: Tag = Tag(1);
pub const TAG_B: Tag = Tag(2);
/// Result of product `i` travels with tag `TAG_RESULT_BASE + i`.
pub const TAG_RESULT_BASE: i32 = 100;

/// Which version of the program to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Variant {
    Correct,
    /// The "line 161" bug: the second send of each pair goes to `jres`
    /// instead of `jres+1`.
    JresBug,
}

/// Distributed-run parameters.
#[derive(Clone, Debug)]
pub struct StrassenConfig {
    /// Matrix dimension (even).
    pub n: usize,
    /// Total processes (master + workers), ≥ 2.
    pub nprocs: usize,
    pub variant: Variant,
    pub seed: u64,
    /// Strassen recursion cutoff for the workers' local multiplies.
    pub cutoff: usize,
}

impl StrassenConfig {
    pub fn figures(variant: Variant) -> Self {
        StrassenConfig {
            n: 32,
            nprocs: 8,
            variant,
            seed: 42,
            cutoff: 8,
        }
    }
}

/// Worker that computes product `i` (1-based).
fn worker_of(i: usize, nworkers: usize) -> usize {
    (i - 1) % nworkers + 1
}

/// The seven Strassen operand pairs of `A × B`.
pub fn operands(a: &Matrix, b: &Matrix) -> Vec<(Matrix, Matrix)> {
    let (a11, a12, a21, a22) = a.quadrants();
    let (b11, b12, b21, b22) = b.quadrants();
    vec![
        (a11.add(&a22), b11.add(&b22)),
        (a21.add(&a22), b11.clone()),
        (a11.clone(), b12.sub(&b22)),
        (a22.clone(), b21.sub(&b11)),
        (a11.add(&a12), b22.clone()),
        (a21.sub(&a11), b11.add(&b12)),
        (a12.sub(&a22), b21.add(&b22)),
    ]
}

/// Combine M1..M7 into the product matrix.
pub fn combine(m: &[Matrix]) -> Matrix {
    assert_eq!(m.len(), 7);
    let c11 = m[0].add(&m[3]).sub(&m[4]).add(&m[6]);
    let c12 = m[2].add(&m[4]);
    let c21 = m[1].add(&m[3]);
    let c22 = m[0].sub(&m[1]).add(&m[2]).add(&m[5]);
    Matrix::from_quadrants(&c11, &c12, &c21, &c22)
}

/// The reference result (naive sequential multiply of the same seeded
/// inputs).
pub fn expected(cfg: &StrassenConfig) -> Matrix {
    let a = Matrix::random(cfg.n, cfg.n, cfg.seed);
    let b = Matrix::random(cfg.n, cfg.n, cfg.seed + 1);
    a.mul_naive(&b)
}

fn matrix_of(m: tracedbg_mpsim::OpResult, h: usize) -> Matrix {
    Matrix::from_vec(h, h, m.message().payload.to_f64s().expect("f64 payload"))
}

/// Master task state (rank 0): the operand pairs awaiting distribution,
/// the partial results collected so far, and the interned sites.
#[derive(Clone)]
struct MasterState {
    cfg: StrassenConfig,
    master_site: SiteId,
    send_a_site: SiteId,
    send_b_site: SiteId,
    recv_site: SiteId,
    send_fn_site: SiteId,
    recv_fn_site: SiteId,
    ops: Vec<(Matrix, Matrix)>,
    results: Vec<Matrix>,
    /// Loop cursor: 0-based pair index during distribution, 1-based
    /// product number during collection.
    ix: i64,
    b_dest: i64,
}

/// The master process (rank 0).
fn master_prog() -> Prog<MasterState> {
    Prog::seq(vec![
        Prog::act(|s: &mut MasterState, v| {
            s.master_site = v.site("strassen.c", 120, "StrassenMaster");
            s.send_a_site = v.site("strassen.c", 158, "MatrSend");
            // Line 161: the send whose destination expression is wrong in
            // the buggy variant.
            s.send_b_site = v.site("strassen.c", 161, "MatrSend");
            s.recv_site = v.site("strassen.c", 190, "MatrRecv");
        }),
        Prog::scope(
            |s: &mut MasterState, _| (s.master_site, [s.cfg.n as i64, s.cfg.nprocs as i64]),
            Prog::seq(vec![
                // Simulated cost of forming the operand combinations.
                Prog::op(|s: &mut MasterState, _| {
                    let a = Matrix::random(s.cfg.n, s.cfg.n, s.cfg.seed);
                    let b = Matrix::random(s.cfg.n, s.cfg.n, s.cfg.seed + 1);
                    s.ops = operands(&a, &b);
                    TaskOp::Compute {
                        cost_ns: (s.cfg.n * s.cfg.n) as u64,
                        site: s.master_site,
                    }
                }),
                // MatrSend: distribute pairs of submatrices (Figure 3's
                // fan of separate sends).
                Prog::act(|s: &mut MasterState, v| {
                    s.send_fn_site = v.site("strassen.c", 150, "MatrSend");
                }),
                Prog::scope(
                    |s: &mut MasterState, _| (s.send_fn_site, [(s.cfg.nprocs - 1) as i64, 0]),
                    Prog::for_range(
                        |_: &MasterState, _| (0, 7),
                        |s: &mut MasterState, ix| s.ix = ix,
                        Prog::seq(vec![
                            Prog::op(|s: &mut MasterState, _| {
                                let i = s.ix as usize + 1; // product number, 1-based
                                let jres = worker_of(i, s.cfg.nprocs - 1);
                                TaskOp::Send {
                                    dst: Rank(jres as u32),
                                    tag: TAG_A,
                                    payload: Payload::from_f64s(&s.ops[s.ix as usize].0.to_vec()),
                                    site: s.send_a_site,
                                    mode: SendMode::Buffered,
                                }
                            }),
                            Prog::op(|s: &mut MasterState, _| {
                                let i = s.ix as usize + 1;
                                // The loop variable of the paper.
                                let jres = worker_of(i, s.cfg.nprocs - 1);
                                s.b_dest = match s.cfg.variant {
                                    Variant::Correct => jres as i64,
                                    // The bug: `jres` where `jres+1` was
                                    // meant. With the paper's 0-based loop
                                    // the wrong expression addresses the
                                    // previous rank.
                                    Variant::JresBug => jres as i64 - 1,
                                };
                                TaskOp::Probe {
                                    label: "jres".into(),
                                    value: s.b_dest,
                                    site: s.send_b_site,
                                }
                            }),
                            Prog::op(|s: &mut MasterState, _| TaskOp::Send {
                                dst: Rank(s.b_dest as u32),
                                tag: TAG_B,
                                payload: Payload::from_f64s(&s.ops[s.ix as usize].1.to_vec()),
                                site: s.send_b_site,
                                mode: SendMode::Buffered,
                            }),
                        ]),
                    ),
                ),
                // MatrRecv: collect the seven partial results and combine.
                Prog::act(|s: &mut MasterState, v| {
                    s.recv_fn_site = v.site("strassen.c", 185, "MatrRecv");
                }),
                Prog::scope(
                    |s: &mut MasterState, _| (s.recv_fn_site, [7, 0]),
                    Prog::for_range(
                        |_: &MasterState, _| (1, 8),
                        |s: &mut MasterState, i| s.ix = i,
                        Prog::op_bind(
                            |s: &mut MasterState, _| TaskOp::Recv {
                                src: Some(Rank(worker_of(s.ix as usize, s.cfg.nprocs - 1) as u32)),
                                tag: Some(Tag(TAG_RESULT_BASE + s.ix as i32)),
                                site: s.recv_site,
                            },
                            |s, m, _| {
                                let h = s.cfg.n / 2;
                                s.results.push(matrix_of(m, h));
                            },
                        ),
                    ),
                ),
                Prog::op(|s: &mut MasterState, _| TaskOp::Compute {
                    cost_ns: (s.cfg.n * s.cfg.n) as u64,
                    site: s.master_site,
                }),
                // Verification probe: max |C - A·B| in nano-units.
                Prog::op(|s: &mut MasterState, _| {
                    let c = combine(&s.results);
                    let err = c.max_diff(&expected(&s.cfg));
                    TaskOp::Probe {
                        label: "maxerr_e9".into(),
                        value: (err * 1e9) as i64,
                        site: s.master_site,
                    }
                }),
            ]),
        ),
    ])
}

/// Worker task state (ranks 1..nprocs).
#[derive(Clone)]
struct WorkerState {
    cfg: StrassenConfig,
    rank: usize,
    worker_site: SiteId,
    mult_site: SiteId,
    my_products: Vec<usize>,
    k: i64,
    x: Matrix,
    y: Matrix,
    m: Matrix,
}

impl WorkerState {
    fn product(&self) -> usize {
        self.my_products[self.k as usize]
    }
}

/// A worker process.
fn worker_prog() -> Prog<WorkerState> {
    Prog::seq(vec![
        Prog::act(|s: &mut WorkerState, v| {
            s.worker_site = v.site("strassen.c", 220, "StrassenWorker");
            s.mult_site = v.site("strassen.c", 240, "MatrMult");
        }),
        Prog::scope(
            |s: &mut WorkerState, _| (s.worker_site, [s.rank as i64, 0]),
            Prog::seq(vec![
                Prog::act(|s: &mut WorkerState, _| {
                    s.my_products = (1..=7)
                        .filter(|&i| worker_of(i, s.cfg.nprocs - 1) == s.rank)
                        .collect();
                }),
                Prog::for_range(
                    |s: &WorkerState, _| (0, s.my_products.len() as i64),
                    |s: &mut WorkerState, k| s.k = k,
                    Prog::seq(vec![
                        Prog::op_bind(
                            |s: &mut WorkerState, _| TaskOp::Recv {
                                src: Some(Rank(0)),
                                tag: Some(TAG_A),
                                site: s.worker_site,
                            },
                            |s, m, _| s.x = matrix_of(m, s.cfg.n / 2),
                        ),
                        Prog::op_bind(
                            |s: &mut WorkerState, _| TaskOp::Recv {
                                src: Some(Rank(0)),
                                tag: Some(TAG_B),
                                site: s.worker_site,
                            },
                            |s, m, _| s.y = matrix_of(m, s.cfg.n / 2),
                        ),
                        Prog::scope(
                            |s: &mut WorkerState, _| {
                                (s.mult_site, [s.product() as i64, (s.cfg.n / 2) as i64])
                            },
                            // Simulated cost of the block multiply
                            // (~2·h³ flops).
                            Prog::op(|s: &mut WorkerState, _| {
                                s.m = s.x.mul_strassen(&s.y, s.cfg.cutoff);
                                let h = s.cfg.n / 2;
                                TaskOp::Compute {
                                    cost_ns: 2 * (h * h * h) as u64,
                                    site: s.mult_site,
                                }
                            }),
                        ),
                        Prog::op(|s: &mut WorkerState, _| TaskOp::Send {
                            dst: Rank(0),
                            tag: Tag(TAG_RESULT_BASE + s.product() as i32),
                            payload: Payload::from_f64s(&s.m.to_vec()),
                            site: s.worker_site,
                            mode: SendMode::Buffered,
                        }),
                    ]),
                ),
            ]),
        ),
    ])
}

/// Build the program vector for an engine launch.
pub fn programs(cfg: &StrassenConfig) -> Vec<RankProgram> {
    assert!(cfg.nprocs >= 2, "need a master and at least one worker");
    assert!(cfg.n % 2 == 0, "matrix dimension must be even");
    let mut progs: Vec<RankProgram> = Vec::with_capacity(cfg.nprocs);
    progs.push(RankProgram::task(
        MasterState {
            cfg: cfg.clone(),
            master_site: SiteId(0),
            send_a_site: SiteId(0),
            send_b_site: SiteId(0),
            recv_site: SiteId(0),
            send_fn_site: SiteId(0),
            recv_fn_site: SiteId(0),
            ops: Vec::new(),
            results: Vec::new(),
            ix: 0,
            b_dest: 0,
        },
        master_prog(),
    ));
    let worker = worker_prog();
    for r in 1..cfg.nprocs {
        progs.push(RankProgram::task(
            WorkerState {
                cfg: cfg.clone(),
                rank: r,
                worker_site: SiteId(0),
                mult_site: SiteId(0),
                my_products: Vec::new(),
                k: 0,
                x: Matrix::zeros(0, 0),
                y: Matrix::zeros(0, 0),
                m: Matrix::zeros(0, 0),
            },
            worker.clone(),
        ));
    }
    progs
}

/// A reusable factory (for debugger sessions, which re-execute).
pub fn factory(cfg: StrassenConfig) -> impl Fn() -> Vec<RankProgram> + Send + Sync {
    move || programs(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_mpsim::{Engine, EngineConfig, RecorderConfig, RunOutcome};
    use tracedbg_trace::EventKind;

    fn run(cfg: &StrassenConfig) -> (Engine, RunOutcome) {
        let mut e = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::full()),
            programs(cfg),
        );
        let out = e.run();
        (e, out)
    }

    #[test]
    fn correct_8proc_computes_the_product() {
        let cfg = StrassenConfig::figures(Variant::Correct);
        let (mut e, out) = run(&cfg);
        assert!(out.is_completed(), "{out:?}");
        let store = e.trace_store();
        // The verification probe must report (near) zero error.
        let err = store
            .records()
            .iter()
            .find(|r| r.label.as_deref() == Some("maxerr_e9"))
            .map(|r| r.args[0])
            .expect("maxerr probe present");
        assert!(err < 1000, "max error {err} nano-units");
        // Figure 3 shape: 14 distribution sends + 7 result sends.
        assert_eq!(store.of_kind(EventKind::Send).len(), 21);
        assert_eq!(store.of_kind(EventKind::RecvDone).len(), 21);
    }

    #[test]
    fn buggy_8proc_deadlocks_ranks_0_and_7() {
        let cfg = StrassenConfig::figures(Variant::JresBug);
        let (_e, out) = run(&cfg);
        match out {
            RunOutcome::Deadlock(rep) => {
                assert!(rep.is_cyclic());
                assert_eq!(rep.cycle, vec![Rank(0), Rank(7)]);
            }
            other => panic!("expected the Figure 5 deadlock, got {other:?}"),
        }
    }

    #[test]
    fn buggy_run_has_figure6_receive_counts() {
        let cfg = StrassenConfig::figures(Variant::JresBug);
        let (mut e, _) = run(&cfg);
        let store = e.trace_store();
        let mut counts = [0usize; 8];
        for r in store.records() {
            if r.kind == EventKind::RecvDone && r.rank.0 >= 1 {
                counts[r.rank.ix()] += 1;
            }
        }
        // "processes 1-6 each receive 2 messages and process 7 only
        // receives 1"
        assert_eq!(&counts[1..7], &[2, 2, 2, 2, 2, 2]);
        assert_eq!(counts[7], 1);
    }

    #[test]
    fn correct_4proc_round_robin() {
        let cfg = StrassenConfig {
            n: 16,
            nprocs: 4,
            variant: Variant::Correct,
            seed: 7,
            cutoff: 4,
        };
        let (mut e, out) = run(&cfg);
        assert!(out.is_completed(), "{out:?}");
        let store = e.trace_store();
        let err = store
            .records()
            .iter()
            .find(|r| r.label.as_deref() == Some("maxerr_e9"))
            .map(|r| r.args[0])
            .unwrap();
        assert!(err < 1000, "{err}");
    }

    #[test]
    fn operand_combination_is_strassen() {
        let a = Matrix::random(8, 8, 1);
        let b = Matrix::random(8, 8, 2);
        let ms: Vec<Matrix> = operands(&a, &b)
            .iter()
            .map(|(x, y)| x.mul_naive(y))
            .collect();
        let c = combine(&ms);
        assert!(c.max_diff(&a.mul_naive(&b)) < 1e-9);
    }

    #[test]
    fn worker_assignment_round_robin() {
        assert_eq!(worker_of(1, 7), 1);
        assert_eq!(worker_of(7, 7), 7);
        assert_eq!(worker_of(1, 3), 1);
        assert_eq!(worker_of(4, 3), 1);
        assert_eq!(worker_of(7, 3), 1);
        assert_eq!(worker_of(5, 3), 2);
    }
}
