//! The distributed Strassen matrix multiplication of §3–§4.
//!
//! "A trace of Strassen's matrix multiplication running on 8 processes.
//! Process 0 (at the bottom) distributes pairs of submatrices among the
//! other processes (each send is shown as a separate message). Then
//! process 0 receives 7 partial results and combines them into the final
//! result." (Figure 3)
//!
//! The seven Strassen products M1..M7 are distributed round-robin over the
//! worker ranks (all seven to workers 1..7 in the 8-process runs of the
//! figures). [`Variant::JresBug`] plants the paper's bug: in `MatrSend`'s
//! loop the destination of the second submatrix of each pair is `jres`
//! where `jres+1` was meant ("the user will find that jres should be
//! replaced by jres+1 in line 161", Figure 7) — which starves the last
//! worker of one message and deadlocks ranks 0 and 7 against each other
//! (Figures 5 and 6).

use crate::matrix::Matrix;
use tracedbg_mpsim::{Payload, ProcessCtx, ProgramFn, Rank, Tag};

/// Message tags.
pub const TAG_A: Tag = Tag(1);
pub const TAG_B: Tag = Tag(2);
/// Result of product `i` travels with tag `TAG_RESULT_BASE + i`.
pub const TAG_RESULT_BASE: i32 = 100;

/// Which version of the program to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Variant {
    Correct,
    /// The "line 161" bug: the second send of each pair goes to `jres`
    /// instead of `jres+1`.
    JresBug,
}

/// Distributed-run parameters.
#[derive(Clone, Debug)]
pub struct StrassenConfig {
    /// Matrix dimension (even).
    pub n: usize,
    /// Total processes (master + workers), ≥ 2.
    pub nprocs: usize,
    pub variant: Variant,
    pub seed: u64,
    /// Strassen recursion cutoff for the workers' local multiplies.
    pub cutoff: usize,
}

impl StrassenConfig {
    pub fn figures(variant: Variant) -> Self {
        StrassenConfig {
            n: 32,
            nprocs: 8,
            variant,
            seed: 42,
            cutoff: 8,
        }
    }
}

/// Worker that computes product `i` (1-based).
fn worker_of(i: usize, nworkers: usize) -> usize {
    (i - 1) % nworkers + 1
}

/// The seven Strassen operand pairs of `A × B`.
pub fn operands(a: &Matrix, b: &Matrix) -> Vec<(Matrix, Matrix)> {
    let (a11, a12, a21, a22) = a.quadrants();
    let (b11, b12, b21, b22) = b.quadrants();
    vec![
        (a11.add(&a22), b11.add(&b22)),
        (a21.add(&a22), b11.clone()),
        (a11.clone(), b12.sub(&b22)),
        (a22.clone(), b21.sub(&b11)),
        (a11.add(&a12), b22.clone()),
        (a21.sub(&a11), b11.add(&b12)),
        (a12.sub(&a22), b21.add(&b22)),
    ]
}

/// Combine M1..M7 into the product matrix.
pub fn combine(m: &[Matrix]) -> Matrix {
    assert_eq!(m.len(), 7);
    let c11 = m[0].add(&m[3]).sub(&m[4]).add(&m[6]);
    let c12 = m[2].add(&m[4]);
    let c21 = m[1].add(&m[3]);
    let c22 = m[0].sub(&m[1]).add(&m[2]).add(&m[5]);
    Matrix::from_quadrants(&c11, &c12, &c21, &c22)
}

/// The reference result (naive sequential multiply of the same seeded
/// inputs).
pub fn expected(cfg: &StrassenConfig) -> Matrix {
    let a = Matrix::random(cfg.n, cfg.n, cfg.seed);
    let b = Matrix::random(cfg.n, cfg.n, cfg.seed + 1);
    a.mul_naive(&b)
}

fn send_matrix(
    ctx: &mut ProcessCtx,
    dst: Rank,
    tag: Tag,
    m: &Matrix,
    site: tracedbg_trace::SiteId,
) {
    ctx.send(dst, tag, Payload::from_f64s(&m.to_vec()), site);
}

fn recv_matrix(
    ctx: &mut ProcessCtx,
    src: Rank,
    tag: Tag,
    rows: usize,
    cols: usize,
    site: tracedbg_trace::SiteId,
) -> Matrix {
    let msg = ctx.recv_from(src, tag, site);
    Matrix::from_vec(rows, cols, msg.payload.to_f64s().expect("f64 payload"))
}

/// The master process (rank 0).
fn master(ctx: &mut ProcessCtx, cfg: &StrassenConfig) {
    let nworkers = cfg.nprocs - 1;
    let h = cfg.n / 2;
    let master_site = ctx.site("strassen.c", 120, "StrassenMaster");
    let send_a_site = ctx.site("strassen.c", 158, "MatrSend");
    // Line 161: the send whose destination expression is wrong in the
    // buggy variant.
    let send_b_site = ctx.site("strassen.c", 161, "MatrSend");
    let recv_site = ctx.site("strassen.c", 190, "MatrRecv");
    let cfg2 = cfg.clone();
    ctx.scope(master_site, [cfg.n as i64, cfg.nprocs as i64], move |ctx| {
        let a = Matrix::random(cfg2.n, cfg2.n, cfg2.seed);
        let b = Matrix::random(cfg2.n, cfg2.n, cfg2.seed + 1);
        // Simulated cost of forming the operand combinations.
        ctx.compute((cfg2.n * cfg2.n) as u64, master_site);
        let ops = operands(&a, &b);

        // MatrSend: distribute pairs of submatrices (Figure 3's fan of
        // separate sends).
        let send_fn_site = ctx.site("strassen.c", 150, "MatrSend");
        ctx.scope(send_fn_site, [nworkers as i64, 0], |ctx| {
            for (ix, (x, y)) in ops.iter().enumerate() {
                let i = ix + 1; // product number, 1-based
                let jres = worker_of(i, nworkers); // loop variable of the paper
                send_matrix(ctx, Rank(jres as u32), TAG_A, x, send_a_site);
                let b_dest = match cfg2.variant {
                    Variant::Correct => jres,
                    // The bug: `jres` where `jres+1` was meant. With the
                    // paper's 0-based loop the wrong expression addresses
                    // the previous rank.
                    Variant::JresBug => jres - 1,
                };
                ctx.probe("jres", b_dest as i64, send_b_site);
                send_matrix(ctx, Rank(b_dest as u32), TAG_B, y, send_b_site);
            }
        });

        // MatrRecv: collect the seven partial results and combine.
        let recv_fn_site = ctx.site("strassen.c", 185, "MatrRecv");
        let results: Vec<Matrix> = ctx.scope(recv_fn_site, [7, 0], |ctx| {
            (1..=7)
                .map(|i| {
                    let w = worker_of(i, nworkers);
                    recv_matrix(
                        ctx,
                        Rank(w as u32),
                        Tag(TAG_RESULT_BASE + i as i32),
                        h,
                        h,
                        recv_site,
                    )
                })
                .collect()
        });
        ctx.compute((cfg2.n * cfg2.n) as u64, master_site);
        let c = combine(&results);
        let err = c.max_diff(&expected(&cfg2));
        // Verification probe: max |C - A·B| in nano-units.
        ctx.probe("maxerr_e9", (err * 1e9) as i64, master_site);
    });
}

/// A worker process (ranks 1..nprocs).
fn worker(ctx: &mut ProcessCtx, cfg: &StrassenConfig, rank: usize) {
    let nworkers = cfg.nprocs - 1;
    let h = cfg.n / 2;
    let worker_site = ctx.site("strassen.c", 220, "StrassenWorker");
    let mult_site = ctx.site("strassen.c", 240, "MatrMult");
    let cfg2 = cfg.clone();
    ctx.scope(worker_site, [rank as i64, 0], move |ctx| {
        let my_products: Vec<usize> = (1..=7)
            .filter(|&i| worker_of(i, nworkers) == rank)
            .collect();
        for i in my_products {
            let x = recv_matrix(ctx, Rank(0), TAG_A, h, h, worker_site);
            let y = recv_matrix(ctx, Rank(0), TAG_B, h, h, worker_site);
            let m = ctx.scope(mult_site, [i as i64, h as i64], |ctx| {
                let m = x.mul_strassen(&y, cfg2.cutoff);
                // Simulated cost of the block multiply (~2·h³ flops).
                ctx.compute(2 * (h * h * h) as u64, mult_site);
                m
            });
            send_matrix(
                ctx,
                Rank(0),
                Tag(TAG_RESULT_BASE + i as i32),
                &m,
                worker_site,
            );
        }
    });
}

/// Build the program vector for an engine launch.
pub fn programs(cfg: &StrassenConfig) -> Vec<ProgramFn> {
    assert!(cfg.nprocs >= 2, "need a master and at least one worker");
    assert!(cfg.n % 2 == 0, "matrix dimension must be even");
    let mut progs: Vec<ProgramFn> = Vec::with_capacity(cfg.nprocs);
    let c0 = cfg.clone();
    progs.push(Box::new(move |ctx| master(ctx, &c0)));
    for r in 1..cfg.nprocs {
        let c = cfg.clone();
        progs.push(Box::new(move |ctx| worker(ctx, &c, r)));
    }
    progs
}

/// A reusable factory (for debugger sessions, which re-execute).
pub fn factory(cfg: StrassenConfig) -> impl Fn() -> Vec<ProgramFn> + Send + Sync {
    move || programs(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_mpsim::{Engine, EngineConfig, RecorderConfig, RunOutcome};
    use tracedbg_trace::EventKind;

    fn run(cfg: &StrassenConfig) -> (Engine, RunOutcome) {
        let mut e = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::full()),
            programs(cfg),
        );
        let out = e.run();
        (e, out)
    }

    #[test]
    fn correct_8proc_computes_the_product() {
        let cfg = StrassenConfig::figures(Variant::Correct);
        let (mut e, out) = run(&cfg);
        assert!(out.is_completed(), "{out:?}");
        let store = e.trace_store();
        // The verification probe must report (near) zero error.
        let err = store
            .records()
            .iter()
            .find(|r| r.label.as_deref() == Some("maxerr_e9"))
            .map(|r| r.args[0])
            .expect("maxerr probe present");
        assert!(err < 1000, "max error {err} nano-units");
        // Figure 3 shape: 14 distribution sends + 7 result sends.
        assert_eq!(store.of_kind(EventKind::Send).len(), 21);
        assert_eq!(store.of_kind(EventKind::RecvDone).len(), 21);
    }

    #[test]
    fn buggy_8proc_deadlocks_ranks_0_and_7() {
        let cfg = StrassenConfig::figures(Variant::JresBug);
        let (_e, out) = run(&cfg);
        match out {
            RunOutcome::Deadlock(rep) => {
                assert!(rep.is_cyclic());
                assert_eq!(rep.cycle, vec![Rank(0), Rank(7)]);
            }
            other => panic!("expected the Figure 5 deadlock, got {other:?}"),
        }
    }

    #[test]
    fn buggy_run_has_figure6_receive_counts() {
        let cfg = StrassenConfig::figures(Variant::JresBug);
        let (mut e, _) = run(&cfg);
        let store = e.trace_store();
        let mut counts = [0usize; 8];
        for r in store.records() {
            if r.kind == EventKind::RecvDone && r.rank.0 >= 1 {
                counts[r.rank.ix()] += 1;
            }
        }
        // "processes 1-6 each receive 2 messages and process 7 only
        // receives 1"
        assert_eq!(&counts[1..7], &[2, 2, 2, 2, 2, 2]);
        assert_eq!(counts[7], 1);
    }

    #[test]
    fn correct_4proc_round_robin() {
        let cfg = StrassenConfig {
            n: 16,
            nprocs: 4,
            variant: Variant::Correct,
            seed: 7,
            cutoff: 4,
        };
        let (mut e, out) = run(&cfg);
        assert!(out.is_completed(), "{out:?}");
        let store = e.trace_store();
        let err = store
            .records()
            .iter()
            .find(|r| r.label.as_deref() == Some("maxerr_e9"))
            .map(|r| r.args[0])
            .unwrap();
        assert!(err < 1000, "{err}");
    }

    #[test]
    fn operand_combination_is_strassen() {
        let a = Matrix::random(8, 8, 1);
        let b = Matrix::random(8, 8, 2);
        let ms: Vec<Matrix> = operands(&a, &b)
            .iter()
            .map(|(x, y)| x.mul_naive(y))
            .collect();
        let c = combine(&ms);
        assert!(c.max_diff(&a.mul_naive(&b)) < 1e-9);
    }

    #[test]
    fn worker_assignment_round_robin() {
        assert_eq!(worker_of(1, 7), 1);
        assert_eq!(worker_of(7, 7), 7);
        assert_eq!(worker_of(1, 3), 1);
        assert_eq!(worker_of(4, 3), 1);
        assert_eq!(worker_of(7, 3), 1);
        assert_eq!(worker_of(5, 3), 2);
    }
}
