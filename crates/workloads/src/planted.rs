//! Planted-bug corpus for the fault-localization plane.
//!
//! Each workload hides a schedule- or delay-dependent bug in ONE known
//! rank (`PlantedConfig::bug_rank`), completes cleanly under the
//! deterministic round-robin baseline, and fails when the schedule (or an
//! injected delay) exposes the planted rank's faulty behavior. That makes
//! them ground truth for `tracedbg localize`: the localizer must rank the
//! planted rank at (or near) the top, and the accuracy tests in
//! `crates/localize/tests/known_bugs.rs` pin exactly that.
//!
//! * [`planted_wildcard`] — the master treats whichever worker reports
//!   first as the "leader"; the planted rank's report is poison in that
//!   role. Any schedule that lets the planted rank's send land first
//!   panics the master — the racy-wildcard shape with a parameterized
//!   culprit.
//! * [`planted_orphan`] — after the first report the master requests an
//!   acknowledgment from the reporting worker. The planted rank's reply
//!   code is missing (it swallows the request), so a schedule where it
//!   reports first orphans the master's directed receive: a non-cyclic
//!   deadlock awaiting exactly the planted rank.
//! * [`planted_pipeline`] — a fan-in merge pipeline whose planted stage
//!   merges its producers' streams with a full wildcard instead of
//!   alternating directed receives. The merged order is then arrival
//!   order; one delayed producer message reorders the stream and the
//!   sink's ordering assertion fires ranks away from where the bug lives
//!   — a delay-sensitive bug with a clean baseline.

use tracedbg_mpsim::{Payload, ProcessCtx, ProgramFn, Rank, Tag};

pub const TAG_DATA: Tag = Tag(40);
pub const TAG_REQ: Tag = Tag(42);
pub const TAG_ACK: Tag = Tag(43);

/// Data tokens each pipeline producer emits.
pub const PIPELINE_TOKENS: u64 = 4;

/// Parameters for the planted-bug patterns.
#[derive(Clone, Copy, Debug)]
pub struct PlantedConfig {
    /// Total processes; at least 4 (master/source + 3 others).
    pub nprocs: usize,
    /// The rank carrying the planted bug. Must be a worker (1..nprocs);
    /// for the pipeline it must be an interior stage (1..nprocs-1).
    pub bug_rank: u32,
    /// Simulated work (ns) the fast worker does; slower ranks do four
    /// times as much, which is why the baseline schedule stays clean.
    pub work: u64,
}

impl Default for PlantedConfig {
    fn default() -> Self {
        PlantedConfig {
            nprocs: 4,
            bug_rank: 2,
            work: 50_000,
        }
    }
}

impl PlantedConfig {
    fn check(&self) {
        assert!(self.nprocs >= 4, "planted patterns need 4+ processes");
        assert!(
            (1..self.nprocs as u32).contains(&self.bug_rank),
            "bug_rank must be a worker rank"
        );
    }
}

fn reporting_worker(ctx: &mut ProcessCtx, cfg: PlantedConfig, rank: usize) {
    let site = ctx.site("planted.c", 40, "worker");
    let slow = if rank == 1 { 1 } else { 4 };
    ctx.compute(cfg.work * slow, site);
    ctx.send(Rank(0), TAG_DATA, Payload::from_i64(rank as i64), site);
}

/// Wildcard leader election with a poison candidate: panics at the master
/// whenever the planted rank's report is matched first.
pub fn planted_wildcard(cfg: &PlantedConfig) -> Vec<ProgramFn> {
    cfg.check();
    let c = *cfg;
    let master: ProgramFn = Box::new(move |ctx| {
        let site = ctx.site("planted.c", 10, "master");
        let first = ctx.recv_any(Some(TAG_DATA), site);
        ctx.probe("leader", first.src.0 as i64, site);
        // The planted bug lives in `bug_rank`: its report is unusable as
        // a leader, but nothing stops it from arriving first.
        assert_ne!(
            first.src,
            Rank(c.bug_rank),
            "rank {} elected leader with a poison report",
            c.bug_rank
        );
        for _ in 0..c.nprocs - 2 {
            let _ = ctx.recv_any(Some(TAG_DATA), site);
        }
    });
    let mut progs = vec![master];
    for r in 1..c.nprocs {
        progs.push(Box::new(move |ctx: &mut ProcessCtx| reporting_worker(ctx, c, r)) as ProgramFn);
    }
    progs
}

/// A reusable factory for sessions, the explorer, and the localizer.
pub fn planted_wildcard_factory(cfg: PlantedConfig) -> impl Fn() -> Vec<ProgramFn> + Send + Sync {
    move || planted_wildcard(&cfg)
}

/// Request/acknowledge handshake where the planted rank never replies:
/// deadlocks (orphaned directed receive) whenever it reports first.
pub fn planted_orphan(cfg: &PlantedConfig) -> Vec<ProgramFn> {
    cfg.check();
    let c = *cfg;
    let master: ProgramFn = Box::new(move |ctx| {
        let site = ctx.site("planted.c", 20, "master");
        let first = ctx.recv_any(Some(TAG_DATA), site);
        ctx.probe("reporter", first.src.0 as i64, site);
        for r in 1..c.nprocs {
            ctx.send(Rank(r as u32), TAG_REQ, Payload::from_i64(0), site);
        }
        // Orphaned if `first.src` is the planted rank: its ACK never comes.
        let _ = ctx.recv_from(first.src, TAG_ACK, site);
        for _ in 0..c.nprocs - 2 {
            let _ = ctx.recv_any(Some(TAG_DATA), site);
        }
    });
    let mut progs = vec![master];
    for r in 1..c.nprocs {
        let worker: ProgramFn = Box::new(move |ctx| {
            let site = ctx.site("planted.c", 30, "worker");
            reporting_worker(ctx, c, r);
            let _ = ctx.recv_from(Rank(0), TAG_REQ, site);
            // The planted bug: `bug_rank` swallows the request.
            if r as u32 != c.bug_rank {
                ctx.send(Rank(0), TAG_ACK, Payload::from_i64(r as i64), site);
            }
        });
        progs.push(worker);
    }
    progs
}

/// A reusable factory for sessions, the explorer, and the localizer.
pub fn planted_orphan_factory(cfg: PlantedConfig) -> impl Fn() -> Vec<ProgramFn> + Send + Sync {
    move || planted_orphan(&cfg)
}

/// Fan-in merge pipeline with a wildcard-receiving planted stage: ranks
/// `0..bug_rank` produce interleaved token streams, the planted stage
/// merges them, relay stages pass the merged stream on, and the sink
/// asserts it arrives in token order. A correct merge would alternate
/// directed receives across the producers; the planted wildcard instead
/// takes whatever arrives first, so a delayed producer message reorders
/// the stream and the sink panics ranks away from the bug.
pub fn planted_pipeline(cfg: &PlantedConfig) -> Vec<ProgramFn> {
    cfg.check();
    let c = *cfg;
    let last = c.nprocs - 1;
    assert!(
        (2..last as u32).contains(&c.bug_rank),
        "pipeline bug_rank must be an interior merge stage fed by 2+ producers"
    );
    let nprods = c.bug_rank as usize;
    let total = nprods as u64 * PIPELINE_TOKENS;
    let step = c.work / 4;
    let mut progs: Vec<ProgramFn> = Vec::new();
    for p in 0..nprods {
        let producer: ProgramFn = Box::new(move |ctx| {
            let site = ctx.site("planted.c", 50, "producer");
            // Producer `p` owns token ids `p, p + nprods, ...`; the pacing
            // staggers emission so token `i` arrives at the merge stage at
            // roughly `i * step` — globally ordered across producers.
            ctx.compute(p as u64 * step + 1, site);
            for k in 0..PIPELINE_TOKENS {
                let id = p as u64 + k * nprods as u64;
                ctx.send(
                    Rank(c.bug_rank),
                    TAG_DATA,
                    Payload::from_i64(id as i64),
                    site,
                );
                ctx.compute(nprods as u64 * step, site);
            }
        });
        progs.push(producer);
    }
    let merge: ProgramFn = Box::new(move |ctx| {
        let site = ctx.site("planted.c", 60, "merge");
        let next = Rank(c.bug_rank + 1);
        for _ in 0..total {
            // The planted bug: the merge receives with a full wildcard
            // instead of alternating directed receives per producer, so
            // the merged order is whatever arrival order happens to be.
            let v = ctx.recv_any(Some(TAG_DATA), site).payload;
            ctx.send(next, TAG_DATA, v, site);
        }
    });
    progs.push(merge);
    for r in (c.bug_rank as usize + 1)..last {
        let relay: ProgramFn = Box::new(move |ctx| {
            let site = ctx.site("planted.c", 65, "relay");
            for _ in 0..total {
                let v = ctx.recv_from(Rank((r - 1) as u32), TAG_DATA, site).payload;
                ctx.send(Rank((r + 1) as u32), TAG_DATA, v, site);
            }
        });
        progs.push(relay);
    }
    let sink: ProgramFn = Box::new(move |ctx| {
        let site = ctx.site("planted.c", 70, "sink");
        let pred = Rank((last - 1) as u32);
        for expect in 0..total as i64 {
            let v = ctx
                .recv_from(pred, TAG_DATA, site)
                .payload
                .to_i64()
                .unwrap();
            assert_eq!(v, expect, "pipeline stream corrupted");
        }
    });
    progs.push(sink);
    progs
}

/// A reusable factory for sessions, the explorer, and the localizer.
pub fn planted_pipeline_factory(cfg: PlantedConfig) -> impl Fn() -> Vec<ProgramFn> + Send + Sync {
    move || planted_pipeline(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_mpsim::{
        Decision, Engine, EngineConfig, FaultPlan, RecorderConfig, RunOutcome, SchedPolicy,
    };
    use tracedbg_trace::schedule::Fault;

    fn run(programs: Vec<ProgramFn>, policy: SchedPolicy, faults: Vec<Fault>) -> RunOutcome {
        let mut e = Engine::launch(
            EngineConfig {
                policy,
                recorder: RecorderConfig::full(),
                faults: FaultPlan::new(faults),
                ..Default::default()
            },
            programs,
        );
        e.run()
    }

    #[test]
    fn all_three_complete_under_the_baseline_schedule() {
        let cfg = PlantedConfig::default();
        for progs in [
            planted_wildcard(&cfg),
            planted_orphan(&cfg),
            planted_pipeline(&cfg),
        ] {
            assert!(run(progs, SchedPolicy::RoundRobin, vec![]).is_completed());
        }
    }

    #[test]
    fn wildcard_panics_when_the_planted_rank_reports_first() {
        tracedbg_mpsim::set_quiet_panics(true);
        let cfg = PlantedConfig::default();
        let script = vec![Decision::Turn {
            rank: Rank(cfg.bug_rank),
        }];
        match run(
            planted_wildcard(&cfg),
            SchedPolicy::Scripted(script),
            vec![],
        ) {
            RunOutcome::Panicked { rank, message } => {
                assert_eq!(rank, Rank(0));
                assert!(message.contains("poison report"), "{message}");
            }
            other => panic!("expected the planted race to fire, got {other:?}"),
        }
    }

    #[test]
    fn orphan_deadlocks_awaiting_exactly_the_planted_rank() {
        let cfg = PlantedConfig::default();
        let script = vec![Decision::Turn {
            rank: Rank(cfg.bug_rank),
        }];
        match run(planted_orphan(&cfg), SchedPolicy::Scripted(script), vec![]) {
            RunOutcome::Deadlock(rep) => {
                assert!(!rep.is_cyclic());
                assert_eq!(rep.waits.len(), 1);
                assert_eq!(rep.waits[0].waiter, Rank(0));
                assert_eq!(rep.waits[0].awaited, Some(Rank(cfg.bug_rank)));
            }
            other => panic!("expected the orphaned receive, got {other:?}"),
        }
    }

    #[test]
    fn pipeline_corrupts_when_a_merge_token_is_delayed() {
        tracedbg_mpsim::set_quiet_panics(true);
        let cfg = PlantedConfig::default();
        // Delay producer 0's second token past its successors: the
        // planted wildcard merges by arrival, so the stream reorders.
        let fault = Fault::Delay {
            src: Rank(0),
            dst: Rank(cfg.bug_rank),
            nth: 1,
            extra_ns: cfg.work * 2,
        };
        match run(planted_pipeline(&cfg), SchedPolicy::RoundRobin, vec![fault]) {
            RunOutcome::Panicked { rank, message } => {
                assert_eq!(rank, Rank((cfg.nprocs - 1) as u32), "fails at the sink");
                assert!(message.contains("corrupted"), "{message}");
            }
            other => panic!("expected the delayed token to corrupt the stream, got {other:?}"),
        }
    }

    #[test]
    fn scales_beyond_four_processes() {
        let cfg = PlantedConfig {
            nprocs: 6,
            bug_rank: 3,
            ..Default::default()
        };
        for progs in [
            planted_wildcard(&cfg),
            planted_orphan(&cfg),
            planted_pipeline(&cfg),
        ] {
            assert!(run(progs, SchedPolicy::RoundRobin, vec![]).is_completed());
        }
    }
}
