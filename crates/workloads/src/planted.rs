//! Planted-bug corpus for the fault-localization plane.
//!
//! Each workload hides a schedule- or delay-dependent bug in ONE known
//! rank (`PlantedConfig::bug_rank`), completes cleanly under the
//! deterministic round-robin baseline, and fails when the schedule (or an
//! injected delay) exposes the planted rank's faulty behavior. That makes
//! them ground truth for `tracedbg localize`: the localizer must rank the
//! planted rank at (or near) the top, and the accuracy tests in
//! `crates/localize/tests/known_bugs.rs` pin exactly that.
//!
//! * [`planted_wildcard`] — the master treats whichever worker reports
//!   first as the "leader"; the planted rank's report is poison in that
//!   role. Any schedule that lets the planted rank's send land first
//!   panics the master — the racy-wildcard shape with a parameterized
//!   culprit.
//! * [`planted_orphan`] — after the first report the master requests an
//!   acknowledgment from the reporting worker. The planted rank's reply
//!   code is missing (it swallows the request), so a schedule where it
//!   reports first orphans the master's directed receive: a non-cyclic
//!   deadlock awaiting exactly the planted rank.
//! * [`planted_pipeline`] — a fan-in merge pipeline whose planted stage
//!   merges its producers' streams with a full wildcard instead of
//!   alternating directed receives. The merged order is then arrival
//!   order; one delayed producer message reorders the stream and the
//!   sink's ordering assertion fires ranks away from where the bug lives
//!   — a delay-sensitive bug with a clean baseline.
//!
//! All three are task-backed ([`RankProgram::task`]), so the localizer's
//! many exploratory re-runs never spawn per-rank threads.

use tracedbg_mpsim::task::TaskOp;
use tracedbg_mpsim::{Payload, Prog, Rank, RankProgram, SendMode, SiteId, Tag};

pub const TAG_DATA: Tag = Tag(40);
pub const TAG_REQ: Tag = Tag(42);
pub const TAG_ACK: Tag = Tag(43);

/// Data tokens each pipeline producer emits.
pub const PIPELINE_TOKENS: u64 = 4;

/// Parameters for the planted-bug patterns.
#[derive(Clone, Copy, Debug)]
pub struct PlantedConfig {
    /// Total processes; at least 4 (master/source + 3 others).
    pub nprocs: usize,
    /// The rank carrying the planted bug. Must be a worker (1..nprocs);
    /// for the pipeline it must be an interior stage (1..nprocs-1).
    pub bug_rank: u32,
    /// Simulated work (ns) the fast worker does; slower ranks do four
    /// times as much, which is why the baseline schedule stays clean.
    pub work: u64,
}

impl Default for PlantedConfig {
    fn default() -> Self {
        PlantedConfig {
            nprocs: 4,
            bug_rank: 2,
            work: 50_000,
        }
    }
}

impl PlantedConfig {
    fn check(&self) {
        assert!(self.nprocs >= 4, "planted patterns need 4+ processes");
        assert!(
            (1..self.nprocs as u32).contains(&self.bug_rank),
            "bug_rank must be a worker rank"
        );
    }
}

/// Per-rank task state shared by every planted pattern.
#[derive(Clone)]
struct PState {
    cfg: PlantedConfig,
    rank: usize,
    /// Innermost program site (master/worker/stage body).
    site: SiteId,
    /// Secondary site (the orphan worker interns two).
    wsite: SiteId,
    /// Source of the first wildcard match (masters only).
    first: Rank,
    /// Generic loop cursor.
    k: i64,
    /// In-flight payload (pipeline stages).
    tok: Payload,
}

fn state(cfg: &PlantedConfig, rank: usize) -> PState {
    PState {
        cfg: *cfg,
        rank,
        site: SiteId(0),
        wsite: SiteId(0),
        first: Rank(0),
        k: 0,
        tok: Payload::empty(),
    }
}

/// The reporting body shared by both handshake patterns: compute (worker 1
/// is fastest), then report to the master. Interns its own site into
/// `wsite`, matching the thread version's nested `reporting_worker`.
fn reporting_body() -> Prog<PState> {
    Prog::seq(vec![
        Prog::act(|s: &mut PState, v| s.wsite = v.site("planted.c", 40, "worker")),
        Prog::op(|s: &mut PState, _| TaskOp::Compute {
            cost_ns: s.cfg.work * if s.rank == 1 { 1 } else { 4 },
            site: s.wsite,
        }),
        Prog::op(|s: &mut PState, _| TaskOp::Send {
            dst: Rank(0),
            tag: TAG_DATA,
            payload: Payload::from_i64(s.rank as i64),
            site: s.wsite,
            mode: SendMode::Buffered,
        }),
    ])
}

/// Drain the remaining `nprocs - 2` reports with wildcard receives.
fn drain_rest() -> Prog<PState> {
    Prog::for_range(
        |s: &PState, _| (0, s.cfg.nprocs as i64 - 2),
        |_s: &mut PState, _| {},
        Prog::op(|s: &mut PState, _| TaskOp::Recv {
            src: None,
            tag: Some(TAG_DATA),
            site: s.site,
        }),
    )
}

/// Wildcard leader election with a poison candidate: panics at the master
/// whenever the planted rank's report is matched first.
pub fn planted_wildcard(cfg: &PlantedConfig) -> Vec<RankProgram> {
    cfg.check();
    let master = Prog::seq(vec![
        Prog::act(|s: &mut PState, v| s.site = v.site("planted.c", 10, "master")),
        Prog::op_bind(
            |s: &mut PState, _| TaskOp::Recv {
                src: None,
                tag: Some(TAG_DATA),
                site: s.site,
            },
            |s, r, _| s.first = r.message().src,
        ),
        Prog::op(|s: &mut PState, _| TaskOp::Probe {
            label: "leader".into(),
            value: s.first.0 as i64,
            site: s.site,
        }),
        // The planted bug lives in `bug_rank`: its report is unusable as
        // a leader, but nothing stops it from arriving first.
        Prog::act(|s: &mut PState, _| {
            assert_ne!(
                s.first,
                Rank(s.cfg.bug_rank),
                "rank {} elected leader with a poison report",
                s.cfg.bug_rank
            );
        }),
        drain_rest(),
    ]);
    let worker = reporting_body();
    (0..cfg.nprocs)
        .map(|r| {
            let prog = if r == 0 {
                master.clone()
            } else {
                worker.clone()
            };
            RankProgram::task(state(cfg, r), prog)
        })
        .collect()
}

/// A reusable factory for sessions, the explorer, and the localizer.
pub fn planted_wildcard_factory(cfg: PlantedConfig) -> impl Fn() -> Vec<RankProgram> + Send + Sync {
    move || planted_wildcard(&cfg)
}

/// Request/acknowledge handshake where the planted rank never replies:
/// deadlocks (orphaned directed receive) whenever it reports first.
pub fn planted_orphan(cfg: &PlantedConfig) -> Vec<RankProgram> {
    cfg.check();
    let master = Prog::seq(vec![
        Prog::act(|s: &mut PState, v| s.site = v.site("planted.c", 20, "master")),
        Prog::op_bind(
            |s: &mut PState, _| TaskOp::Recv {
                src: None,
                tag: Some(TAG_DATA),
                site: s.site,
            },
            |s, r, _| s.first = r.message().src,
        ),
        Prog::op(|s: &mut PState, _| TaskOp::Probe {
            label: "reporter".into(),
            value: s.first.0 as i64,
            site: s.site,
        }),
        Prog::for_range(
            |s: &PState, _| (1, s.cfg.nprocs as i64),
            |s: &mut PState, r| s.k = r,
            Prog::op(|s: &mut PState, _| TaskOp::Send {
                dst: Rank(s.k as u32),
                tag: TAG_REQ,
                payload: Payload::from_i64(0),
                site: s.site,
                mode: SendMode::Buffered,
            }),
        ),
        // Orphaned if `first` is the planted rank: its ACK never comes.
        Prog::op(|s: &mut PState, _| TaskOp::Recv {
            src: Some(s.first),
            tag: Some(TAG_ACK),
            site: s.site,
        }),
        drain_rest(),
    ]);
    let worker = Prog::seq(vec![
        Prog::act(|s: &mut PState, v| s.site = v.site("planted.c", 30, "worker")),
        reporting_body(),
        Prog::op(|s: &mut PState, _| TaskOp::Recv {
            src: Some(Rank(0)),
            tag: Some(TAG_REQ),
            site: s.site,
        }),
        // The planted bug: `bug_rank` swallows the request.
        Prog::when(
            |s: &PState, _| s.rank as u32 != s.cfg.bug_rank,
            Prog::op(|s: &mut PState, _| TaskOp::Send {
                dst: Rank(0),
                tag: TAG_ACK,
                payload: Payload::from_i64(s.rank as i64),
                site: s.site,
                mode: SendMode::Buffered,
            }),
        ),
    ]);
    (0..cfg.nprocs)
        .map(|r| {
            let prog = if r == 0 {
                master.clone()
            } else {
                worker.clone()
            };
            RankProgram::task(state(cfg, r), prog)
        })
        .collect()
}

/// A reusable factory for sessions, the explorer, and the localizer.
pub fn planted_orphan_factory(cfg: PlantedConfig) -> impl Fn() -> Vec<RankProgram> + Send + Sync {
    move || planted_orphan(&cfg)
}

/// Fan-in merge pipeline with a wildcard-receiving planted stage: ranks
/// `0..bug_rank` produce interleaved token streams, the planted stage
/// merges them, relay stages pass the merged stream on, and the sink
/// asserts it arrives in token order. A correct merge would alternate
/// directed receives across the producers; the planted wildcard instead
/// takes whatever arrives first, so a delayed producer message reorders
/// the stream and the sink panics ranks away from the bug.
pub fn planted_pipeline(cfg: &PlantedConfig) -> Vec<RankProgram> {
    cfg.check();
    let last = cfg.nprocs - 1;
    assert!(
        (2..last as u32).contains(&cfg.bug_rank),
        "pipeline bug_rank must be an interior merge stage fed by 2+ producers"
    );
    let nprods = cfg.bug_rank as usize;
    let total = nprods as u64 * PIPELINE_TOKENS;
    let step = cfg.work / 4;
    let producer = Prog::seq(vec![
        Prog::act(|s: &mut PState, v| s.site = v.site("planted.c", 50, "producer")),
        // Producer `p` owns token ids `p, p + nprods, ...`; the pacing
        // staggers emission so token `i` arrives at the merge stage at
        // roughly `i * step` — globally ordered across producers.
        Prog::op(move |s: &mut PState, _| TaskOp::Compute {
            cost_ns: s.rank as u64 * step + 1,
            site: s.site,
        }),
        Prog::for_range(
            |_s: &PState, _| (0, PIPELINE_TOKENS as i64),
            |s: &mut PState, k| s.k = k,
            Prog::seq(vec![
                Prog::op(move |s: &mut PState, _| TaskOp::Send {
                    dst: Rank(s.cfg.bug_rank),
                    tag: TAG_DATA,
                    payload: Payload::from_i64(s.rank as i64 + s.k * nprods as i64),
                    site: s.site,
                    mode: SendMode::Buffered,
                }),
                Prog::op(move |s: &mut PState, _| TaskOp::Compute {
                    cost_ns: nprods as u64 * step,
                    site: s.site,
                }),
            ]),
        ),
    ]);
    let merge = Prog::seq(vec![
        Prog::act(|s: &mut PState, v| s.site = v.site("planted.c", 60, "merge")),
        Prog::for_range(
            move |_s: &PState, _| (0, total as i64),
            |_s: &mut PState, _| {},
            Prog::seq(vec![
                // The planted bug: the merge receives with a full wildcard
                // instead of alternating directed receives per producer, so
                // the merged order is whatever arrival order happens to be.
                Prog::op_bind(
                    |s: &mut PState, _| TaskOp::Recv {
                        src: None,
                        tag: Some(TAG_DATA),
                        site: s.site,
                    },
                    |s, r, _| s.tok = r.message().payload,
                ),
                Prog::op(|s: &mut PState, _| TaskOp::Send {
                    dst: Rank(s.cfg.bug_rank + 1),
                    tag: TAG_DATA,
                    payload: s.tok.clone(),
                    site: s.site,
                    mode: SendMode::Buffered,
                }),
            ]),
        ),
    ]);
    let relay = Prog::seq(vec![
        Prog::act(|s: &mut PState, v| s.site = v.site("planted.c", 65, "relay")),
        Prog::for_range(
            move |_s: &PState, _| (0, total as i64),
            |_s: &mut PState, _| {},
            Prog::seq(vec![
                Prog::op_bind(
                    |s: &mut PState, _| TaskOp::Recv {
                        src: Some(Rank(s.rank as u32 - 1)),
                        tag: Some(TAG_DATA),
                        site: s.site,
                    },
                    |s, r, _| s.tok = r.message().payload,
                ),
                Prog::op(|s: &mut PState, _| TaskOp::Send {
                    dst: Rank(s.rank as u32 + 1),
                    tag: TAG_DATA,
                    payload: s.tok.clone(),
                    site: s.site,
                    mode: SendMode::Buffered,
                }),
            ]),
        ),
    ]);
    let sink = Prog::seq(vec![
        Prog::act(|s: &mut PState, v| s.site = v.site("planted.c", 70, "sink")),
        Prog::for_range(
            move |_s: &PState, _| (0, total as i64),
            |s: &mut PState, k| s.k = k,
            Prog::op_bind(
                |s: &mut PState, _| TaskOp::Recv {
                    src: Some(Rank(s.rank as u32 - 1)),
                    tag: Some(TAG_DATA),
                    site: s.site,
                },
                |s, r, _| {
                    let v = r.message().payload.to_i64().unwrap();
                    assert_eq!(v, s.k, "pipeline stream corrupted");
                },
            ),
        ),
    ]);
    (0..cfg.nprocs)
        .map(|r| {
            let prog = if r < nprods {
                producer.clone()
            } else if r == nprods {
                merge.clone()
            } else if r < last {
                relay.clone()
            } else {
                sink.clone()
            };
            RankProgram::task(state(cfg, r), prog)
        })
        .collect()
}

/// A reusable factory for sessions, the explorer, and the localizer.
pub fn planted_pipeline_factory(cfg: PlantedConfig) -> impl Fn() -> Vec<RankProgram> + Send + Sync {
    move || planted_pipeline(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_mpsim::{
        Decision, Engine, EngineConfig, FaultPlan, RecorderConfig, RunOutcome, SchedPolicy,
    };
    use tracedbg_trace::schedule::Fault;

    fn run(programs: Vec<RankProgram>, policy: SchedPolicy, faults: Vec<Fault>) -> RunOutcome {
        let mut e = Engine::launch(
            EngineConfig {
                policy,
                recorder: RecorderConfig::full(),
                faults: FaultPlan::new(faults),
                ..Default::default()
            },
            programs,
        );
        e.run()
    }

    #[test]
    fn all_three_complete_under_the_baseline_schedule() {
        let cfg = PlantedConfig::default();
        for progs in [
            planted_wildcard(&cfg),
            planted_orphan(&cfg),
            planted_pipeline(&cfg),
        ] {
            assert!(run(progs, SchedPolicy::RoundRobin, vec![]).is_completed());
        }
    }

    #[test]
    fn wildcard_panics_when_the_planted_rank_reports_first() {
        tracedbg_mpsim::set_quiet_panics(true);
        let cfg = PlantedConfig::default();
        let script = vec![Decision::Turn {
            rank: Rank(cfg.bug_rank),
        }];
        match run(
            planted_wildcard(&cfg),
            SchedPolicy::Scripted(script),
            vec![],
        ) {
            RunOutcome::Panicked { rank, message } => {
                assert_eq!(rank, Rank(0));
                assert!(message.contains("poison report"), "{message}");
            }
            other => panic!("expected the planted race to fire, got {other:?}"),
        }
    }

    #[test]
    fn orphan_deadlocks_awaiting_exactly_the_planted_rank() {
        let cfg = PlantedConfig::default();
        let script = vec![Decision::Turn {
            rank: Rank(cfg.bug_rank),
        }];
        match run(planted_orphan(&cfg), SchedPolicy::Scripted(script), vec![]) {
            RunOutcome::Deadlock(rep) => {
                assert!(!rep.is_cyclic());
                assert_eq!(rep.waits.len(), 1);
                assert_eq!(rep.waits[0].waiter, Rank(0));
                assert_eq!(rep.waits[0].awaited, Some(Rank(cfg.bug_rank)));
            }
            other => panic!("expected the orphaned receive, got {other:?}"),
        }
    }

    #[test]
    fn pipeline_corrupts_when_a_merge_token_is_delayed() {
        tracedbg_mpsim::set_quiet_panics(true);
        let cfg = PlantedConfig::default();
        // Delay producer 0's second token past its successors: the
        // planted wildcard merges by arrival, so the stream reorders.
        let fault = Fault::Delay {
            src: Rank(0),
            dst: Rank(cfg.bug_rank),
            nth: 1,
            extra_ns: cfg.work * 2,
        };
        match run(planted_pipeline(&cfg), SchedPolicy::RoundRobin, vec![fault]) {
            RunOutcome::Panicked { rank, message } => {
                assert_eq!(rank, Rank((cfg.nprocs - 1) as u32), "fails at the sink");
                assert!(message.contains("corrupted"), "{message}");
            }
            other => panic!("expected the delayed token to corrupt the stream, got {other:?}"),
        }
    }

    #[test]
    fn scales_beyond_four_processes() {
        let cfg = PlantedConfig {
            nprocs: 6,
            bug_rank: 3,
            ..Default::default()
        };
        for progs in [
            planted_wildcard(&cfg),
            planted_orphan(&cfg),
            planted_pipeline(&cfg),
        ] {
            assert!(run(progs, SchedPolicy::RoundRobin, vec![]).is_completed());
        }
    }
}
