//! 1-D heat diffusion with halo exchange — a collective-using workload.
//!
//! Classic SPMD stencil: the domain is split across ranks; each step
//! exchanges boundary cells with both neighbours (bidirectional
//! point-to-point) and every `check_every` steps computes the global
//! residual with an allreduce. Exercises the runtime paths the other
//! workloads don't: bidirectional halos and collectives inside a
//! point-to-point program, which also makes its time-space diagram (and
//! its happens-before structure, via the collective synchronization)
//! richer.

use tracedbg_mpsim::collective::ReduceOp;
use tracedbg_mpsim::{Payload, ProcessCtx, ProgramFn, Rank, Tag};

const TAG_LEFT: Tag = Tag(40); // data moving left (to rank-1)
const TAG_RIGHT: Tag = Tag(41); // data moving right (to rank+1)

/// Solver parameters.
#[derive(Clone, Copy, Debug)]
pub struct HeatConfig {
    pub nprocs: usize,
    /// Cells per rank.
    pub cells: usize,
    /// Time steps.
    pub steps: usize,
    /// Allreduce the residual every this many steps.
    pub check_every: usize,
    /// Simulated ns per cell update.
    pub cell_cost: u64,
}

impl Default for HeatConfig {
    fn default() -> Self {
        HeatConfig {
            nprocs: 4,
            cells: 32,
            steps: 6,
            check_every: 2,
            cell_cost: 50,
        }
    }
}

fn stage(ctx: &mut ProcessCtx, cfg: &HeatConfig, rank: usize) {
    let solve_site = ctx.site("heat.c", 30, "solve");
    let halo_site = ctx.site("heat.c", 45, "halo_exchange");
    let cfg = *cfg;
    ctx.scope(solve_site, [rank as i64, cfg.steps as i64], move |ctx| {
        // Initial condition: a hot spot on rank 0.
        let mut u = vec![0.0f64; cfg.cells];
        if rank == 0 {
            u[0] = 100.0;
        }
        let left = rank.checked_sub(1);
        let right = if rank + 1 < cfg.nprocs {
            Some(rank + 1)
        } else {
            None
        };
        for step in 0..cfg.steps {
            // Halo exchange: send our boundary cells, receive neighbours'.
            let (mut ghost_l, mut ghost_r) = (u[0], u[cfg.cells - 1]);
            ctx.scope(halo_site, [step as i64, 0], |ctx| {
                if let Some(l) = left {
                    ctx.send(
                        Rank(l as u32),
                        TAG_LEFT,
                        Payload::from_f64s(&[u[0]]),
                        halo_site,
                    );
                }
                if let Some(r) = right {
                    ctx.send(
                        Rank(r as u32),
                        TAG_RIGHT,
                        Payload::from_f64s(&[u[cfg.cells - 1]]),
                        halo_site,
                    );
                }
                if let Some(l) = left {
                    let m = ctx.recv_from(Rank(l as u32), TAG_RIGHT, halo_site);
                    ghost_l = m.payload.to_f64s().unwrap()[0];
                }
                if let Some(r) = right {
                    let m = ctx.recv_from(Rank(r as u32), TAG_LEFT, halo_site);
                    ghost_r = m.payload.to_f64s().unwrap()[0];
                }
            });
            // Jacobi update.
            let old = u.clone();
            for i in 0..cfg.cells {
                let l = if i == 0 { ghost_l } else { old[i - 1] };
                let r = if i == cfg.cells - 1 {
                    ghost_r
                } else {
                    old[i + 1]
                };
                u[i] = old[i] + 0.25 * (l - 2.0 * old[i] + r);
            }
            ctx.compute(cfg.cell_cost * cfg.cells as u64, solve_site);
            // Global residual check.
            if (step + 1) % cfg.check_every == 0 {
                let local: f64 = u.iter().zip(&old).map(|(a, b)| (a - b) * (a - b)).sum();
                let global = ctx.allreduce(ReduceOp::Sum, Payload::from_f64s(&[local]), solve_site);
                let g = global.to_f64s().unwrap()[0];
                ctx.probe("residual_e6", (g * 1e6) as i64, solve_site);
            }
        }
        // Conservation check: the total heat is preserved by the scheme
        // except at the (insulated-ish) domain ends; probe the local sum.
        let total: f64 = u.iter().sum();
        ctx.probe("local_heat_e3", (total * 1e3) as i64, solve_site);
    });
}

/// Build the solver programs.
pub fn programs(cfg: &HeatConfig) -> Vec<ProgramFn> {
    assert!(cfg.nprocs >= 2);
    assert!(cfg.cells >= 2);
    assert!(cfg.check_every >= 1);
    (0..cfg.nprocs)
        .map(|r| {
            let c = *cfg;
            let p: ProgramFn = Box::new(move |ctx| stage(ctx, &c, r));
            p
        })
        .collect()
}

/// A reusable factory for debugger sessions.
pub fn factory(cfg: HeatConfig) -> impl Fn() -> Vec<ProgramFn> + Send + Sync {
    move || programs(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_mpsim::{Engine, EngineConfig, RecorderConfig};
    use tracedbg_trace::EventKind;

    #[test]
    fn solver_completes_with_expected_structure() {
        let cfg = HeatConfig::default();
        let mut e = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::full()),
            programs(&cfg),
        );
        assert!(e.run().is_completed());
        let store = e.trace_store();
        // Halo messages: interior ranks send 2/step, edge ranks 1/step.
        let expected_msgs = cfg.steps * (2 * (cfg.nprocs - 1));
        assert_eq!(store.of_kind(EventKind::Send).len(), expected_msgs);
        // Allreduces: steps / check_every instances × nprocs records.
        let colls = store
            .records()
            .iter()
            .filter(|r| matches!(r.kind, EventKind::Collective(_)))
            .count();
        assert_eq!(colls, (cfg.steps / cfg.check_every) * cfg.nprocs);
    }

    #[test]
    fn residuals_decrease() {
        let cfg = HeatConfig {
            steps: 8,
            check_every: 2,
            ..Default::default()
        };
        let mut e = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::full()),
            programs(&cfg),
        );
        assert!(e.run().is_completed());
        let store = e.trace_store();
        let residuals: Vec<i64> = store
            .by_rank(tracedbg_trace::Rank(0))
            .iter()
            .map(|&id| store.record(id))
            .filter(|r| r.label.as_deref() == Some("residual_e6"))
            .map(|r| r.args[0])
            .collect();
        assert_eq!(residuals.len(), 4);
        assert!(
            residuals.windows(2).all(|w| w[1] <= w[0]),
            "diffusion must relax: {residuals:?}"
        );
    }

    #[test]
    fn heat_spreads_to_all_ranks() {
        let cfg = HeatConfig {
            nprocs: 3,
            cells: 4,
            steps: 20,
            check_every: 20,
            cell_cost: 1,
        };
        let mut e = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::full()),
            programs(&cfg),
        );
        assert!(e.run().is_completed());
        let store = e.trace_store();
        for r in 0..3u32 {
            let heat = store
                .by_rank(tracedbg_trace::Rank(r))
                .iter()
                .map(|&id| store.record(id))
                .find(|rec| rec.label.as_deref() == Some("local_heat_e3"))
                .map(|rec| rec.args[0])
                .unwrap();
            assert!(heat > 0, "rank {r} never warmed up: {heat}");
        }
    }
}
