//! 1-D heat diffusion with halo exchange — a collective-using workload.
//!
//! Classic SPMD stencil: the domain is split across ranks; each step
//! exchanges boundary cells with both neighbours (bidirectional
//! point-to-point) and every `check_every` steps computes the global
//! residual with an allreduce. Exercises the runtime paths the other
//! workloads don't: bidirectional halos and collectives inside a
//! point-to-point program, which also makes its time-space diagram (and
//! its happens-before structure, via the collective synchronization)
//! richer. Task-backed: the whole solver state (the cell vector included)
//! lives in [`HeatState`] and snapshots into checkpoints by clone.

use tracedbg_mpsim::collective::ReduceOp;
use tracedbg_mpsim::task::TaskOp;
use tracedbg_mpsim::{Payload, Prog, Rank, RankProgram, SendMode, SiteId, Tag};
use tracedbg_trace::CollKind;

const TAG_LEFT: Tag = Tag(40); // data moving left (to rank-1)
const TAG_RIGHT: Tag = Tag(41); // data moving right (to rank+1)

/// Solver parameters.
#[derive(Clone, Copy, Debug)]
pub struct HeatConfig {
    pub nprocs: usize,
    /// Cells per rank.
    pub cells: usize,
    /// Time steps.
    pub steps: usize,
    /// Allreduce the residual every this many steps.
    pub check_every: usize,
    /// Simulated ns per cell update.
    pub cell_cost: u64,
}

impl Default for HeatConfig {
    fn default() -> Self {
        HeatConfig {
            nprocs: 4,
            cells: 32,
            steps: 6,
            check_every: 2,
            cell_cost: 50,
        }
    }
}

/// Per-rank solver state: the local domain plus loop cursors and the
/// ghost cells in flight.
#[derive(Clone)]
struct HeatState {
    cfg: HeatConfig,
    rank: usize,
    solve: SiteId,
    halo: SiteId,
    u: Vec<f64>,
    ghost_l: f64,
    ghost_r: f64,
    /// Residual of the last step (probed after the allreduce).
    resid: f64,
    step: i64,
}

impl HeatState {
    fn left(&self) -> Option<usize> {
        self.rank.checked_sub(1)
    }
    fn right(&self) -> Option<usize> {
        if self.rank + 1 < self.cfg.nprocs {
            Some(self.rank + 1)
        } else {
            None
        }
    }
}

fn stage_prog() -> Prog<HeatState> {
    // Halo exchange: send our boundary cells, receive neighbours'.
    let halo = Prog::scope(
        |s: &mut HeatState, _| (s.halo, [s.step, 0]),
        Prog::seq(vec![
            Prog::when(
                |s: &HeatState, _| s.left().is_some(),
                Prog::op(|s: &mut HeatState, _| TaskOp::Send {
                    dst: Rank(s.left().unwrap() as u32),
                    tag: TAG_LEFT,
                    payload: Payload::from_f64s(&[s.u[0]]),
                    site: s.halo,
                    mode: SendMode::Buffered,
                }),
            ),
            Prog::when(
                |s: &HeatState, _| s.right().is_some(),
                Prog::op(|s: &mut HeatState, _| TaskOp::Send {
                    dst: Rank(s.right().unwrap() as u32),
                    tag: TAG_RIGHT,
                    payload: Payload::from_f64s(&[s.u[s.cfg.cells - 1]]),
                    site: s.halo,
                    mode: SendMode::Buffered,
                }),
            ),
            Prog::when(
                |s: &HeatState, _| s.left().is_some(),
                Prog::op_bind(
                    |s: &mut HeatState, _| TaskOp::Recv {
                        src: Some(Rank(s.left().unwrap() as u32)),
                        tag: Some(TAG_RIGHT),
                        site: s.halo,
                    },
                    |s, m, _| s.ghost_l = m.message().payload.to_f64s().unwrap()[0],
                ),
            ),
            Prog::when(
                |s: &HeatState, _| s.right().is_some(),
                Prog::op_bind(
                    |s: &mut HeatState, _| TaskOp::Recv {
                        src: Some(Rank(s.right().unwrap() as u32)),
                        tag: Some(TAG_LEFT),
                        site: s.halo,
                    },
                    |s, m, _| s.ghost_r = m.message().payload.to_f64s().unwrap()[0],
                ),
            ),
        ]),
    );
    let step_body = Prog::seq(vec![
        Prog::act(|s: &mut HeatState, _| {
            // Halo defaults: own boundary values when a neighbour is
            // missing (the receives overwrite the rest).
            s.ghost_l = s.u[0];
            s.ghost_r = s.u[s.cfg.cells - 1];
        }),
        halo,
        // Jacobi update; the arithmetic is attributed to the compute op
        // that charges its simulated cost.
        Prog::op(|s: &mut HeatState, _| {
            let cells = s.cfg.cells;
            let old = s.u.clone();
            for i in 0..cells {
                let l = if i == 0 { s.ghost_l } else { old[i - 1] };
                let r = if i == cells - 1 {
                    s.ghost_r
                } else {
                    old[i + 1]
                };
                s.u[i] = old[i] + 0.25 * (l - 2.0 * old[i] + r);
            }
            s.resid = s.u.iter().zip(&old).map(|(a, b)| (a - b) * (a - b)).sum();
            TaskOp::Compute {
                cost_ns: s.cfg.cell_cost * cells as u64,
                site: s.solve,
            }
        }),
        // Global residual check.
        Prog::when(
            |s: &HeatState, _| (s.step + 1) % s.cfg.check_every as i64 == 0,
            Prog::seq(vec![
                Prog::op_bind(
                    |s: &mut HeatState, _| TaskOp::Collective {
                        kind: CollKind::AllReduce,
                        root: Rank(0),
                        payload: Payload::from_f64s(&[s.resid]),
                        op: Some(ReduceOp::Sum),
                        site: s.solve,
                    },
                    |s, r, _| s.resid = r.payload().to_f64s().unwrap()[0],
                ),
                Prog::op(|s: &mut HeatState, _| TaskOp::Probe {
                    label: "residual_e6".into(),
                    value: (s.resid * 1e6) as i64,
                    site: s.solve,
                }),
            ]),
        ),
    ]);
    Prog::seq(vec![
        Prog::act(|s: &mut HeatState, v| {
            s.solve = v.site("heat.c", 30, "solve");
            s.halo = v.site("heat.c", 45, "halo_exchange");
        }),
        Prog::scope(
            |s: &mut HeatState, _| (s.solve, [s.rank as i64, s.cfg.steps as i64]),
            Prog::seq(vec![
                Prog::for_range(
                    |s: &HeatState, _| (0, s.cfg.steps as i64),
                    |s: &mut HeatState, i| s.step = i,
                    step_body,
                ),
                // Conservation check: the total heat is preserved by the
                // scheme except at the (insulated-ish) domain ends; probe
                // the local sum.
                Prog::op(|s: &mut HeatState, _| TaskOp::Probe {
                    label: "local_heat_e3".into(),
                    value: (s.u.iter().sum::<f64>() * 1e3) as i64,
                    site: s.solve,
                }),
            ]),
        ),
    ])
}

/// Build the solver programs.
pub fn programs(cfg: &HeatConfig) -> Vec<RankProgram> {
    assert!(cfg.nprocs >= 2);
    assert!(cfg.cells >= 2);
    assert!(cfg.check_every >= 1);
    let prog = stage_prog();
    (0..cfg.nprocs)
        .map(|r| {
            // Initial condition: a hot spot on rank 0.
            let mut u = vec![0.0f64; cfg.cells];
            if r == 0 {
                u[0] = 100.0;
            }
            RankProgram::task(
                HeatState {
                    cfg: *cfg,
                    rank: r,
                    solve: SiteId(0),
                    halo: SiteId(0),
                    u,
                    ghost_l: 0.0,
                    ghost_r: 0.0,
                    resid: 0.0,
                    step: 0,
                },
                prog.clone(),
            )
        })
        .collect()
}

/// A reusable factory for debugger sessions.
pub fn factory(cfg: HeatConfig) -> impl Fn() -> Vec<RankProgram> + Send + Sync {
    move || programs(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_mpsim::{Engine, EngineConfig, RecorderConfig};
    use tracedbg_trace::EventKind;

    #[test]
    fn solver_completes_with_expected_structure() {
        let cfg = HeatConfig::default();
        let mut e = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::full()),
            programs(&cfg),
        );
        assert!(e.run().is_completed());
        let store = e.trace_store();
        // Halo messages: interior ranks send 2/step, edge ranks 1/step.
        let expected_msgs = cfg.steps * (2 * (cfg.nprocs - 1));
        assert_eq!(store.of_kind(EventKind::Send).len(), expected_msgs);
        // Allreduces: steps / check_every instances × nprocs records.
        let colls = store
            .records()
            .iter()
            .filter(|r| matches!(r.kind, EventKind::Collective(_)))
            .count();
        assert_eq!(colls, (cfg.steps / cfg.check_every) * cfg.nprocs);
    }

    #[test]
    fn residuals_decrease() {
        let cfg = HeatConfig {
            steps: 8,
            check_every: 2,
            ..Default::default()
        };
        let mut e = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::full()),
            programs(&cfg),
        );
        assert!(e.run().is_completed());
        let store = e.trace_store();
        let residuals: Vec<i64> = store
            .by_rank(tracedbg_trace::Rank(0))
            .iter()
            .map(|&id| store.record(id))
            .filter(|r| r.label.as_deref() == Some("residual_e6"))
            .map(|r| r.args[0])
            .collect();
        assert_eq!(residuals.len(), 4);
        assert!(
            residuals.windows(2).all(|w| w[1] <= w[0]),
            "diffusion must relax: {residuals:?}"
        );
    }

    #[test]
    fn heat_spreads_to_all_ranks() {
        let cfg = HeatConfig {
            nprocs: 3,
            cells: 4,
            steps: 20,
            check_every: 20,
            cell_cost: 1,
        };
        let mut e = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::full()),
            programs(&cfg),
        );
        assert!(e.run().is_completed());
        let store = e.trace_store();
        for r in 0..3u32 {
            let heat = store
                .by_rank(tracedbg_trace::Rank(r))
                .iter()
                .map(|&id| store.record(id))
                .find(|rec| rec.label.as_deref() == Some("local_heat_e3"))
                .map(|rec| rec.args[0])
                .unwrap();
            assert!(heat > 0, "rank {r} never warmed up: {heat}");
        }
    }
}
