//! Seeded random communication patterns — the fuzzing workload.
//!
//! A pattern is a global sequence of transfers `(src, dst, tag, value)`;
//! each rank executes its slice of the sequence in order (sends buffered,
//! receives exact-source). Because a receive for transfer *k* waits only
//! on a send that precedes every later op of its sender, the dependency
//! order strictly decreases along any wait chain — patterns are
//! **deadlock-free by construction**, which makes them ideal inputs for
//! property tests (every run must complete; every vertical cut must be
//! consistent; matching must be a bijection). Task-backed: the jitter RNG
//! is part of the snapshot, so a restored rank draws the same stream.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use tracedbg_mpsim::task::TaskOp;
use tracedbg_mpsim::{Payload, Prog, Rank, RankProgram, SendMode, SiteId, Tag};

/// One point-to-point transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transfer {
    pub src: u32,
    pub dst: u32,
    pub tag: i32,
    pub value: i64,
}

/// A generated pattern.
#[derive(Clone, Debug)]
pub struct Pattern {
    pub nprocs: usize,
    pub transfers: Vec<Transfer>,
}

/// Generate a random pattern: `n_transfers` transfers between distinct
/// ranks with small tags, plus per-transfer compute jitter derived from
/// the same seed at execution time.
pub fn generate(seed: u64, nprocs: usize, n_transfers: usize) -> Pattern {
    assert!(nprocs >= 2);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let transfers = (0..n_transfers)
        .map(|i| {
            let src = rng.gen_range(0..nprocs as u32);
            let mut dst = rng.gen_range(0..nprocs as u32 - 1);
            if dst >= src {
                dst += 1;
            }
            Transfer {
                src,
                dst,
                tag: rng.gen_range(0..4),
                value: i as i64,
            }
        })
        .collect();
    Pattern { nprocs, transfers }
}

/// Per-rank task state: the shared pattern, a transfer cursor, the jitter
/// RNG (cloned into snapshots mid-stream), and the last received value.
#[derive(Clone)]
struct CommState {
    pat: Arc<Pattern>,
    rank: usize,
    site: SiteId,
    rng: ChaCha8Rng,
    i: i64,
    got: i64,
}

impl CommState {
    fn cur(&self) -> Transfer {
        self.pat.transfers[self.i as usize]
    }
}

fn pattern_prog() -> Prog<CommState> {
    Prog::seq(vec![
        Prog::act(|s: &mut CommState, v| {
            s.site = v.site("random.comm", s.rank as u32 + 1, "pattern")
        }),
        Prog::for_range(
            |s: &CommState, _| (0, s.pat.transfers.len() as i64),
            |s: &mut CommState, i| s.i = i,
            Prog::seq(vec![
                Prog::when(
                    |s: &CommState, _| s.cur().src as usize == s.rank,
                    Prog::seq(vec![
                        Prog::op(|s: &mut CommState, _| TaskOp::Compute {
                            cost_ns: s.rng.gen_range(0..5_000),
                            site: s.site,
                        }),
                        Prog::op(|s: &mut CommState, _| TaskOp::Send {
                            dst: Rank(s.cur().dst),
                            tag: Tag(s.cur().tag),
                            payload: Payload::from_i64(s.cur().value),
                            site: s.site,
                            mode: SendMode::Buffered,
                        }),
                    ]),
                ),
                Prog::when(
                    |s: &CommState, _| s.cur().dst as usize == s.rank,
                    Prog::seq(vec![
                        Prog::op_bind(
                            |s: &mut CommState, _| TaskOp::Recv {
                                src: Some(Rank(s.cur().src)),
                                tag: Some(Tag(s.cur().tag)),
                                site: s.site,
                            },
                            |s, m, _| s.got = m.message().payload.to_i64().unwrap(),
                        ),
                        // Per-(src,dst,tag) FIFO: values on the same
                        // (src,tag) lane arrive in pattern order, but the
                        // payload always identifies the transfer.
                        Prog::op(|s: &mut CommState, _| TaskOp::Probe {
                            label: "got".into(),
                            value: s.got,
                            site: s.site,
                        }),
                    ]),
                ),
            ]),
        ),
    ])
}

/// Build the per-rank programs executing a pattern.
pub fn programs(pattern: &Pattern, jitter_seed: u64) -> Vec<RankProgram> {
    let pat = Arc::new(pattern.clone());
    let prog = pattern_prog();
    (0..pattern.nprocs)
        .map(|r| {
            RankProgram::task(
                CommState {
                    pat: pat.clone(),
                    rank: r,
                    site: SiteId(0),
                    rng: ChaCha8Rng::seed_from_u64(jitter_seed ^ r as u64),
                    i: 0,
                    got: 0,
                },
                prog.clone(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_mpsim::{Engine, EngineConfig, RecorderConfig};
    use tracedbg_trace::EventKind;

    #[test]
    fn patterns_always_complete() {
        for seed in 0..10 {
            let pat = generate(seed, 4, 30);
            let mut e = Engine::launch(
                EngineConfig::with_recorder(RecorderConfig::full()),
                programs(&pat, seed),
            );
            let out = e.run();
            assert!(out.is_completed(), "seed {seed}: {out:?}");
            let store = e.trace_store();
            assert_eq!(store.of_kind(EventKind::Send).len(), 30);
            assert_eq!(store.of_kind(EventKind::RecvDone).len(), 30);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(7, 5, 20).transfers, generate(7, 5, 20).transfers);
        assert_ne!(generate(7, 5, 20).transfers, generate(8, 5, 20).transfers);
    }

    #[test]
    fn src_ne_dst_always() {
        let pat = generate(3, 6, 200);
        assert!(pat.transfers.iter().all(|t| t.src != t.dst));
        assert!(pat
            .transfers
            .iter()
            .all(|t| (t.src as usize) < 6 && (t.dst as usize) < 6));
    }
}
