//! Seeded random communication patterns — the fuzzing workload.
//!
//! A pattern is a global sequence of transfers `(src, dst, tag, value)`;
//! each rank executes its slice of the sequence in order (sends buffered,
//! receives exact-source). Because a receive for transfer *k* waits only
//! on a send that precedes every later op of its sender, the dependency
//! order strictly decreases along any wait chain — patterns are
//! **deadlock-free by construction**, which makes them ideal inputs for
//! property tests (every run must complete; every vertical cut must be
//! consistent; matching must be a bijection).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tracedbg_mpsim::{Payload, ProgramFn, Rank, Tag};

/// One point-to-point transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transfer {
    pub src: u32,
    pub dst: u32,
    pub tag: i32,
    pub value: i64,
}

/// A generated pattern.
#[derive(Clone, Debug)]
pub struct Pattern {
    pub nprocs: usize,
    pub transfers: Vec<Transfer>,
}

/// Generate a random pattern: `n_transfers` transfers between distinct
/// ranks with small tags, plus per-transfer compute jitter derived from
/// the same seed at execution time.
pub fn generate(seed: u64, nprocs: usize, n_transfers: usize) -> Pattern {
    assert!(nprocs >= 2);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let transfers = (0..n_transfers)
        .map(|i| {
            let src = rng.gen_range(0..nprocs as u32);
            let mut dst = rng.gen_range(0..nprocs as u32 - 1);
            if dst >= src {
                dst += 1;
            }
            Transfer {
                src,
                dst,
                tag: rng.gen_range(0..4),
                value: i as i64,
            }
        })
        .collect();
    Pattern { nprocs, transfers }
}

/// Build the per-rank programs executing a pattern.
pub fn programs(pattern: &Pattern, jitter_seed: u64) -> Vec<ProgramFn> {
    (0..pattern.nprocs)
        .map(|r| {
            let pat = pattern.clone();
            let p: ProgramFn = Box::new(move |ctx| {
                let site = ctx.site("random.comm", r as u32 + 1, "pattern");
                let mut rng = ChaCha8Rng::seed_from_u64(jitter_seed ^ r as u64);
                for t in &pat.transfers {
                    if t.src as usize == r {
                        ctx.compute(rng.gen_range(0..5_000), site);
                        ctx.send(Rank(t.dst), Tag(t.tag), Payload::from_i64(t.value), site);
                    } else if t.dst as usize == r {
                        let m = ctx.recv_from(Rank(t.src), Tag(t.tag), site);
                        // Per-(src,dst,tag) FIFO: values on the same
                        // (src,tag) lane arrive in pattern order, but the
                        // payload always identifies the transfer.
                        ctx.probe("got", m.payload.to_i64().unwrap(), site);
                    }
                }
            });
            p
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_mpsim::{Engine, EngineConfig, RecorderConfig};
    use tracedbg_trace::EventKind;

    #[test]
    fn patterns_always_complete() {
        for seed in 0..10 {
            let pat = generate(seed, 4, 30);
            let mut e = Engine::launch(
                EngineConfig::with_recorder(RecorderConfig::full()),
                programs(&pat, seed),
            );
            let out = e.run();
            assert!(out.is_completed(), "seed {seed}: {out:?}");
            let store = e.trace_store();
            assert_eq!(store.of_kind(EventKind::Send).len(), 30);
            assert_eq!(store.of_kind(EventKind::RecvDone).len(), 30);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(7, 5, 20).transfers, generate(7, 5, 20).transfers);
        assert_ne!(generate(7, 5, 20).transfers, generate(8, 5, 20).transfers);
    }

    #[test]
    fn src_ne_dst_always() {
        let pat = generate(3, 6, 200);
        assert!(pat.transfers.iter().all(|t| t.src != t.dst));
        assert!(pat
            .transfers
            .iter()
            .all(|t| (t.src as usize) < 6 && (t.dst as usize) < 6));
    }
}
