//! A wavefront pipeline modeled on the NAS LU benchmark (Figure 8).
//!
//! NAS LU's SSOR solver sweeps a wavefront across a processor grid: each
//! process waits for boundary data from its predecessor, relaxes its
//! block, and forwards the boundary to its successor. The staircase of
//! dependencies is exactly what makes Figure 8's past/future frontiers
//! non-trivial (slanted lines), so this workload reproduces it as a 1-D
//! pipeline with multiple sweeps.

use tracedbg_mpsim::{Payload, ProcessCtx, ProgramFn, Rank, Tag};

/// Pipeline parameters.
#[derive(Clone, Copy, Debug)]
pub struct LuConfig {
    /// Number of pipeline stages (processes).
    pub nprocs: usize,
    /// Number of wavefront sweeps.
    pub sweeps: usize,
    /// Simulated relaxation cost per block (ns).
    pub block_cost: u64,
    /// Boundary size in f64 elements.
    pub boundary: usize,
}

impl Default for LuConfig {
    fn default() -> Self {
        LuConfig {
            nprocs: 6,
            sweeps: 4,
            block_cost: 200_000,
            boundary: 64,
        }
    }
}

const TAG_BOUNDARY: Tag = Tag(10);

fn stage(ctx: &mut ProcessCtx, cfg: &LuConfig, rank: usize) {
    let ssor_site = ctx.site("lu.f", 40, "ssor");
    let relax_site = ctx.site("lu.f", 55, "blts");
    let cfg = *cfg;
    ctx.scope(ssor_site, [rank as i64, cfg.sweeps as i64], move |ctx| {
        let mut boundary = vec![rank as f64; cfg.boundary];
        for sweep in 0..cfg.sweeps {
            // Receive the incoming boundary from the predecessor (stage 0
            // starts each sweep on its own).
            if rank > 0 {
                let m = ctx.recv_from(Rank(rank as u32 - 1), TAG_BOUNDARY, ssor_site);
                boundary = m.payload.to_f64s().expect("f64 boundary");
            }
            // Relax the local block.
            ctx.scope(relax_site, [sweep as i64, rank as i64], |ctx| {
                ctx.compute(cfg.block_cost, relax_site);
                for x in boundary.iter_mut() {
                    *x = 0.5 * *x + 1.0;
                }
            });
            // Forward the boundary downstream.
            if rank + 1 < cfg.nprocs {
                ctx.send(
                    Rank(rank as u32 + 1),
                    TAG_BOUNDARY,
                    Payload::from_f64s(&boundary),
                    ssor_site,
                );
            }
        }
    });
}

/// Build the pipeline programs.
pub fn programs(cfg: &LuConfig) -> Vec<ProgramFn> {
    assert!(cfg.nprocs >= 2);
    (0..cfg.nprocs)
        .map(|r| {
            let c = *cfg;
            let p: ProgramFn = Box::new(move |ctx| stage(ctx, &c, r));
            p
        })
        .collect()
}

/// A reusable factory for debugger sessions.
pub fn factory(cfg: LuConfig) -> impl Fn() -> Vec<ProgramFn> + Send + Sync {
    move || programs(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_mpsim::{Engine, EngineConfig, RecorderConfig};
    use tracedbg_trace::EventKind;

    #[test]
    fn pipeline_completes() {
        let cfg = LuConfig::default();
        let mut e = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::full()),
            programs(&cfg),
        );
        assert!(e.run().is_completed());
        let store = e.trace_store();
        // (nprocs-1) messages per sweep.
        assert_eq!(
            store.of_kind(EventKind::Send).len(),
            (cfg.nprocs - 1) * cfg.sweeps
        );
    }

    #[test]
    fn wavefront_times_are_staggered() {
        let cfg = LuConfig {
            nprocs: 4,
            sweeps: 1,
            ..Default::default()
        };
        let mut e = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::full()),
            programs(&cfg),
        );
        assert!(e.run().is_completed());
        let store = e.trace_store();
        // Each stage's compute must end strictly later than its
        // predecessor's (the wavefront).
        let mut ends = vec![0u64; 4];
        for r in store.records() {
            if r.kind == EventKind::Compute {
                ends[r.rank.ix()] = ends[r.rank.ix()].max(r.t_end);
            }
        }
        assert!(ends.windows(2).all(|w| w[0] < w[1]), "{ends:?}");
    }
}
