//! A wavefront pipeline modeled on the NAS LU benchmark (Figure 8).
//!
//! NAS LU's SSOR solver sweeps a wavefront across a processor grid: each
//! process waits for boundary data from its predecessor, relaxes its
//! block, and forwards the boundary to its successor. The staircase of
//! dependencies is exactly what makes Figure 8's past/future frontiers
//! non-trivial (slanted lines), so this workload reproduces it as a 1-D
//! pipeline with multiple sweeps. Task-backed ([`RankProgram::task`]).

use tracedbg_mpsim::task::TaskOp;
use tracedbg_mpsim::{Payload, Prog, Rank, RankProgram, SendMode, SiteId, Tag};

/// Pipeline parameters.
#[derive(Clone, Copy, Debug)]
pub struct LuConfig {
    /// Number of pipeline stages (processes).
    pub nprocs: usize,
    /// Number of wavefront sweeps.
    pub sweeps: usize,
    /// Simulated relaxation cost per block (ns).
    pub block_cost: u64,
    /// Boundary size in f64 elements.
    pub boundary: usize,
}

impl Default for LuConfig {
    fn default() -> Self {
        LuConfig {
            nprocs: 6,
            sweeps: 4,
            block_cost: 200_000,
            boundary: 64,
        }
    }
}

const TAG_BOUNDARY: Tag = Tag(10);

/// Per-stage task state: the boundary vector plus loop cursor and sites.
#[derive(Clone)]
struct LuState {
    cfg: LuConfig,
    rank: usize,
    ssor: SiteId,
    relax: SiteId,
    boundary: Vec<f64>,
    sweep: i64,
}

fn stage_prog() -> Prog<LuState> {
    let sweep_body = Prog::seq(vec![
        // Receive the incoming boundary from the predecessor (stage 0
        // starts each sweep on its own).
        Prog::when(
            |s: &LuState, _| s.rank > 0,
            Prog::op_bind(
                |s: &mut LuState, _| TaskOp::Recv {
                    src: Some(Rank(s.rank as u32 - 1)),
                    tag: Some(TAG_BOUNDARY),
                    site: s.ssor,
                },
                |s, m, _| s.boundary = m.message().payload.to_f64s().expect("f64 boundary"),
            ),
        ),
        // Relax the local block.
        Prog::scope(
            |s: &mut LuState, _| (s.relax, [s.sweep, s.rank as i64]),
            Prog::op(|s: &mut LuState, _| {
                for x in s.boundary.iter_mut() {
                    *x = 0.5 * *x + 1.0;
                }
                TaskOp::Compute {
                    cost_ns: s.cfg.block_cost,
                    site: s.relax,
                }
            }),
        ),
        // Forward the boundary downstream.
        Prog::when(
            |s: &LuState, _| s.rank + 1 < s.cfg.nprocs,
            Prog::op(|s: &mut LuState, _| TaskOp::Send {
                dst: Rank(s.rank as u32 + 1),
                tag: TAG_BOUNDARY,
                payload: Payload::from_f64s(&s.boundary),
                site: s.ssor,
                mode: SendMode::Buffered,
            }),
        ),
    ]);
    Prog::seq(vec![
        Prog::act(|s: &mut LuState, v| {
            s.ssor = v.site("lu.f", 40, "ssor");
            s.relax = v.site("lu.f", 55, "blts");
        }),
        Prog::scope(
            |s: &mut LuState, _| (s.ssor, [s.rank as i64, s.cfg.sweeps as i64]),
            Prog::for_range(
                |s: &LuState, _| (0, s.cfg.sweeps as i64),
                |s: &mut LuState, i| s.sweep = i,
                sweep_body,
            ),
        ),
    ])
}

/// Build the pipeline programs.
pub fn programs(cfg: &LuConfig) -> Vec<RankProgram> {
    assert!(cfg.nprocs >= 2);
    let prog = stage_prog();
    (0..cfg.nprocs)
        .map(|r| {
            RankProgram::task(
                LuState {
                    cfg: *cfg,
                    rank: r,
                    ssor: SiteId(0),
                    relax: SiteId(0),
                    boundary: vec![r as f64; cfg.boundary],
                    sweep: 0,
                },
                prog.clone(),
            )
        })
        .collect()
}

/// A reusable factory for debugger sessions.
pub fn factory(cfg: LuConfig) -> impl Fn() -> Vec<RankProgram> + Send + Sync {
    move || programs(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_mpsim::{Engine, EngineConfig, RecorderConfig};
    use tracedbg_trace::EventKind;

    #[test]
    fn pipeline_completes() {
        let cfg = LuConfig::default();
        let mut e = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::full()),
            programs(&cfg),
        );
        assert!(e.run().is_completed());
        let store = e.trace_store();
        // (nprocs-1) messages per sweep.
        assert_eq!(
            store.of_kind(EventKind::Send).len(),
            (cfg.nprocs - 1) * cfg.sweeps
        );
    }

    #[test]
    fn wavefront_times_are_staggered() {
        let cfg = LuConfig {
            nprocs: 4,
            sweeps: 1,
            ..Default::default()
        };
        let mut e = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::full()),
            programs(&cfg),
        );
        assert!(e.run().is_completed());
        let store = e.trace_store();
        // Each stage's compute must end strictly later than its
        // predecessor's (the wavefront).
        let mut ends = vec![0u64; 4];
        for r in store.records() {
            if r.kind == EventKind::Compute {
                ends[r.rank.ix()] = ends[r.rank.ix()].max(r.t_end);
            }
        }
        assert!(ends.windows(2).all(|w| w[0] < w[1]), "{ends:?}");
    }
}
