//! A token ring: deterministic pattern for replay/trace tests.

use tracedbg_mpsim::{Payload, ProcessCtx, ProgramFn, Rank, Tag};

const TAG_TOKEN: Tag = Tag(20);

/// Ring parameters.
#[derive(Clone, Copy, Debug)]
pub struct RingConfig {
    pub nprocs: usize,
    pub rounds: usize,
    /// Simulated work between forwards (ns).
    pub hop_cost: u64,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            nprocs: 4,
            rounds: 3,
            hop_cost: 10_000,
        }
    }
}

fn node(ctx: &mut ProcessCtx, cfg: &RingConfig, rank: usize) {
    let site = ctx.site("ring.c", 12, "ring");
    let cfg = *cfg;
    ctx.scope(site, [rank as i64, cfg.rounds as i64], move |ctx| {
        let next = Rank(((rank + 1) % cfg.nprocs) as u32);
        let prev = Rank(((rank + cfg.nprocs - 1) % cfg.nprocs) as u32);
        for round in 0..cfg.rounds {
            if rank == 0 {
                // Rank 0 injects the token, then waits for it to return.
                ctx.compute(cfg.hop_cost, site);
                ctx.send(next, TAG_TOKEN, Payload::from_i64(round as i64), site);
                let tok = ctx.recv_from(prev, TAG_TOKEN, site);
                assert_eq!(tok.payload.to_i64(), Some(round as i64));
            } else {
                let tok = ctx.recv_from(prev, TAG_TOKEN, site);
                ctx.compute(cfg.hop_cost, site);
                ctx.send(next, TAG_TOKEN, tok.payload, site);
            }
        }
    });
}

/// Build the ring programs.
pub fn programs(cfg: &RingConfig) -> Vec<ProgramFn> {
    assert!(cfg.nprocs >= 2);
    (0..cfg.nprocs)
        .map(|r| {
            let c = *cfg;
            let p: ProgramFn = Box::new(move |ctx| node(ctx, &c, r));
            p
        })
        .collect()
}

/// A reusable factory for debugger sessions.
pub fn factory(cfg: RingConfig) -> impl Fn() -> Vec<ProgramFn> + Send + Sync {
    move || programs(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_mpsim::{Engine, EngineConfig, RecorderConfig};
    use tracedbg_trace::EventKind;

    #[test]
    fn ring_completes_all_rounds() {
        let cfg = RingConfig::default();
        let mut e = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::full()),
            programs(&cfg),
        );
        assert!(e.run().is_completed());
        let store = e.trace_store();
        assert_eq!(
            store.of_kind(EventKind::Send).len(),
            cfg.nprocs * cfg.rounds
        );
        assert_eq!(
            store.of_kind(EventKind::RecvDone).len(),
            cfg.nprocs * cfg.rounds
        );
    }

    #[test]
    fn two_node_ring() {
        let cfg = RingConfig {
            nprocs: 2,
            rounds: 5,
            hop_cost: 100,
        };
        let mut e = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::comm_only()),
            programs(&cfg),
        );
        assert!(e.run().is_completed());
    }
}
