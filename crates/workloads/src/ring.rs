//! A token ring: deterministic pattern for replay/trace tests.
//!
//! The ring is the first workload ported to the resumable task engine:
//! `programs()` builds [`RankProgram::task`] ranks, and the retained
//! thread variant (`thread_programs`) exists so the equivalence test can
//! pin byte-identical traces across both backends.

use tracedbg_mpsim::task::TaskOp;
use tracedbg_mpsim::{
    Payload, ProcessCtx, Prog, ProgramFn, Rank, RankProgram, SendMode, SiteId, Tag,
};

const TAG_TOKEN: Tag = Tag(20);

/// Ring parameters.
#[derive(Clone, Copy, Debug)]
pub struct RingConfig {
    pub nprocs: usize,
    pub rounds: usize,
    /// Simulated work between forwards (ns).
    pub hop_cost: u64,
    /// Number of distinct token tags. `0` (and `1`) keep the classic
    /// single `Tag(20)`; with a stride `k`, round `r` circulates on
    /// `Tag(20 + r % k)` — gives tag-indexed queries real selectivity on
    /// large rings (the store bench workload).
    pub tag_stride: usize,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            nprocs: 4,
            rounds: 3,
            hop_cost: 10_000,
            tag_stride: 0,
        }
    }
}

fn node(ctx: &mut ProcessCtx, cfg: &RingConfig, rank: usize) {
    let site = ctx.site("ring.c", 12, "ring");
    let cfg = *cfg;
    ctx.scope(site, [rank as i64, cfg.rounds as i64], move |ctx| {
        let next = Rank(((rank + 1) % cfg.nprocs) as u32);
        let prev = Rank(((rank + cfg.nprocs - 1) % cfg.nprocs) as u32);
        for round in 0..cfg.rounds {
            // Every rank derives the same per-round tag, so the token
            // still matches deterministically.
            let tag = if cfg.tag_stride > 1 {
                Tag(TAG_TOKEN.0 + (round % cfg.tag_stride) as i32)
            } else {
                TAG_TOKEN
            };
            if rank == 0 {
                // Rank 0 injects the token, then waits for it to return.
                ctx.compute(cfg.hop_cost, site);
                ctx.send(next, tag, Payload::from_i64(round as i64), site);
                let tok = ctx.recv_from(prev, tag, site);
                assert_eq!(tok.payload.to_i64(), Some(round as i64));
            } else {
                let tok = ctx.recv_from(prev, tag, site);
                ctx.compute(cfg.hop_cost, site);
                ctx.send(next, tag, tok.payload, site);
            }
        }
    });
}

/// Per-rank task state: config + identity, plus the loop cursor and the
/// in-flight token.
#[derive(Clone)]
struct RingState {
    cfg: RingConfig,
    rank: usize,
    site: SiteId,
    round: i64,
    tok: Payload,
}

impl RingState {
    fn next(&self) -> Rank {
        Rank(((self.rank + 1) % self.cfg.nprocs) as u32)
    }
    fn prev(&self) -> Rank {
        Rank(((self.rank + self.cfg.nprocs - 1) % self.cfg.nprocs) as u32)
    }
    fn tag(&self) -> Tag {
        if self.cfg.tag_stride > 1 {
            Tag(TAG_TOKEN.0 + (self.round as usize % self.cfg.tag_stride) as i32)
        } else {
            TAG_TOKEN
        }
    }
}

fn node_prog() -> Prog<RingState> {
    Prog::seq(vec![
        Prog::act(|s: &mut RingState, v| s.site = v.site("ring.c", 12, "ring")),
        Prog::scope(
            |s: &mut RingState, _| (s.site, [s.rank as i64, s.cfg.rounds as i64]),
            Prog::for_range(
                |s: &RingState, _| (0, s.cfg.rounds as i64),
                |s: &mut RingState, i| s.round = i,
                Prog::if_else(
                    |s: &RingState, _| s.rank == 0,
                    // Rank 0 injects the token, then waits for it to return.
                    Prog::seq(vec![
                        Prog::op(|s: &mut RingState, _| TaskOp::Compute {
                            cost_ns: s.cfg.hop_cost,
                            site: s.site,
                        }),
                        Prog::op(|s: &mut RingState, _| TaskOp::Send {
                            dst: s.next(),
                            tag: s.tag(),
                            payload: Payload::from_i64(s.round),
                            site: s.site,
                            mode: SendMode::Buffered,
                        }),
                        Prog::op_bind(
                            |s: &mut RingState, _| TaskOp::Recv {
                                src: Some(s.prev()),
                                tag: Some(s.tag()),
                                site: s.site,
                            },
                            |s, tok, _| {
                                assert_eq!(tok.message().payload.to_i64(), Some(s.round));
                            },
                        ),
                    ]),
                    Prog::seq(vec![
                        Prog::op_bind(
                            |s: &mut RingState, _| TaskOp::Recv {
                                src: Some(s.prev()),
                                tag: Some(s.tag()),
                                site: s.site,
                            },
                            |s, tok, _| s.tok = tok.message().payload,
                        ),
                        Prog::op(|s: &mut RingState, _| TaskOp::Compute {
                            cost_ns: s.cfg.hop_cost,
                            site: s.site,
                        }),
                        Prog::op(|s: &mut RingState, _| TaskOp::Send {
                            dst: s.next(),
                            tag: s.tag(),
                            payload: s.tok.clone(),
                            site: s.site,
                            mode: SendMode::Buffered,
                        }),
                    ]),
                ),
            ),
        ),
    ])
}

/// Build the ring programs (task-backed).
pub fn programs(cfg: &RingConfig) -> Vec<RankProgram> {
    assert!(cfg.nprocs >= 2);
    let prog = node_prog();
    (0..cfg.nprocs)
        .map(|r| {
            RankProgram::task(
                RingState {
                    cfg: *cfg,
                    rank: r,
                    site: SiteId(0),
                    round: 0,
                    tok: Payload::empty(),
                },
                prog.clone(),
            )
        })
        .collect()
}

/// The legacy thread-backed ring, kept for backend-equivalence tests.
pub fn thread_programs(cfg: &RingConfig) -> Vec<ProgramFn> {
    assert!(cfg.nprocs >= 2);
    (0..cfg.nprocs)
        .map(|r| {
            let c = *cfg;
            let p: ProgramFn = Box::new(move |ctx| node(ctx, &c, r));
            p
        })
        .collect()
}

/// A reusable factory for debugger sessions.
pub fn factory(cfg: RingConfig) -> impl Fn() -> Vec<RankProgram> + Send + Sync {
    move || programs(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_mpsim::{Engine, EngineConfig, RecorderConfig};
    use tracedbg_trace::EventKind;

    #[test]
    fn ring_completes_all_rounds() {
        let cfg = RingConfig::default();
        let mut e = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::full()),
            programs(&cfg),
        );
        assert!(e.run().is_completed());
        let store = e.trace_store();
        assert_eq!(
            store.of_kind(EventKind::Send).len(),
            cfg.nprocs * cfg.rounds
        );
        assert_eq!(
            store.of_kind(EventKind::RecvDone).len(),
            cfg.nprocs * cfg.rounds
        );
    }

    #[test]
    fn two_node_ring() {
        let cfg = RingConfig {
            nprocs: 2,
            rounds: 5,
            hop_cost: 100,
            tag_stride: 0,
        };
        let mut e = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::comm_only()),
            programs(&cfg),
        );
        assert!(e.run().is_completed());
    }

    #[test]
    fn tag_stride_spreads_rounds_over_distinct_tags() {
        let cfg = RingConfig {
            nprocs: 3,
            rounds: 8,
            hop_cost: 100,
            tag_stride: 4,
        };
        let mut e = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::comm_only()),
            programs(&cfg),
        );
        assert!(e.run().is_completed());
        let store = e.trace_store();
        let mut tags: Vec<i32> = store
            .records()
            .iter()
            .filter(|r| r.kind == EventKind::Send)
            .filter_map(|r| r.msg.as_ref().map(|m| m.tag.0))
            .collect();
        let sends = tags.len();
        tags.sort();
        tags.dedup();
        assert_eq!(tags, vec![20, 21, 22, 23]);
        // Each tag carries exactly rounds/stride of the traffic.
        assert_eq!(sends, cfg.rounds * cfg.nprocs);
    }

    /// The tentpole's acceptance bar: the task backend must trace
    /// byte-identically to the thread backend at a fixed seed.
    #[test]
    fn task_ring_matches_thread_ring_trace() {
        let cfg = RingConfig::default();
        let collect = |mut e: Engine| {
            let store = e.trace_store();
            format!("{:?}", store.records())
        };
        let mut et = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::full()),
            thread_programs(&cfg),
        );
        assert!(et.run().is_completed());
        let mut ek = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::full()),
            programs(&cfg),
        );
        assert!(ek.run().is_completed());
        assert_eq!(collect(et), collect(ek));
    }
}
