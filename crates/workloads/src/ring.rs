//! A token ring: deterministic pattern for replay/trace tests.

use tracedbg_mpsim::{Payload, ProcessCtx, ProgramFn, Rank, Tag};

const TAG_TOKEN: Tag = Tag(20);

/// Ring parameters.
#[derive(Clone, Copy, Debug)]
pub struct RingConfig {
    pub nprocs: usize,
    pub rounds: usize,
    /// Simulated work between forwards (ns).
    pub hop_cost: u64,
    /// Number of distinct token tags. `0` (and `1`) keep the classic
    /// single `Tag(20)`; with a stride `k`, round `r` circulates on
    /// `Tag(20 + r % k)` — gives tag-indexed queries real selectivity on
    /// large rings (the store bench workload).
    pub tag_stride: usize,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            nprocs: 4,
            rounds: 3,
            hop_cost: 10_000,
            tag_stride: 0,
        }
    }
}

fn node(ctx: &mut ProcessCtx, cfg: &RingConfig, rank: usize) {
    let site = ctx.site("ring.c", 12, "ring");
    let cfg = *cfg;
    ctx.scope(site, [rank as i64, cfg.rounds as i64], move |ctx| {
        let next = Rank(((rank + 1) % cfg.nprocs) as u32);
        let prev = Rank(((rank + cfg.nprocs - 1) % cfg.nprocs) as u32);
        for round in 0..cfg.rounds {
            // Every rank derives the same per-round tag, so the token
            // still matches deterministically.
            let tag = if cfg.tag_stride > 1 {
                Tag(TAG_TOKEN.0 + (round % cfg.tag_stride) as i32)
            } else {
                TAG_TOKEN
            };
            if rank == 0 {
                // Rank 0 injects the token, then waits for it to return.
                ctx.compute(cfg.hop_cost, site);
                ctx.send(next, tag, Payload::from_i64(round as i64), site);
                let tok = ctx.recv_from(prev, tag, site);
                assert_eq!(tok.payload.to_i64(), Some(round as i64));
            } else {
                let tok = ctx.recv_from(prev, tag, site);
                ctx.compute(cfg.hop_cost, site);
                ctx.send(next, tag, tok.payload, site);
            }
        }
    });
}

/// Build the ring programs.
pub fn programs(cfg: &RingConfig) -> Vec<ProgramFn> {
    assert!(cfg.nprocs >= 2);
    (0..cfg.nprocs)
        .map(|r| {
            let c = *cfg;
            let p: ProgramFn = Box::new(move |ctx| node(ctx, &c, r));
            p
        })
        .collect()
}

/// A reusable factory for debugger sessions.
pub fn factory(cfg: RingConfig) -> impl Fn() -> Vec<ProgramFn> + Send + Sync {
    move || programs(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_mpsim::{Engine, EngineConfig, RecorderConfig};
    use tracedbg_trace::EventKind;

    #[test]
    fn ring_completes_all_rounds() {
        let cfg = RingConfig::default();
        let mut e = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::full()),
            programs(&cfg),
        );
        assert!(e.run().is_completed());
        let store = e.trace_store();
        assert_eq!(
            store.of_kind(EventKind::Send).len(),
            cfg.nprocs * cfg.rounds
        );
        assert_eq!(
            store.of_kind(EventKind::RecvDone).len(),
            cfg.nprocs * cfg.rounds
        );
    }

    #[test]
    fn two_node_ring() {
        let cfg = RingConfig {
            nprocs: 2,
            rounds: 5,
            hop_cost: 100,
            tag_stride: 0,
        };
        let mut e = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::comm_only()),
            programs(&cfg),
        );
        assert!(e.run().is_completed());
    }

    #[test]
    fn tag_stride_spreads_rounds_over_distinct_tags() {
        let cfg = RingConfig {
            nprocs: 3,
            rounds: 8,
            hop_cost: 100,
            tag_stride: 4,
        };
        let mut e = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::comm_only()),
            programs(&cfg),
        );
        assert!(e.run().is_completed());
        let store = e.trace_store();
        let mut tags: Vec<i32> = store
            .records()
            .iter()
            .filter(|r| r.kind == EventKind::Send)
            .filter_map(|r| r.msg.as_ref().map(|m| m.tag.0))
            .collect();
        let sends = tags.len();
        tags.sort();
        tags.dedup();
        assert_eq!(tags, vec![20, 21, 22, 23]);
        // Each tag carries exactly rounds/stride of the traffic.
        assert_eq!(sends, cfg.rounds * cfg.nprocs);
    }
}
