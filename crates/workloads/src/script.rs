//! A scriptable message-passing mini-language with source-to-source
//! instrumentation — the AIMS / `uinst` analog (§2.1–2.2).
//!
//! The paper's first instrumentation strategy rewrites program *source*,
//! inserting monitoring calls at "an arbitrary level of resolution ranging
//! from function entry/exit to individual assignment statements". Rust
//! workloads can't be rewritten at run time, so this module provides a
//! small interpreted language whose programs are data:
//!
//! ```text
//! fn worker
//!   recv from 0 tag 1 into x
//!   let y = x * 2
//!   send 0 tag 2 y
//! end
//! fn main
//!   if rank == 0
//!     send 1 tag 1 21
//!     recv from 1 tag 2 into r
//!   else
//!     call worker
//!   end
//! end
//! ```
//!
//! [`instrument_source`] is the `uinst` analog: it parses a script,
//! inserts `trace` statements (which execute as probe events) at the
//! requested [`InstrumentLevel`], and prints the transformed source back —
//! a genuine source-to-source pass whose output is again a valid script.
//! The instrumented program computes exactly what the original does; it
//! just generates more history.
#![allow(clippy::unnecessary_to_owned)] // the hand-rolled parser passes owned token slices

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use tracedbg_mpsim::task::TaskOp;
use tracedbg_mpsim::{
    OpResult, Payload, Rank, RankProgram, SendMode, SiteId, Tag, TaskProgram, TaskView,
};
use tracedbg_trace::CollKind;

/// Where the source-to-source pass inserts `trace` statements.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InstrumentLevel {
    /// At every function entry and exit (gcc `-p` / UserMonitor density).
    Functions,
    /// Before every statement (AIMS's finest resolution).
    Statements,
}

/// Expressions over 64-bit integers.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    Const(i64),
    /// A variable reference; `rank` and `nprocs` are builtins.
    Var(String),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Mod(Box<Expr>, Box<Expr>),
}

/// Comparisons for `if` / `while`.
#[derive(Clone, Debug, PartialEq)]
pub enum Cond {
    Eq(Expr, Expr),
    Ne(Expr, Expr),
    Lt(Expr, Expr),
}

/// One statement, tagged with its source line.
#[derive(Clone, Debug, PartialEq)]
pub struct Stmt {
    pub line: u32,
    pub kind: StmtKind,
}

#[derive(Clone, Debug, PartialEq)]
pub enum StmtKind {
    /// `let x = expr`
    Let { var: String, value: Expr },
    /// `compute expr` — simulated work of that many ns.
    Compute { cost: Expr },
    /// `send dst tag T expr`
    Send { dst: Expr, tag: i32, value: Expr },
    /// `recv from src tag T into x` (src `any` = wildcard)
    Recv {
        src: Option<Expr>,
        tag: Option<i32>,
        var: String,
    },
    /// `trace "label" expr?` — an instrumentation probe (what the
    /// source-to-source pass inserts).
    Trace { label: String, value: Option<Expr> },
    /// `call f`
    Call { func: String },
    /// `loop i from to ... end` (inclusive start, exclusive end)
    Loop {
        var: String,
        from: Expr,
        to: Expr,
        body: Vec<Stmt>,
    },
    /// `if cond ... else ... end`
    If {
        cond: Cond,
        then: Vec<Stmt>,
        els: Vec<Stmt>,
    },
    /// `barrier`
    Barrier,
}

/// A parsed script: named functions, entry point `main`.
#[derive(Clone, Debug, PartialEq)]
pub struct Script {
    pub functions: BTreeMap<String, Vec<Stmt>>,
}

/// Parse / runtime errors.
#[derive(Debug)]
pub struct ScriptError {
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for ScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "script error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScriptError {}

fn err(line: u32, message: impl Into<String>) -> ScriptError {
    ScriptError {
        line,
        message: message.into(),
    }
}

// ---------------------------------------------------------------- parsing

/// Tokenize one expression from a token stream (shunting-free: the grammar
/// is `term (op term)*`, left-associative, no precedence — parenthesize).
fn parse_expr(
    tokens: &mut std::iter::Peekable<std::vec::IntoIter<String>>,
    line: u32,
) -> Result<Expr, ScriptError> {
    fn term(
        tokens: &mut std::iter::Peekable<std::vec::IntoIter<String>>,
        line: u32,
    ) -> Result<Expr, ScriptError> {
        let t = tokens
            .next()
            .ok_or_else(|| err(line, "expected expression"))?;
        if t == "(" {
            let e = parse_expr(tokens, line)?;
            match tokens.next() {
                Some(ref c) if c == ")" => Ok(e),
                _ => Err(err(line, "expected ')'")),
            }
        } else if let Ok(n) = t.parse::<i64>() {
            Ok(Expr::Const(n))
        } else if t.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            Ok(Expr::Var(t))
        } else {
            Err(err(line, format!("bad token {t:?} in expression")))
        }
    }
    let mut lhs = term(tokens, line)?;
    while let Some(op) = tokens.peek().cloned() {
        let combine: fn(Box<Expr>, Box<Expr>) -> Expr = match op.as_str() {
            "+" => Expr::Add,
            "-" => Expr::Sub,
            "*" => Expr::Mul,
            "%" => Expr::Mod,
            _ => break,
        };
        tokens.next();
        let rhs = term(tokens, line)?;
        lhs = combine(Box::new(lhs), Box::new(rhs));
    }
    Ok(lhs)
}

fn tokenize(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                // string literal token, kept with quotes
                let mut s = String::from("\"");
                for c2 in chars.by_ref() {
                    s.push(c2);
                    if c2 == '"' {
                        break;
                    }
                }
                out.push(s);
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            '(' | ')' | '+' | '-' | '*' | '%' => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                out.push(c.to_string());
            }
            '=' | '!' | '<' => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                if c != '<' && chars.peek() == Some(&'=') {
                    chars.next();
                    out.push(format!("{c}="));
                } else {
                    out.push(c.to_string());
                }
            }
            _ => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_cond(tokens: Vec<String>, line: u32) -> Result<Cond, ScriptError> {
    // Split on the comparison operator.
    let pos = tokens
        .iter()
        .position(|t| t == "==" || t == "!=" || t == "<")
        .ok_or_else(|| err(line, "expected comparison"))?;
    let op = tokens[pos].clone();
    let mut lhs_toks = tokens[..pos].to_vec().into_iter().peekable();
    let mut rhs_toks = tokens[pos + 1..].to_vec().into_iter().peekable();
    let lhs = parse_expr(&mut lhs_toks, line)?;
    let rhs = parse_expr(&mut rhs_toks, line)?;
    Ok(match op.as_str() {
        "==" => Cond::Eq(lhs, rhs),
        "!=" => Cond::Ne(lhs, rhs),
        "<" => Cond::Lt(lhs, rhs),
        _ => unreachable!(),
    })
}

struct Frame {
    stmts: Vec<Stmt>,
    kind: FrameKind,
    line: u32,
}

enum FrameKind {
    Fn(String),
    Loop { var: String, from: Expr, to: Expr },
    IfThen(Cond),
    IfElse { cond: Cond, then: Vec<Stmt> },
}

fn push_to(stack: &mut [Frame], line: u32, kind: StmtKind) -> Result<(), ScriptError> {
    stack
        .last_mut()
        .ok_or_else(|| err(line, "statement outside a function"))?
        .stmts
        .push(Stmt { line, kind });
    Ok(())
}

/// Parse a whole script.
pub fn parse(src: &str) -> Result<Script, ScriptError> {
    let mut functions = BTreeMap::new();
    let mut stack: Vec<Frame> = Vec::new();
    for (ix, raw) in src.lines().enumerate() {
        let lno = ix as u32 + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens = tokenize(line);
        let head = tokens[0].as_str();
        match head {
            "fn" => {
                if stack.iter().any(|f| matches!(f.kind, FrameKind::Fn(_))) {
                    return Err(err(lno, "nested fn"));
                }
                let name = tokens
                    .get(1)
                    .ok_or_else(|| err(lno, "fn needs a name"))?
                    .clone();
                stack.push(Frame {
                    stmts: Vec::new(),
                    kind: FrameKind::Fn(name),
                    line: lno,
                });
            }
            "end" => {
                let frame = stack.pop().ok_or_else(|| err(lno, "stray end"))?;
                match frame.kind {
                    FrameKind::Fn(name) => {
                        functions.insert(name, frame.stmts);
                    }
                    FrameKind::Loop { var, from, to } => {
                        let kind = StmtKind::Loop {
                            var,
                            from,
                            to,
                            body: frame.stmts,
                        };
                        let line = frame.line;
                        stack
                            .last_mut()
                            .ok_or_else(|| err(lno, "block outside a function"))?
                            .stmts
                            .push(Stmt { line, kind });
                    }
                    FrameKind::IfThen(cond) => {
                        let kind = StmtKind::If {
                            cond,
                            then: frame.stmts,
                            els: Vec::new(),
                        };
                        let line = frame.line;
                        stack
                            .last_mut()
                            .ok_or_else(|| err(lno, "block outside a function"))?
                            .stmts
                            .push(Stmt { line, kind });
                    }
                    FrameKind::IfElse { cond, then } => {
                        let kind = StmtKind::If {
                            cond,
                            then,
                            els: frame.stmts,
                        };
                        let line = frame.line;
                        stack
                            .last_mut()
                            .ok_or_else(|| err(lno, "block outside a function"))?
                            .stmts
                            .push(Stmt { line, kind });
                    }
                }
            }
            "else" => {
                let frame = stack.pop().ok_or_else(|| err(lno, "stray else"))?;
                match frame.kind {
                    FrameKind::IfThen(cond) => stack.push(Frame {
                        stmts: Vec::new(),
                        kind: FrameKind::IfElse {
                            cond,
                            then: frame.stmts,
                        },
                        line: frame.line,
                    }),
                    _ => return Err(err(lno, "else without if")),
                }
            }
            "loop" => {
                // loop <var> <from-expr> <to-expr>
                let var = tokens
                    .get(1)
                    .ok_or_else(|| err(lno, "loop needs a variable"))?
                    .clone();
                let mut it = tokens[2..].to_vec().into_iter().peekable();
                let from = parse_expr(&mut it, lno)?;
                let to = parse_expr(&mut it, lno)?;
                stack.push(Frame {
                    stmts: Vec::new(),
                    kind: FrameKind::Loop { var, from, to },
                    line: lno,
                });
            }
            "if" => {
                let cond = parse_cond(tokens[1..].to_vec(), lno)?;
                stack.push(Frame {
                    stmts: Vec::new(),
                    kind: FrameKind::IfThen(cond),
                    line: lno,
                });
            }
            "let" => {
                // let x = expr
                let var = tokens
                    .get(1)
                    .ok_or_else(|| err(lno, "let needs a variable"))?
                    .clone();
                if tokens.get(2).map(String::as_str) != Some("=") {
                    return Err(err(lno, "let needs '='"));
                }
                let mut it = tokens[3..].to_vec().into_iter().peekable();
                let value = parse_expr(&mut it, lno)?;
                push_to(&mut stack, lno, StmtKind::Let { var, value })?;
            }
            "compute" => {
                let mut it = tokens[1..].to_vec().into_iter().peekable();
                let cost = parse_expr(&mut it, lno)?;
                push_to(&mut stack, lno, StmtKind::Compute { cost })?;
            }
            "send" => {
                // send <dst-expr> tag <n> <value-expr>
                let tag_pos = tokens
                    .iter()
                    .position(|t| t == "tag")
                    .ok_or_else(|| err(lno, "send needs 'tag'"))?;
                let mut dst_it = tokens[1..tag_pos].to_vec().into_iter().peekable();
                let dst = parse_expr(&mut dst_it, lno)?;
                let tag: i32 = tokens
                    .get(tag_pos + 1)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(lno, "send needs a numeric tag"))?;
                let mut val_it = tokens[tag_pos + 2..].to_vec().into_iter().peekable();
                let value = parse_expr(&mut val_it, lno)?;
                push_to(&mut stack, lno, StmtKind::Send { dst, tag, value })?;
            }
            "recv" => {
                // recv from <src-expr|any> [tag <n>] into <var>
                if tokens.get(1).map(String::as_str) != Some("from") {
                    return Err(err(lno, "recv needs 'from'"));
                }
                let into_pos = tokens
                    .iter()
                    .position(|t| t == "into")
                    .ok_or_else(|| err(lno, "recv needs 'into'"))?;
                let tag_pos = tokens.iter().position(|t| t == "tag");
                let src_end = tag_pos.unwrap_or(into_pos);
                let src = if tokens.get(2).map(String::as_str) == Some("any") {
                    None
                } else {
                    let mut it = tokens[2..src_end].to_vec().into_iter().peekable();
                    Some(parse_expr(&mut it, lno)?)
                };
                let tag = match tag_pos {
                    Some(p) => Some(
                        tokens
                            .get(p + 1)
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| err(lno, "bad tag"))?,
                    ),
                    None => None,
                };
                let var = tokens
                    .get(into_pos + 1)
                    .ok_or_else(|| err(lno, "recv needs a variable after 'into'"))?
                    .clone();
                push_to(&mut stack, lno, StmtKind::Recv { src, tag, var })?;
            }
            "trace" => {
                // trace "label" [expr]
                let label = tokens
                    .get(1)
                    .filter(|t| t.starts_with('"') && t.ends_with('"'))
                    .map(|t| t[1..t.len() - 1].to_string())
                    .ok_or_else(|| err(lno, "trace needs a quoted label"))?;
                let value = if tokens.len() > 2 {
                    let mut it = tokens[2..].to_vec().into_iter().peekable();
                    Some(parse_expr(&mut it, lno)?)
                } else {
                    None
                };
                push_to(&mut stack, lno, StmtKind::Trace { label, value })?;
            }
            "call" => {
                let func = tokens
                    .get(1)
                    .ok_or_else(|| err(lno, "call needs a function name"))?
                    .clone();
                push_to(&mut stack, lno, StmtKind::Call { func })?;
            }
            "barrier" => push_to(&mut stack, lno, StmtKind::Barrier)?,
            other => return Err(err(lno, format!("unknown statement {other:?}"))),
        }
    }
    if let Some(f) = stack.last() {
        return Err(err(f.line, "unclosed block"));
    }
    if !functions.contains_key("main") {
        return Err(err(0, "no 'fn main'"));
    }
    Ok(Script { functions })
}

// ------------------------------------------------------------- execution

/// One suspended activation in the script task's explicit call/loop stack.
#[derive(Clone)]
enum SFrame {
    /// A statement block of function `func` with a cursor.
    Block {
        stmts: Arc<Vec<Stmt>>,
        func: Arc<str>,
        idx: usize,
    },
    /// A `loop` mid-flight (bounds were evaluated at entry).
    Loop {
        var: String,
        cur: i64,
        end: i64,
        body: Arc<Vec<Stmt>>,
        func: Arc<str>,
    },
    /// Emit `FnExit` for this scope once the frames above are done.
    ScopeExit { site: SiteId },
}

/// A resumable script interpreter: one rank's run-time state, poll-able
/// by the engine. Where the old thread-backed interpreter recursed down
/// the statement tree, this one keeps an explicit stack of [`SFrame`]s,
/// yields a [`TaskOp`] at every communication/instrumentation point, and
/// clones into an [`EngineCheckpoint`](tracedbg_mpsim::EngineCheckpoint)
/// as plain data. Runtime errors panic the task (reported through the
/// engine as a process panic, message unchanged).
#[derive(Clone)]
struct ScriptTask {
    script: Arc<Script>,
    file: Arc<str>,
    vars: BTreeMap<String, i64>,
    stack: Vec<SFrame>,
    /// A posted `recv` waiting to bind its message: `(var, line)`.
    pending_recv: Option<(String, u32)>,
    started: bool,
}

impl ScriptTask {
    fn eval(&self, e: &Expr, line: u32, view: &TaskView<'_>) -> i64 {
        match e {
            Expr::Const(n) => *n,
            Expr::Var(v) => match v.as_str() {
                "rank" => view.rank.0 as i64,
                "nprocs" => view.n_ranks as i64,
                _ => *self.vars.get(v).unwrap_or_else(|| {
                    panic!("{}", err(line, format!("undefined variable {v:?}")))
                }),
            },
            Expr::Add(a, b) => self.eval(a, line, view) + self.eval(b, line, view),
            Expr::Sub(a, b) => self.eval(a, line, view) - self.eval(b, line, view),
            Expr::Mul(a, b) => self.eval(a, line, view) * self.eval(b, line, view),
            Expr::Mod(a, b) => {
                let d = self.eval(b, line, view);
                if d == 0 {
                    panic!("{}", err(line, "modulo by zero"));
                }
                self.eval(a, line, view) % d
            }
        }
    }

    fn test(&self, c: &Cond, line: u32, view: &TaskView<'_>) -> bool {
        match c {
            Cond::Eq(a, b) => self.eval(a, line, view) == self.eval(b, line, view),
            Cond::Ne(a, b) => self.eval(a, line, view) != self.eval(b, line, view),
            Cond::Lt(a, b) => self.eval(a, line, view) < self.eval(b, line, view),
        }
    }

    /// Execute one statement: control flow pushes frames and returns
    /// `None`; anything the engine must see returns its op.
    fn exec(&mut self, s: &Stmt, func: &Arc<str>, view: &TaskView<'_>) -> Option<TaskOp> {
        let site = view.site(&self.file, s.line, func);
        match &s.kind {
            StmtKind::Let { var, value } => {
                let v = self.eval(value, s.line, view);
                self.vars.insert(var.clone(), v);
                None
            }
            StmtKind::Compute { cost } => Some(TaskOp::Compute {
                cost_ns: self.eval(cost, s.line, view).max(0) as u64,
                site,
            }),
            StmtKind::Send { dst, tag, value } => {
                let d = self.eval(dst, s.line, view);
                if d < 0 || d as usize >= view.n_ranks {
                    panic!("{}", err(s.line, format!("send to bad rank {d}")));
                }
                let v = self.eval(value, s.line, view);
                Some(TaskOp::Send {
                    dst: Rank(d as u32),
                    tag: Tag(*tag),
                    payload: Payload::from_i64(v),
                    site,
                    mode: SendMode::Buffered,
                })
            }
            StmtKind::Recv { src, tag, var } => {
                let src_rank = match src {
                    Some(e) => {
                        let r = self.eval(e, s.line, view);
                        if r < 0 || r as usize >= view.n_ranks {
                            panic!("{}", err(s.line, format!("recv from bad rank {r}")));
                        }
                        Some(Rank(r as u32))
                    }
                    None => None,
                };
                self.pending_recv = Some((var.clone(), s.line));
                Some(TaskOp::Recv {
                    src: src_rank,
                    tag: tag.map(Tag),
                    site,
                })
            }
            StmtKind::Trace { label, value } => Some(TaskOp::Probe {
                label: label.clone(),
                value: match value {
                    Some(e) => self.eval(e, s.line, view),
                    None => 0,
                },
                site,
            }),
            StmtKind::Call { func: callee } => {
                let body = self
                    .script
                    .functions
                    .get(callee)
                    .unwrap_or_else(|| {
                        panic!("{}", err(s.line, format!("unknown function {callee:?}")))
                    })
                    .clone();
                let fsite = view.site(&self.file, s.line, callee);
                self.stack.push(SFrame::ScopeExit { site: fsite });
                self.stack.push(SFrame::Block {
                    stmts: Arc::new(body),
                    func: Arc::from(callee.as_str()),
                    idx: 0,
                });
                Some(TaskOp::Enter {
                    site: fsite,
                    args: [0, 0],
                })
            }
            StmtKind::Loop {
                var,
                from,
                to,
                body,
            } => {
                let a = self.eval(from, s.line, view);
                let b = self.eval(to, s.line, view);
                self.stack.push(SFrame::Loop {
                    var: var.clone(),
                    cur: a,
                    end: b,
                    body: Arc::new(body.clone()),
                    func: func.clone(),
                });
                None
            }
            StmtKind::If { cond, then, els } => {
                let branch = if self.test(cond, s.line, view) {
                    then
                } else {
                    els
                };
                self.stack.push(SFrame::Block {
                    stmts: Arc::new(branch.clone()),
                    func: func.clone(),
                    idx: 0,
                });
                None
            }
            StmtKind::Barrier => Some(TaskOp::Collective {
                kind: CollKind::Barrier,
                root: Rank(0),
                payload: Payload::empty(),
                op: None,
                site,
            }),
        }
    }
}

impl TaskProgram for ScriptTask {
    fn next(&mut self, input: OpResult, view: &TaskView<'_>) -> TaskOp {
        if let Some((var, line)) = self.pending_recv.take() {
            let m = input.message();
            let v = m
                .payload
                .to_i64()
                .unwrap_or_else(|| panic!("{}", err(line, "non-integer payload")));
            self.vars.insert(var.clone(), v);
            // The sender's rank is observable, like MPI_STATUS.
            self.vars.insert(format!("{var}_src"), m.src.0 as i64);
        }
        if !self.started {
            self.started = true;
            let fsite = view.site(&self.file, 0, "main");
            let main = self.script.functions["main"].clone();
            self.stack.push(SFrame::ScopeExit { site: fsite });
            self.stack.push(SFrame::Block {
                stmts: Arc::new(main),
                func: Arc::from("main"),
                idx: 0,
            });
            return TaskOp::Enter {
                site: fsite,
                args: [0, 0],
            };
        }
        loop {
            let Some(top) = self.stack.last_mut() else {
                return TaskOp::Done;
            };
            match top {
                SFrame::ScopeExit { site } => {
                    let site = *site;
                    self.stack.pop();
                    return TaskOp::Exit { site };
                }
                SFrame::Loop {
                    var,
                    cur,
                    end,
                    body,
                    func,
                } => {
                    if cur < end {
                        let i = *cur;
                        *cur += 1;
                        let var = var.clone();
                        let frame = SFrame::Block {
                            stmts: body.clone(),
                            func: func.clone(),
                            idx: 0,
                        };
                        self.vars.insert(var, i);
                        self.stack.push(frame);
                    } else {
                        self.stack.pop();
                    }
                }
                SFrame::Block { stmts, func, idx } => {
                    if *idx >= stmts.len() {
                        self.stack.pop();
                        continue;
                    }
                    let s = stmts[*idx].clone();
                    *idx += 1;
                    let func = func.clone();
                    if let Some(op) = self.exec(&s, &func, view) {
                        return op;
                    }
                }
            }
        }
    }

    fn snapshot(&self) -> Box<dyn TaskProgram> {
        Box::new(self.clone())
    }
}

/// Build one engine program per rank, all running the same script (SPMD,
/// like `mpirun`). Runtime errors panic the process (reported through the
/// engine as a process panic).
pub fn programs(script: &Script, nprocs: usize, file: &str) -> Vec<RankProgram> {
    assert!(nprocs >= 1);
    let script = Arc::new(script.clone());
    let file: Arc<str> = Arc::from(file);
    (0..nprocs)
        .map(|_| {
            let task: Box<dyn TaskProgram> = Box::new(ScriptTask {
                script: script.clone(),
                file: file.clone(),
                vars: BTreeMap::new(),
                stack: Vec::new(),
                pending_recv: None,
                started: false,
            });
            RankProgram::from(task)
        })
        .collect()
}

// --------------------------------------------- source-to-source (uinst)

/// Pretty-print a script back to source text.
pub fn print_script(s: &Script) -> String {
    let mut out = String::new();
    for (name, body) in &s.functions {
        let _ = writeln!(out, "fn {name}");
        print_block(&mut out, body, 1);
        let _ = writeln!(out, "end");
    }
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Const(n) => n.to_string(),
        Expr::Var(v) => v.clone(),
        Expr::Add(a, b) => format!("( {} + {} )", print_expr(a), print_expr(b)),
        Expr::Sub(a, b) => format!("( {} - {} )", print_expr(a), print_expr(b)),
        Expr::Mul(a, b) => format!("( {} * {} )", print_expr(a), print_expr(b)),
        Expr::Mod(a, b) => format!("( {} % {} )", print_expr(a), print_expr(b)),
    }
}

fn print_cond(c: &Cond) -> String {
    match c {
        Cond::Eq(a, b) => format!("{} == {}", print_expr(a), print_expr(b)),
        Cond::Ne(a, b) => format!("{} != {}", print_expr(a), print_expr(b)),
        Cond::Lt(a, b) => format!("{} < {}", print_expr(a), print_expr(b)),
    }
}

fn print_block(out: &mut String, stmts: &[Stmt], depth: usize) {
    for s in stmts {
        indent(out, depth);
        match &s.kind {
            StmtKind::Let { var, value } => {
                let _ = writeln!(out, "let {var} = {}", print_expr(value));
            }
            StmtKind::Compute { cost } => {
                let _ = writeln!(out, "compute {}", print_expr(cost));
            }
            StmtKind::Send { dst, tag, value } => {
                let _ = writeln!(
                    out,
                    "send {} tag {tag} {}",
                    print_expr(dst),
                    print_expr(value)
                );
            }
            StmtKind::Recv { src, tag, var } => {
                let src_s = src.as_ref().map(print_expr).unwrap_or_else(|| "any".into());
                match tag {
                    Some(t) => {
                        let _ = writeln!(out, "recv from {src_s} tag {t} into {var}");
                    }
                    None => {
                        let _ = writeln!(out, "recv from {src_s} into {var}");
                    }
                }
            }
            StmtKind::Trace { label, value } => match value {
                Some(v) => {
                    let _ = writeln!(out, "trace \"{label}\" {}", print_expr(v));
                }
                None => {
                    let _ = writeln!(out, "trace \"{label}\"");
                }
            },
            StmtKind::Call { func } => {
                let _ = writeln!(out, "call {func}");
            }
            StmtKind::Loop {
                var,
                from,
                to,
                body,
            } => {
                let _ = writeln!(out, "loop {var} {} {}", print_expr(from), print_expr(to));
                print_block(out, body, depth + 1);
                indent(out, depth);
                let _ = writeln!(out, "end");
            }
            StmtKind::If { cond, then, els } => {
                let _ = writeln!(out, "if {}", print_cond(cond));
                print_block(out, then, depth + 1);
                if !els.is_empty() {
                    indent(out, depth);
                    let _ = writeln!(out, "else");
                    print_block(out, els, depth + 1);
                }
                indent(out, depth);
                let _ = writeln!(out, "end");
            }
            StmtKind::Barrier => {
                let _ = writeln!(out, "barrier");
            }
        }
    }
}

fn instrument_block(stmts: &[Stmt], level: InstrumentLevel, func: &str) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in stmts {
        if level == InstrumentLevel::Statements && !matches!(s.kind, StmtKind::Trace { .. }) {
            out.push(Stmt {
                line: s.line,
                kind: StmtKind::Trace {
                    label: format!("@{func}:{}", s.line),
                    value: None,
                },
            });
        }
        let kind = match &s.kind {
            StmtKind::Loop {
                var,
                from,
                to,
                body,
            } => StmtKind::Loop {
                var: var.clone(),
                from: from.clone(),
                to: to.clone(),
                body: instrument_block(body, level, func),
            },
            StmtKind::If { cond, then, els } => StmtKind::If {
                cond: cond.clone(),
                then: instrument_block(then, level, func),
                els: instrument_block(els, level, func),
            },
            other => other.clone(),
        };
        out.push(Stmt { line: s.line, kind });
    }
    out
}

/// The `uinst` analog: parse `src`, insert `trace` instrumentation at the
/// requested level, and return the transformed source (which parses and
/// runs like any hand-written script).
pub fn instrument_source(src: &str, level: InstrumentLevel) -> Result<String, ScriptError> {
    let script = parse(src)?;
    let mut out = Script {
        functions: BTreeMap::new(),
    };
    for (name, body) in &script.functions {
        let mut new_body = Vec::new();
        // Function-entry instrumentation (both levels), like the mcount →
        // UserMonitor call in the prologue.
        new_body.push(Stmt {
            line: 0,
            kind: StmtKind::Trace {
                label: format!("enter {name}"),
                value: None,
            },
        });
        new_body.extend(instrument_block(body, level, name));
        new_body.push(Stmt {
            line: 0,
            kind: StmtKind::Trace {
                label: format!("exit {name}"),
                value: None,
            },
        });
        out.functions.insert(name.clone(), new_body);
    }
    Ok(print_script(&out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_mpsim::{Engine, EngineConfig, RecorderConfig};
    use tracedbg_trace::EventKind;

    const PINGPONG: &str = r#"
fn worker
  recv from 0 tag 1 into x
  let y = x * 2
  send 0 tag 2 y
end
fn main
  if rank == 0
    loop w 1 nprocs
      send w tag 1 ( w + 10 )
    end
    loop w 1 nprocs
      recv from any tag 2 into r
      trace "reply" r
    end
  else
    call worker
  end
end
"#;

    fn run_script(src: &str, nprocs: usize) -> tracedbg_trace::TraceStore {
        let script = parse(src).expect("parse");
        let mut e = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::full()),
            programs(&script, nprocs, "test.script"),
        );
        let out = e.run();
        assert!(out.is_completed(), "{out:?}");
        e.trace_store()
    }

    #[test]
    fn parse_and_run_pingpong() {
        let store = run_script(PINGPONG, 4);
        // 3 sends out, 3 replies.
        assert_eq!(store.of_kind(EventKind::Send).len(), 6);
        let replies: Vec<i64> = store
            .records()
            .iter()
            .filter(|r| r.label.as_deref() == Some("reply"))
            .map(|r| r.args[0])
            .collect();
        let mut sorted = replies.clone();
        sorted.sort();
        assert_eq!(sorted, vec![22, 24, 26]);
    }

    #[test]
    fn parse_errors_carry_lines() {
        let e = parse("fn main\n  bogus 1 2\nend\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"), "{e}");
        assert!(parse("fn main\n  let x = 1\n").is_err(), "unclosed");
        assert!(parse("fn other\nend\n").is_err(), "missing main");
    }

    #[test]
    fn arithmetic_and_builtins() {
        let src = r#"
fn main
  let a = ( 2 + 3 ) * 4
  trace "a" a
  let b = ( a % 7 )
  trace "b" b
  trace "me" rank
  trace "world" nprocs
end
"#;
        let store = run_script(src, 2);
        let probe = |label: &str| -> Vec<i64> {
            store
                .records()
                .iter()
                .filter(|r| r.label.as_deref() == Some(label))
                .map(|r| r.args[0])
                .collect()
        };
        assert_eq!(probe("a"), vec![20, 20]);
        assert_eq!(probe("b"), vec![6, 6]);
        let mut me = probe("me");
        me.sort();
        assert_eq!(me, vec![0, 1]);
        assert_eq!(probe("world"), vec![2, 2]);
    }

    #[test]
    fn barrier_statement_works() {
        let src = r#"
fn main
  compute ( ( rank + 1 ) * 1000 )
  barrier
  trace "past"
end
"#;
        let store = run_script(src, 3);
        assert_eq!(
            store
                .records()
                .iter()
                .filter(|r| matches!(r.kind, EventKind::Collective(_)))
                .count(),
            3
        );
    }

    #[test]
    fn roundtrip_print_parse() {
        let script = parse(PINGPONG).unwrap();
        let printed = print_script(&script);
        let reparsed = parse(&printed).expect("printed source parses");
        // Line numbers differ; compare structure via a second print.
        assert_eq!(printed, print_script(&reparsed));
    }

    #[test]
    fn uinst_function_level_adds_enter_exit() {
        let instrumented = instrument_source(PINGPONG, InstrumentLevel::Functions).unwrap();
        assert!(
            instrumented.contains("trace \"enter worker\""),
            "{instrumented}"
        );
        assert!(
            instrumented.contains("trace \"exit main\""),
            "{instrumented}"
        );
        // The instrumented program still computes the same replies.
        let store = run_script(&instrumented, 4);
        let mut replies: Vec<i64> = store
            .records()
            .iter()
            .filter(|r| r.label.as_deref() == Some("reply"))
            .map(|r| r.args[0])
            .collect();
        replies.sort();
        assert_eq!(replies, vec![22, 24, 26]);
    }

    #[test]
    fn statement_level_generates_more_history() {
        let fn_level = instrument_source(PINGPONG, InstrumentLevel::Functions).unwrap();
        let stmt_level = instrument_source(PINGPONG, InstrumentLevel::Statements).unwrap();
        let probes = |src: &str| {
            run_script(src, 4)
                .records()
                .iter()
                .filter(|r| r.kind == EventKind::Probe)
                .count()
        };
        let base = probes(PINGPONG);
        let f = probes(&fn_level);
        let s = probes(&stmt_level);
        assert!(base < f, "function-level adds probes: {base} vs {f}");
        assert!(f < s, "statement-level adds more: {f} vs {s}");
    }

    #[test]
    fn runtime_error_reports_as_panic() {
        let src = "fn main\n  send 99 tag 1 0\nend\n";
        let script = parse(src).unwrap();
        let mut e = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::full()),
            programs(&script, 2, "bad.script"),
        );
        match e.run() {
            tracedbg_mpsim::RunOutcome::Panicked { message, .. } => {
                assert!(message.contains("bad rank"), "{message}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn recv_status_variable() {
        let src = r#"
fn main
  if rank == 0
    recv from any tag 5 into v
    trace "from" v_src
  else
    send 0 tag 5 rank
  end
end
"#;
        let store = run_script(src, 2);
        let from: Vec<i64> = store
            .records()
            .iter()
            .filter(|r| r.label.as_deref() == Some("from"))
            .map(|r| r.args[0])
            .collect();
        assert_eq!(from, vec![1]);
    }
}
