//! Intentionally racy workloads — the explorer's prey.
//!
//! Both patterns complete cleanly under the deterministic round-robin
//! scheduler but hide a schedule-dependent bug behind a wildcard receive;
//! `tracedbg explore` must drive the runtime into the failing
//! interleavings and hand back minimal replayable schedules.
//!
//! * [`wildcard_race`] — the master assumes its first `ANY_SOURCE` message
//!   comes from worker 1 (who is "obviously" fastest). Any schedule that
//!   lets another worker's send land first fires the assertion: a classic
//!   wildcard-receive race ending in a panic.
//! * [`orphan_deadlock`] — the master takes one wildcard message, then
//!   issues a *directed* receive for a follow-up from that same source.
//!   Only worker 1 ever sends a follow-up; if the wildcard matches anyone
//!   else, the directed receive waits forever — a schedule-dependent,
//!   non-cyclic deadlock (the orphaned-receive shape of §4.4).

use tracedbg_mpsim::{Payload, ProcessCtx, ProgramFn, Rank, Tag};

const TAG_DATA: Tag = Tag(30);

/// Parameters for the racy patterns.
#[derive(Clone, Copy, Debug)]
pub struct RacyConfig {
    /// Total processes (master + nprocs-1 workers); at least 3.
    pub nprocs: usize,
    /// Simulated work (ns) worker 1 does before sending; the others do
    /// four times as much, which is why the "worker 1 is first" assumption
    /// *usually* holds.
    pub work: u64,
}

impl Default for RacyConfig {
    fn default() -> Self {
        RacyConfig {
            nprocs: 3,
            work: 50_000,
        }
    }
}

fn worker(ctx: &mut ProcessCtx, cfg: RacyConfig, rank: usize, extra_sends: usize) {
    let site = ctx.site("racy.c", 40, "worker");
    let slow = if rank == 1 { 1 } else { 4 };
    ctx.compute(cfg.work * slow, site);
    ctx.send(Rank(0), TAG_DATA, Payload::from_i64(rank as i64), site);
    for k in 0..extra_sends {
        ctx.send(Rank(0), TAG_DATA, Payload::from_i64((100 + k) as i64), site);
    }
}

/// The wildcard-race pattern: assertion failure on "wrong" match order.
pub fn wildcard_race(cfg: &RacyConfig) -> Vec<ProgramFn> {
    assert!(
        cfg.nprocs >= 3,
        "racy patterns need a master and 2+ workers"
    );
    let c = *cfg;
    let master: ProgramFn = Box::new(move |ctx| {
        let site = ctx.site("racy.c", 12, "master");
        let first = ctx.recv_any(Some(TAG_DATA), site);
        ctx.probe("first_src", first.src.0 as i64, site);
        // The bug: worker 1 is assumed fastest, but nothing enforces it.
        assert_eq!(first.src, Rank(1), "master assumed worker 1 reports first");
        for _ in 0..c.nprocs - 2 {
            let _ = ctx.recv_any(Some(TAG_DATA), site);
        }
    });
    let mut progs = vec![master];
    for r in 1..c.nprocs {
        progs.push(Box::new(move |ctx: &mut ProcessCtx| worker(ctx, c, r, 0)) as ProgramFn);
    }
    progs
}

/// A reusable factory for sessions and the explorer.
pub fn wildcard_race_factory(cfg: RacyConfig) -> impl Fn() -> Vec<ProgramFn> + Send + Sync {
    move || wildcard_race(&cfg)
}

/// The orphaned-receive pattern: schedule-dependent non-cyclic deadlock.
pub fn orphan_deadlock(cfg: &RacyConfig) -> Vec<ProgramFn> {
    assert!(
        cfg.nprocs >= 3,
        "racy patterns need a master and 2+ workers"
    );
    let c = *cfg;
    let master: ProgramFn = Box::new(move |ctx| {
        let site = ctx.site("racy.c", 24, "master");
        let first = ctx.recv_any(Some(TAG_DATA), site);
        ctx.probe("first_src", first.src.0 as i64, site);
        // The bug: only worker 1 sends a follow-up message, but the
        // directed receive targets whoever happened to match first.
        let _ = ctx.recv_from(first.src, TAG_DATA, site);
        for _ in 0..c.nprocs - 2 {
            let _ = ctx.recv_any(Some(TAG_DATA), site);
        }
    });
    let mut progs = vec![master];
    for r in 1..c.nprocs {
        let extra = if r == 1 { 1 } else { 0 };
        progs.push(Box::new(move |ctx: &mut ProcessCtx| worker(ctx, c, r, extra)) as ProgramFn);
    }
    progs
}

/// A reusable factory for sessions and the explorer.
pub fn orphan_deadlock_factory(cfg: RacyConfig) -> impl Fn() -> Vec<ProgramFn> + Send + Sync {
    move || orphan_deadlock(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_mpsim::{Decision, Engine, EngineConfig, RecorderConfig, RunOutcome, SchedPolicy};

    fn run(programs: Vec<ProgramFn>, policy: SchedPolicy) -> RunOutcome {
        let mut e = Engine::launch(
            EngineConfig {
                policy,
                recorder: RecorderConfig::full(),
                ..Default::default()
            },
            programs,
        );
        e.run()
    }

    #[test]
    fn wildcard_race_completes_deterministically() {
        let cfg = RacyConfig::default();
        assert!(run(wildcard_race(&cfg), SchedPolicy::RoundRobin).is_completed());
    }

    #[test]
    fn wildcard_race_panics_when_worker2_goes_first() {
        tracedbg_mpsim::set_quiet_panics(true);
        let cfg = RacyConfig::default();
        // One scheduling decision is enough: give worker 2 the first turn,
        // so its message is already queued when the master's wildcard posts.
        let script = vec![Decision::Turn { rank: Rank(2) }];
        match run(wildcard_race(&cfg), SchedPolicy::Scripted(script)) {
            RunOutcome::Panicked { rank, message } => {
                assert_eq!(rank, Rank(0));
                assert!(message.contains("worker 1"), "{message}");
            }
            other => panic!("expected the race to fire, got {other:?}"),
        }
    }

    #[test]
    fn orphan_deadlock_completes_deterministically() {
        let cfg = RacyConfig::default();
        assert!(run(orphan_deadlock(&cfg), SchedPolicy::RoundRobin).is_completed());
    }

    #[test]
    fn orphan_deadlock_stalls_when_worker2_goes_first() {
        let cfg = RacyConfig::default();
        let script = vec![Decision::Turn { rank: Rank(2) }];
        match run(orphan_deadlock(&cfg), SchedPolicy::Scripted(script)) {
            RunOutcome::Deadlock(rep) => {
                assert!(!rep.is_cyclic(), "orphaned receive, not a cycle");
                assert_eq!(rep.waits.len(), 1);
                assert_eq!(rep.waits[0].waiter, Rank(0));
                assert_eq!(rep.waits[0].awaited, Some(Rank(2)));
            }
            other => panic!("expected orphan deadlock, got {other:?}"),
        }
    }

    #[test]
    fn scales_beyond_three_processes() {
        let cfg = RacyConfig {
            nprocs: 6,
            ..Default::default()
        };
        assert!(run(wildcard_race(&cfg), SchedPolicy::RoundRobin).is_completed());
        assert!(run(orphan_deadlock(&cfg), SchedPolicy::RoundRobin).is_completed());
    }
}
