//! Intentionally racy workloads — the explorer's prey.
//!
//! Both patterns complete cleanly under the deterministic round-robin
//! scheduler but hide a schedule-dependent bug behind a wildcard receive;
//! `tracedbg explore` must drive the runtime into the failing
//! interleavings and hand back minimal replayable schedules.
//!
//! * [`wildcard_race`] — the master assumes its first `ANY_SOURCE` message
//!   comes from worker 1 (who is "obviously" fastest). Any schedule that
//!   lets another worker's send land first fires the assertion: a classic
//!   wildcard-receive race ending in a panic.
//! * [`orphan_deadlock`] — the master takes one wildcard message, then
//!   issues a *directed* receive for a follow-up from that same source.
//!   Only worker 1 ever sends a follow-up; if the wildcard matches anyone
//!   else, the directed receive waits forever — a schedule-dependent,
//!   non-cyclic deadlock (the orphaned-receive shape of §4.4).
//!
//! Both patterns are task-backed ([`RankProgram::task`]): the explorer
//! re-instantiates them once per schedule, and resumable tasks make that
//! instantiation thread-spawn-free.

use tracedbg_mpsim::task::TaskOp;
use tracedbg_mpsim::{Payload, Prog, Rank, RankProgram, SendMode, SiteId, Tag};

const TAG_DATA: Tag = Tag(30);

/// Parameters for the racy patterns.
#[derive(Clone, Copy, Debug)]
pub struct RacyConfig {
    /// Total processes (master + nprocs-1 workers); at least 3.
    pub nprocs: usize,
    /// Simulated work (ns) worker 1 does before sending; the others do
    /// four times as much, which is why the "worker 1 is first" assumption
    /// *usually* holds.
    pub work: u64,
}

impl Default for RacyConfig {
    fn default() -> Self {
        RacyConfig {
            nprocs: 3,
            work: 50_000,
        }
    }
}

/// Per-rank task state shared by masters and workers of both patterns.
#[derive(Clone)]
struct RacyState {
    cfg: RacyConfig,
    rank: usize,
    site: SiteId,
    /// Source of the first wildcard match (masters only).
    first: Rank,
    /// Loop cursor for the workers' extra sends.
    k: i64,
}

fn state(cfg: &RacyConfig, rank: usize) -> RacyState {
    RacyState {
        cfg: *cfg,
        rank,
        site: SiteId(0),
        first: Rank(0),
        k: 0,
    }
}

/// The worker program: compute (worker 1 is fastest), report to the
/// master, then `extra_sends` follow-ups.
fn worker_prog(extra_sends: usize) -> Prog<RacyState> {
    Prog::seq(vec![
        Prog::act(|s: &mut RacyState, v| s.site = v.site("racy.c", 40, "worker")),
        Prog::op(|s: &mut RacyState, _| TaskOp::Compute {
            cost_ns: s.cfg.work * if s.rank == 1 { 1 } else { 4 },
            site: s.site,
        }),
        Prog::op(|s: &mut RacyState, _| TaskOp::Send {
            dst: Rank(0),
            tag: TAG_DATA,
            payload: Payload::from_i64(s.rank as i64),
            site: s.site,
            mode: SendMode::Buffered,
        }),
        Prog::for_range(
            move |_s: &RacyState, _| (0, extra_sends as i64),
            |s: &mut RacyState, k| s.k = k,
            Prog::op(|s: &mut RacyState, _| TaskOp::Send {
                dst: Rank(0),
                tag: TAG_DATA,
                payload: Payload::from_i64(100 + s.k),
                site: s.site,
                mode: SendMode::Buffered,
            }),
        ),
    ])
}

/// Drain the remaining `nprocs - 2` reports with wildcard receives.
fn drain_rest() -> Prog<RacyState> {
    Prog::for_range(
        |s: &RacyState, _| (0, s.cfg.nprocs as i64 - 2),
        |_s: &mut RacyState, _| {},
        Prog::op(|s: &mut RacyState, _| TaskOp::Recv {
            src: None,
            tag: Some(TAG_DATA),
            site: s.site,
        }),
    )
}

/// The wildcard-race pattern: assertion failure on "wrong" match order.
pub fn wildcard_race(cfg: &RacyConfig) -> Vec<RankProgram> {
    assert!(
        cfg.nprocs >= 3,
        "racy patterns need a master and 2+ workers"
    );
    let master = Prog::seq(vec![
        Prog::act(|s: &mut RacyState, v| s.site = v.site("racy.c", 12, "master")),
        Prog::op_bind(
            |s: &mut RacyState, _| TaskOp::Recv {
                src: None,
                tag: Some(TAG_DATA),
                site: s.site,
            },
            |s, r, _| s.first = r.message().src,
        ),
        Prog::op(|s: &mut RacyState, _| TaskOp::Probe {
            label: "first_src".into(),
            value: s.first.0 as i64,
            site: s.site,
        }),
        // The bug: worker 1 is assumed fastest, but nothing enforces it.
        Prog::act(|s: &mut RacyState, _| {
            assert_eq!(s.first, Rank(1), "master assumed worker 1 reports first");
        }),
        drain_rest(),
    ]);
    let worker = worker_prog(0);
    (0..cfg.nprocs)
        .map(|r| {
            let prog = if r == 0 {
                master.clone()
            } else {
                worker.clone()
            };
            RankProgram::task(state(cfg, r), prog)
        })
        .collect()
}

/// A reusable factory for sessions and the explorer.
pub fn wildcard_race_factory(cfg: RacyConfig) -> impl Fn() -> Vec<RankProgram> + Send + Sync {
    move || wildcard_race(&cfg)
}

/// The orphaned-receive pattern: schedule-dependent non-cyclic deadlock.
pub fn orphan_deadlock(cfg: &RacyConfig) -> Vec<RankProgram> {
    assert!(
        cfg.nprocs >= 3,
        "racy patterns need a master and 2+ workers"
    );
    let master = Prog::seq(vec![
        Prog::act(|s: &mut RacyState, v| s.site = v.site("racy.c", 24, "master")),
        Prog::op_bind(
            |s: &mut RacyState, _| TaskOp::Recv {
                src: None,
                tag: Some(TAG_DATA),
                site: s.site,
            },
            |s, r, _| s.first = r.message().src,
        ),
        Prog::op(|s: &mut RacyState, _| TaskOp::Probe {
            label: "first_src".into(),
            value: s.first.0 as i64,
            site: s.site,
        }),
        // The bug: only worker 1 sends a follow-up message, but the
        // directed receive targets whoever happened to match first.
        Prog::op(|s: &mut RacyState, _| TaskOp::Recv {
            src: Some(s.first),
            tag: Some(TAG_DATA),
            site: s.site,
        }),
        drain_rest(),
    ]);
    (0..cfg.nprocs)
        .map(|r| {
            let prog = if r == 0 {
                master.clone()
            } else {
                worker_prog(if r == 1 { 1 } else { 0 })
            };
            RankProgram::task(state(cfg, r), prog)
        })
        .collect()
}

/// A reusable factory for sessions and the explorer.
pub fn orphan_deadlock_factory(cfg: RacyConfig) -> impl Fn() -> Vec<RankProgram> + Send + Sync {
    move || orphan_deadlock(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_mpsim::{Decision, Engine, EngineConfig, RecorderConfig, RunOutcome, SchedPolicy};

    fn run(programs: Vec<RankProgram>, policy: SchedPolicy) -> RunOutcome {
        let mut e = Engine::launch(
            EngineConfig {
                policy,
                recorder: RecorderConfig::full(),
                ..Default::default()
            },
            programs,
        );
        e.run()
    }

    #[test]
    fn wildcard_race_completes_deterministically() {
        let cfg = RacyConfig::default();
        assert!(run(wildcard_race(&cfg), SchedPolicy::RoundRobin).is_completed());
    }

    #[test]
    fn wildcard_race_panics_when_worker2_goes_first() {
        tracedbg_mpsim::set_quiet_panics(true);
        let cfg = RacyConfig::default();
        // One scheduling decision is enough: give worker 2 the first turn,
        // so its message is already queued when the master's wildcard posts.
        let script = vec![Decision::Turn { rank: Rank(2) }];
        match run(wildcard_race(&cfg), SchedPolicy::Scripted(script)) {
            RunOutcome::Panicked { rank, message } => {
                assert_eq!(rank, Rank(0));
                assert!(message.contains("worker 1"), "{message}");
            }
            other => panic!("expected the race to fire, got {other:?}"),
        }
    }

    #[test]
    fn orphan_deadlock_completes_deterministically() {
        let cfg = RacyConfig::default();
        assert!(run(orphan_deadlock(&cfg), SchedPolicy::RoundRobin).is_completed());
    }

    #[test]
    fn orphan_deadlock_stalls_when_worker2_goes_first() {
        let cfg = RacyConfig::default();
        let script = vec![Decision::Turn { rank: Rank(2) }];
        match run(orphan_deadlock(&cfg), SchedPolicy::Scripted(script)) {
            RunOutcome::Deadlock(rep) => {
                assert!(!rep.is_cyclic(), "orphaned receive, not a cycle");
                assert_eq!(rep.waits.len(), 1);
                assert_eq!(rep.waits[0].waiter, Rank(0));
                assert_eq!(rep.waits[0].awaited, Some(Rank(2)));
            }
            other => panic!("expected orphan deadlock, got {other:?}"),
        }
    }

    #[test]
    fn scales_beyond_three_processes() {
        let cfg = RacyConfig {
            nprocs: 6,
            ..Default::default()
        };
        assert!(run(wildcard_race(&cfg), SchedPolicy::RoundRobin).is_completed());
        assert!(run(orphan_deadlock(&cfg), SchedPolicy::RoundRobin).is_completed());
    }
}
