//! Dense row-major matrices with naive and Strassen multiplication.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A dense row-major `rows × cols` matrix of f64.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f64>,
}

impl Matrix {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Seeded pseudo-random matrix with entries in [-1, 1).
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Matrix {
            rows,
            cols,
            data: (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        }
    }

    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Naive O(n³) multiply.
    pub fn mul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.at(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * out.cols + j] += a * other.at(k, j);
                }
            }
        }
        out
    }

    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Split a matrix with even dimensions into quadrants
    /// `(m11, m12, m21, m22)`.
    pub fn quadrants(&self) -> (Matrix, Matrix, Matrix, Matrix) {
        assert!(self.rows % 2 == 0 && self.cols % 2 == 0, "odd dimensions");
        let (hr, hc) = (self.rows / 2, self.cols / 2);
        let block = |r0: usize, c0: usize| {
            let mut m = Matrix::zeros(hr, hc);
            for r in 0..hr {
                for c in 0..hc {
                    m.set(r, c, self.at(r0 + r, c0 + c));
                }
            }
            m
        };
        (block(0, 0), block(0, hc), block(hr, 0), block(hr, hc))
    }

    /// Assemble from quadrants.
    pub fn from_quadrants(m11: &Matrix, m12: &Matrix, m21: &Matrix, m22: &Matrix) -> Matrix {
        assert_eq!((m11.rows, m11.cols), (m12.rows, m12.cols));
        assert_eq!((m21.rows, m21.cols), (m22.rows, m22.cols));
        assert_eq!(m11.rows, m12.rows);
        let (hr, hc) = (m11.rows, m11.cols);
        let mut out = Matrix::zeros(2 * hr, 2 * hc);
        for r in 0..hr {
            for c in 0..hc {
                out.set(r, c, m11.at(r, c));
                out.set(r, c + hc, m12.at(r, c));
                out.set(r + hr, c, m21.at(r, c));
                out.set(r + hr, c + hc, m22.at(r, c));
            }
        }
        out
    }

    /// Recursive Strassen multiply (square, power-of-two-friendly; falls
    /// back to naive below `cutoff` or on odd dimensions).
    pub fn mul_strassen(&self, other: &Matrix, cutoff: usize) -> Matrix {
        assert_eq!(self.cols, other.rows);
        if self.rows <= cutoff || self.rows % 2 != 0 || self.cols % 2 != 0 || other.cols % 2 != 0 {
            return self.mul_naive(other);
        }
        let (a11, a12, a21, a22) = self.quadrants();
        let (b11, b12, b21, b22) = other.quadrants();
        let m1 = a11.add(&a22).mul_strassen(&b11.add(&b22), cutoff);
        let m2 = a21.add(&a22).mul_strassen(&b11, cutoff);
        let m3 = a11.mul_strassen(&b12.sub(&b22), cutoff);
        let m4 = a22.mul_strassen(&b21.sub(&b11), cutoff);
        let m5 = a11.add(&a12).mul_strassen(&b22, cutoff);
        let m6 = a21.sub(&a11).mul_strassen(&b11.add(&b12), cutoff);
        let m7 = a12.sub(&a22).mul_strassen(&b21.add(&b22), cutoff);
        let c11 = m1.add(&m4).sub(&m5).add(&m7);
        let c12 = m3.add(&m5);
        let c21 = m2.add(&m4);
        let c22 = m1.sub(&m2).add(&m3).add(&m6);
        Matrix::from_quadrants(&c11, &c12, &c21, &c22)
    }

    /// Largest absolute elementwise difference.
    pub fn max_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Flatten to a payload-friendly vector.
    pub fn to_vec(&self) -> Vec<f64> {
        self.data.clone()
    }

    /// Rebuild from a flat vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols);
        Matrix { rows, cols, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_identity() {
        let mut i2 = Matrix::zeros(2, 2);
        i2.set(0, 0, 1.0);
        i2.set(1, 1, 1.0);
        let a = Matrix::random(2, 2, 1);
        assert_eq!(a.mul_naive(&i2), a);
    }

    #[test]
    fn strassen_matches_naive_square() {
        let a = Matrix::random(16, 16, 1);
        let b = Matrix::random(16, 16, 2);
        let naive = a.mul_naive(&b);
        let fast = a.mul_strassen(&b, 4);
        assert!(naive.max_diff(&fast) < 1e-9, "{}", naive.max_diff(&fast));
    }

    #[test]
    fn strassen_matches_naive_rectangular() {
        // The Table 1 shape: 96x128 * 128x112.
        let a = Matrix::random(24, 32, 3);
        let b = Matrix::random(32, 28, 4);
        let naive = a.mul_naive(&b);
        let fast = a.mul_strassen(&b, 8);
        assert!(naive.max_diff(&fast) < 1e-9);
    }

    #[test]
    fn quadrant_roundtrip() {
        let a = Matrix::random(8, 6, 5);
        let (q11, q12, q21, q22) = a.quadrants();
        let back = Matrix::from_quadrants(&q11, &q12, &q21, &q22);
        assert_eq!(a, back);
    }

    #[test]
    fn vec_roundtrip() {
        let a = Matrix::random(3, 4, 6);
        let b = Matrix::from_vec(3, 4, a.to_vec());
        assert_eq!(a, b);
    }

    #[test]
    fn random_is_seeded() {
        assert_eq!(Matrix::random(4, 4, 7), Matrix::random(4, 4, 7));
        assert_ne!(Matrix::random(4, 4, 7), Matrix::random(4, 4, 8));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_mul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.mul_naive(&b);
    }
}
