//! Wide-rank workload generators: communication patterns sized for
//! thousands of ranks on the task engine.
//!
//! Three shapes exercise the scheduler at scale:
//!
//! * a **1024-rank token ring** (just [`crate::ring`] with a wide
//!   config — re-exported here as [`wide_ring`] for discoverability),
//! * a **2D stencil halo exchange** on a `p × p` process grid (32×32 =
//!   1024 ranks): each step every rank sends its value to its N/S/E/W
//!   neighbours with buffered sends, then posts directed receives —
//!   deadlock-free by construction because no send ever blocks,
//! * a **butterfly reduction** over `2^k` ranks: `log2(n)` stages, at
//!   stage `s` rank `r` exchanges with partner `r ^ (1 << s)` and
//!   accumulates; after the last stage *every* rank holds the global
//!   sum (an allreduce without a root).

use tracedbg_mpsim::task::TaskOp;
use tracedbg_mpsim::{Payload, Prog, Rank, RankProgram, SendMode, SiteId, Tag};

use crate::ring::{self, RingConfig};

// Tags: the stencil alternates two tags across steps so a fast
// neighbour's step-`k+1` halo can never match a slow rank's step-`k`
// receive; the butterfly gives every stage its own tag.
const TAG_HALO: i32 = 40;
const TAG_BFLY: i32 = 60;

/// A 1024-rank ring config (`rounds` small so a full run stays cheap).
pub fn wide_ring_config(nprocs: usize, rounds: usize) -> RingConfig {
    RingConfig {
        nprocs,
        rounds,
        hop_cost: 0,
        tag_stride: 0,
    }
}

/// Task-backed programs for a wide ring (thin wrapper over
/// [`crate::ring::programs`]).
pub fn wide_ring(nprocs: usize, rounds: usize) -> Vec<RankProgram> {
    ring::programs(&wide_ring_config(nprocs, rounds))
}

// ---------------------------------------------------------------------------
// 2D stencil halo exchange
// ---------------------------------------------------------------------------

/// Stencil parameters: a `p × p` rank grid iterated for `steps` halo
/// exchanges.
#[derive(Clone, Copy, Debug)]
pub struct StencilConfig {
    /// Grid side; the workload uses `p * p` ranks.
    pub p: usize,
    /// Number of halo-exchange steps.
    pub steps: usize,
}

impl Default for StencilConfig {
    fn default() -> Self {
        StencilConfig { p: 32, steps: 4 }
    }
}

#[derive(Clone)]
struct StencilState {
    cfg: StencilConfig,
    rank: usize,
    site: SiteId,
    /// N/S/W/E neighbours that exist for this rank, in fixed order.
    nbrs: Vec<Rank>,
    step: i64,
    /// Neighbour cursor within the current send/recv sweep.
    ni: i64,
    /// The cell value carried across steps.
    val: i64,
    /// Halo accumulator for the step in flight.
    acc: i64,
}

impl StencilState {
    fn tag(&self) -> Tag {
        // Two alternating tags: step k+1 halos can never satisfy a
        // step-k receive even though sends are buffered (and channel
        // FIFO already orders same-tag traffic).
        Tag(TAG_HALO + (self.step % 2) as i32)
    }
}

fn stencil_neighbors(p: usize, rank: usize) -> Vec<Rank> {
    let (row, col) = (rank / p, rank % p);
    let mut nbrs = Vec::with_capacity(4);
    if row > 0 {
        nbrs.push(Rank(((row - 1) * p + col) as u32)); // north
    }
    if row + 1 < p {
        nbrs.push(Rank(((row + 1) * p + col) as u32)); // south
    }
    if col > 0 {
        nbrs.push(Rank((row * p + col - 1) as u32)); // west
    }
    if col + 1 < p {
        nbrs.push(Rank((row * p + col + 1) as u32)); // east
    }
    nbrs
}

fn stencil_prog() -> Prog<StencilState> {
    Prog::seq(vec![
        Prog::act(|s: &mut StencilState, v| s.site = v.site("stencil.c", 17, "halo_exchange")),
        Prog::scope(
            |s: &mut StencilState, _| (s.site, [s.rank as i64, s.cfg.steps as i64]),
            Prog::for_range(
                |s: &StencilState, _| (0, s.cfg.steps as i64),
                |s: &mut StencilState, i| {
                    s.step = i;
                    s.acc = s.val;
                },
                Prog::seq(vec![
                    // Phase 1: buffered sends to every existing
                    // neighbour — never blocks, so the exchange is
                    // deadlock-free regardless of scheduling order.
                    Prog::for_range(
                        |s: &StencilState, _| (0, s.nbrs.len() as i64),
                        |s: &mut StencilState, i| s.ni = i,
                        Prog::op(|s: &mut StencilState, _| TaskOp::Send {
                            dst: s.nbrs[s.ni as usize],
                            tag: s.tag(),
                            payload: Payload::from_i64(s.val),
                            site: s.site,
                            mode: SendMode::Buffered,
                        }),
                    ),
                    // Phase 2: directed receives, one per neighbour,
                    // in the same fixed order.
                    Prog::for_range(
                        |s: &StencilState, _| (0, s.nbrs.len() as i64),
                        |s: &mut StencilState, i| s.ni = i,
                        Prog::op_bind(
                            |s: &mut StencilState, _| TaskOp::Recv {
                                src: Some(s.nbrs[s.ni as usize]),
                                tag: Some(s.tag()),
                                site: s.site,
                            },
                            |s, m, _| {
                                s.acc += m.message().payload.to_i64().unwrap_or(0);
                            },
                        ),
                    ),
                    // Jacobi-style relaxation on integers: the new
                    // cell value is the mean of self + halo.
                    Prog::act(|s: &mut StencilState, _| {
                        s.val = s.acc / (s.nbrs.len() as i64 + 1);
                    }),
                ]),
            ),
        ),
        Prog::op(|s: &mut StencilState, _| TaskOp::Probe {
            label: "stencil_val".into(),
            value: s.val,
            site: s.site,
        }),
    ])
}

/// Build the `p × p` stencil programs (task-backed).
pub fn stencil_programs(cfg: &StencilConfig) -> Vec<RankProgram> {
    assert!(cfg.p >= 2, "stencil needs at least a 2x2 grid");
    let prog = stencil_prog();
    let n = cfg.p * cfg.p;
    (0..n)
        .map(|r| {
            RankProgram::task(
                StencilState {
                    cfg: *cfg,
                    rank: r,
                    site: SiteId(0),
                    nbrs: stencil_neighbors(cfg.p, r),
                    step: 0,
                    ni: 0,
                    // A corner spike so the relaxation has a gradient
                    // to diffuse.
                    val: if r == 0 { 1 << 20 } else { 0 },
                    acc: 0,
                },
                prog.clone(),
            )
        })
        .collect()
}

/// Factory for debugger sessions.
pub fn stencil_factory(cfg: StencilConfig) -> impl Fn() -> Vec<RankProgram> + Send + Sync {
    move || stencil_programs(&cfg)
}

// ---------------------------------------------------------------------------
// Butterfly reduction
// ---------------------------------------------------------------------------

/// Butterfly parameters: `nprocs` must be a power of two.
#[derive(Clone, Copy, Debug)]
pub struct ButterflyConfig {
    pub nprocs: usize,
}

impl Default for ButterflyConfig {
    fn default() -> Self {
        ButterflyConfig { nprocs: 1024 }
    }
}

#[derive(Clone)]
struct BflyState {
    nprocs: usize,
    rank: usize,
    site: SiteId,
    stage: i64,
    acc: i64,
}

impl BflyState {
    fn partner(&self) -> Rank {
        Rank((self.rank ^ (1usize << self.stage)) as u32)
    }
    fn tag(&self) -> Tag {
        Tag(TAG_BFLY + self.stage as i32)
    }
}

fn bfly_prog() -> Prog<BflyState> {
    Prog::seq(vec![
        Prog::act(|s: &mut BflyState, v| s.site = v.site("butterfly.c", 9, "allreduce")),
        Prog::scope(
            |s: &mut BflyState, _| (s.site, [s.rank as i64, s.nprocs.trailing_zeros() as i64]),
            Prog::for_range(
                |s: &BflyState, _| (0, s.nprocs.trailing_zeros() as i64),
                |s: &mut BflyState, i| s.stage = i,
                Prog::seq(vec![
                    // Buffered send to the stage partner, then the
                    // matching directed receive: symmetric, so both
                    // sides progress without blocking on the send.
                    Prog::op(|s: &mut BflyState, _| TaskOp::Send {
                        dst: s.partner(),
                        tag: s.tag(),
                        payload: Payload::from_i64(s.acc),
                        site: s.site,
                        mode: SendMode::Buffered,
                    }),
                    Prog::op_bind(
                        |s: &mut BflyState, _| TaskOp::Recv {
                            src: Some(s.partner()),
                            tag: Some(s.tag()),
                            site: s.site,
                        },
                        |s, m, _| {
                            s.acc += m.message().payload.to_i64().unwrap_or(0);
                        },
                    ),
                ]),
            ),
        ),
        Prog::op(|s: &mut BflyState, _| TaskOp::Probe {
            label: "bfly_sum".into(),
            value: s.acc,
            site: s.site,
        }),
    ])
}

/// Build the butterfly programs (task-backed). Every rank starts with
/// value `rank + 1`, so the reduced sum is `n * (n + 1) / 2`.
pub fn butterfly_programs(cfg: &ButterflyConfig) -> Vec<RankProgram> {
    assert!(
        cfg.nprocs >= 2 && cfg.nprocs.is_power_of_two(),
        "butterfly needs a power-of-two rank count"
    );
    let prog = bfly_prog();
    (0..cfg.nprocs)
        .map(|r| {
            RankProgram::task(
                BflyState {
                    nprocs: cfg.nprocs,
                    rank: r,
                    site: SiteId(0),
                    stage: 0,
                    acc: r as i64 + 1,
                },
                prog.clone(),
            )
        })
        .collect()
}

/// Factory for debugger sessions.
pub fn butterfly_factory(cfg: ButterflyConfig) -> impl Fn() -> Vec<RankProgram> + Send + Sync {
    move || butterfly_programs(&cfg)
}

/// The global sum every rank must hold after the reduction.
pub fn butterfly_expected_sum(nprocs: usize) -> i64 {
    (nprocs as i64) * (nprocs as i64 + 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_mpsim::{Engine, EngineConfig, RecorderConfig, SchedPolicy};
    use tracedbg_trace::EventKind;

    fn run(programs: Vec<RankProgram>) -> tracedbg_trace::TraceStore {
        let mut e = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::full()),
            programs,
        );
        assert!(e.run().is_completed(), "wide workload must not deadlock");
        e.trace_store()
    }

    #[test]
    fn stencil_small_grid_is_deadlock_free() {
        let cfg = StencilConfig { p: 4, steps: 3 };
        let store = run(stencil_programs(&cfg));
        // Every rank sends one halo per neighbour per step.
        let expected_sends: usize = (0..cfg.p * cfg.p)
            .map(|r| stencil_neighbors(cfg.p, r).len())
            .sum::<usize>()
            * cfg.steps;
        assert_eq!(store.of_kind(EventKind::Send).len(), expected_sends);
        assert_eq!(store.of_kind(EventKind::RecvDone).len(), expected_sends);
    }

    #[test]
    fn stencil_diffuses_the_corner_spike() {
        let cfg = StencilConfig { p: 4, steps: 6 };
        let store = run(stencil_programs(&cfg));
        let probes: Vec<i64> = store
            .records()
            .iter()
            .filter(|r| r.kind == EventKind::Probe)
            .map(|r| r.args[0])
            .collect();
        assert_eq!(probes.len(), cfg.p * cfg.p);
        // The spike has spread: more than one rank holds a nonzero
        // value, and nobody still holds the full spike.
        assert!(probes.iter().filter(|&&v| v > 0).count() > 1);
        assert!(probes.iter().all(|&v| v < 1 << 20));
    }

    #[test]
    fn stencil_is_seed_independent() {
        let cfg = StencilConfig { p: 3, steps: 4 };
        let collect = |seed: u64| {
            let mut e = Engine::launch(
                EngineConfig {
                    policy: SchedPolicy::Seeded(seed),
                    recorder: RecorderConfig::full(),
                    ..Default::default()
                },
                stencil_programs(&cfg),
            );
            assert!(e.run().is_completed());
            let store = e.trace_store();
            store
                .records()
                .iter()
                .filter(|r| r.kind == EventKind::Probe)
                .map(|r| r.args[0])
                .collect::<Vec<i64>>()
        };
        // All receives are directed, so the numeric outcome cannot
        // depend on the schedule.
        assert_eq!(collect(3), collect(999));
    }

    #[test]
    fn butterfly_every_rank_holds_global_sum() {
        let cfg = ButterflyConfig { nprocs: 16 };
        let store = run(butterfly_programs(&cfg));
        let expected = butterfly_expected_sum(cfg.nprocs);
        let probes: Vec<i64> = store
            .records()
            .iter()
            .filter(|r| r.kind == EventKind::Probe)
            .map(|r| r.args[0])
            .collect();
        assert_eq!(probes.len(), cfg.nprocs);
        assert!(probes.iter().all(|&v| v == expected));
    }

    #[test]
    fn butterfly_256_ranks() {
        let cfg = ButterflyConfig { nprocs: 256 };
        let store = run(butterfly_programs(&cfg));
        let expected = butterfly_expected_sum(cfg.nprocs);
        assert!(store
            .records()
            .iter()
            .filter(|r| r.kind == EventKind::Probe)
            .all(|r| r.args[0] == expected));
        // log2(256) = 8 stages, one send per rank per stage.
        assert_eq!(store.of_kind(EventKind::Send).len(), 256 * 8);
    }

    /// The headline scale test: 1024 ranks of each shape complete.
    /// Cheap on the task engine — no OS threads are spawned.
    #[test]
    fn wide_1024_rank_workloads_complete() {
        // 32x32 stencil, one step.
        let store = run(stencil_programs(&StencilConfig { p: 32, steps: 1 }));
        assert_eq!(
            store
                .records()
                .iter()
                .filter(|r| r.kind == EventKind::Probe)
                .count(),
            1024
        );
        // 1024-rank butterfly (10 stages).
        let store = run(butterfly_programs(&ButterflyConfig { nprocs: 1024 }));
        let expected = butterfly_expected_sum(1024);
        assert!(store
            .records()
            .iter()
            .filter(|r| r.kind == EventKind::Probe)
            .all(|r| r.args[0] == expected));
        // 1024-rank ring, one round.
        let store = run(wide_ring(1024, 1));
        assert_eq!(store.of_kind(EventKind::Send).len(), 1024);
    }
}
