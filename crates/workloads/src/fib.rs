//! Recursive Fibonacci — the Table 1 worst-case overhead driver.
//!
//! Every call enters an instrumented function scope, so `fib(n)` drives
//! `2·fib(n+1)-1` `UserMonitor` invocations of enter events (plus exits) —
//! the paper measured 18,454,930 calls for fib(34) and 29,860,704 for
//! fib(35). The closed form for the number of calls is
//! [`fib_call_count`].
//!
//! Task-backed via [`Prog::gen`]: the recursion is re-grown at run time,
//! with explicit argument/value stacks in [`FibState`] standing in for the
//! call stack — which is what lets a checkpoint capture a recursion
//! mid-flight as plain data.

use tracedbg_mpsim::task::TaskOp;
use tracedbg_mpsim::{Prog, RankProgram};
use tracedbg_trace::SiteId;

/// Uninstrumented reference implementation.
pub fn fib_plain(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_plain(n - 1) + fib_plain(n - 2)
    }
}

/// Number of calls the recursive computation of `fib(n)` makes
/// (`2·fib(n+1) − 1`): Table 1's "Number of calls" row.
pub fn fib_call_count(n: u64) -> u64 {
    2 * fib_plain(n + 1) - 1
}

/// Task state: the instrumented site plus explicit arg/value stacks that
/// replace the thread backend's native call stack.
#[derive(Clone)]
struct FibState {
    site: SiteId,
    args: Vec<u64>,
    vals: Vec<u64>,
}

/// One instrumented call: expects its argument on top of `args`, pops it
/// and pushes `fib(n)` onto `vals`. Each call enters a function scope
/// carrying `n` as the first monitored argument (the §2.2 contract).
fn fib_call() -> Prog<FibState> {
    Prog::scope(
        |s: &mut FibState, _| (s.site, [*s.args.last().unwrap() as i64, 0]),
        Prog::gen(|s: &mut FibState, _| {
            let n = *s.args.last().unwrap();
            if n < 2 {
                Prog::act(|s: &mut FibState, _| {
                    let n = s.args.pop().unwrap();
                    s.vals.push(n);
                })
            } else {
                Prog::seq(vec![
                    Prog::act(|s: &mut FibState, _| {
                        let n = *s.args.last().unwrap();
                        s.args.push(n - 1);
                    }),
                    fib_call(),
                    Prog::act(|s: &mut FibState, _| {
                        let n = *s.args.last().unwrap();
                        s.args.push(n - 2);
                    }),
                    fib_call(),
                    Prog::act(|s: &mut FibState, _| {
                        let b = s.vals.pop().unwrap();
                        let a = s.vals.pop().unwrap();
                        s.args.pop();
                        s.vals.push(a + b);
                    }),
                ])
            }
        }),
    )
}

/// A single-process program computing `fib(n)` under instrumentation.
pub fn program(n: u64) -> RankProgram {
    let prog = Prog::seq(vec![
        Prog::act(move |s: &mut FibState, v| {
            s.site = v.site("fib.c", 11, "fib");
            s.args.push(n);
        }),
        fib_call(),
        Prog::op(|s: &mut FibState, v| {
            let check_site = v.site("fib.c", 30, "main");
            TaskOp::Probe {
                label: "fib_result".into(),
                value: *s.vals.last().unwrap() as i64,
                site: check_site,
            }
        }),
    ]);
    RankProgram::task(
        FibState {
            site: SiteId(0),
            args: Vec::new(),
            vals: Vec::new(),
        },
        prog,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_mpsim::{Engine, EngineConfig, RecorderConfig};
    use tracedbg_trace::EventKind;

    #[test]
    fn plain_values() {
        assert_eq!(fib_plain(0), 0);
        assert_eq!(fib_plain(1), 1);
        assert_eq!(fib_plain(10), 55);
        assert_eq!(fib_plain(20), 6765);
    }

    #[test]
    fn call_count_closed_form() {
        // Count actual calls with a counter-instrumented recursion.
        fn count(n: u64, c: &mut u64) -> u64 {
            *c += 1;
            if n < 2 {
                n
            } else {
                count(n - 1, c) + count(n - 2, c)
            }
        }
        for n in 0..15 {
            let mut c = 0;
            count(n, &mut c);
            assert_eq!(fib_call_count(n), c, "n={n}");
        }
    }

    #[test]
    fn traced_fib_matches_and_counts_monitor_calls() {
        let mut e = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::markers_only()),
            vec![program(12)],
        );
        assert!(e.run().is_completed());
        // MarkersOnly still counts invocations: enter+exit per call, plus
        // ProcStart/ProcEnd and the result probe.
        let calls = fib_call_count(12);
        assert_eq!(e.invocations()[0], 2 * calls + 3);
    }

    #[test]
    fn traced_fib_result_probe() {
        let mut e = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::full()),
            vec![program(10)],
        );
        assert!(e.run().is_completed());
        let store = e.trace_store();
        let probe = store
            .records()
            .iter()
            .find(|r| r.kind == EventKind::Probe)
            .unwrap();
        assert_eq!(probe.args[0], 55);
        // Full tracing records every call: FnEnter count = calls + 1
        // (main's probe scope is not a FnEnter).
        assert_eq!(
            store.of_kind(EventKind::FnEnter).len() as u64,
            fib_call_count(10)
        );
    }
}
