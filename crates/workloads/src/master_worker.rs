//! A master/worker pool with wildcard receives.
//!
//! The master hands out work items and collects results with
//! `MPI_ANY_SOURCE` receives — the nondeterministic construct §4.2's
//! replay control exists for. Under a perturbed scheduling seed the result
//! arrival order varies run to run; under replay it is pinned. Completion
//! order is recorded via probes so tests (and the replay ablation bench)
//! can compare orders across runs. Task-backed ([`RankProgram::task`]).

use tracedbg_mpsim::task::TaskOp;
use tracedbg_mpsim::{Payload, Prog, Rank, RankProgram, SendMode, SiteId, Tag};

const TAG_WORK: Tag = Tag(30);
const TAG_RESULT: Tag = Tag(31);
const TAG_STOP: Tag = Tag(32);

/// Pool parameters.
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    pub nprocs: usize,
    pub tasks: usize,
    /// Base simulated cost per task (ns); task `i` costs
    /// `base_cost * (1 + i % 3)` so workers finish out of order.
    pub base_cost: u64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            nprocs: 4,
            tasks: 9,
            base_cost: 50_000,
        }
    }
}

/// Per-rank task state for both roles.
#[derive(Clone)]
struct PoolState {
    cfg: PoolConfig,
    rank: usize,
    site: SiteId,
    // Master bookkeeping.
    next_task: usize,
    outstanding: usize,
    done: usize,
    src: Rank,
    w: i64,
    // Worker bookkeeping.
    task: i64,
    stopped: bool,
}

fn master_prog() -> Prog<PoolState> {
    let hand_out = Prog::seq(vec![
        Prog::op(|s: &mut PoolState, _| TaskOp::Send {
            dst: s.src,
            tag: TAG_WORK,
            payload: Payload::from_i64(s.next_task as i64),
            site: s.site,
            mode: SendMode::Buffered,
        }),
        Prog::act(|s: &mut PoolState, _| {
            s.next_task += 1;
            s.outstanding += 1;
        }),
    ]);
    Prog::seq(vec![
        Prog::act(|s: &mut PoolState, v| s.site = v.site("pool.c", 10, "master")),
        Prog::scope(
            |s: &mut PoolState, _| (s.site, [s.cfg.tasks as i64, 0]),
            Prog::seq(vec![
                // Prime every worker with one task.
                Prog::for_range(
                    |s: &PoolState, _| (1, s.cfg.nprocs as i64),
                    |s: &mut PoolState, w| s.w = w,
                    Prog::when(
                        |s: &PoolState, _| s.next_task < s.cfg.tasks,
                        Prog::seq(vec![
                            Prog::act(|s: &mut PoolState, _| s.src = Rank(s.w as u32)),
                            hand_out.clone(),
                        ]),
                    ),
                ),
                // Collect results with wildcard receives; keep the
                // pipeline full.
                Prog::while_loop(
                    |s: &PoolState, _| s.done < s.cfg.tasks,
                    Prog::seq(vec![
                        Prog::op_bind(
                            |s: &mut PoolState, _| TaskOp::Recv {
                                src: None,
                                tag: Some(TAG_RESULT),
                                site: s.site,
                            },
                            |s, m, _| {
                                s.src = m.message().src;
                                s.done += 1;
                                s.outstanding -= 1;
                            },
                        ),
                        // Record the nondeterministic completion order.
                        Prog::op(|s: &mut PoolState, _| TaskOp::Probe {
                            label: "completed_by".into(),
                            value: s.src.0 as i64,
                            site: s.site,
                        }),
                        Prog::when(
                            |s: &PoolState, _| s.next_task < s.cfg.tasks,
                            hand_out.clone(),
                        ),
                    ]),
                ),
                Prog::act(|s: &mut PoolState, _| assert_eq!(s.outstanding, 0)),
                // Dismiss the pool.
                Prog::for_range(
                    |s: &PoolState, _| (1, s.cfg.nprocs as i64),
                    |s: &mut PoolState, w| s.w = w,
                    Prog::op(|s: &mut PoolState, _| TaskOp::Send {
                        dst: Rank(s.w as u32),
                        tag: TAG_STOP,
                        payload: Payload::empty(),
                        site: s.site,
                        mode: SendMode::Buffered,
                    }),
                ),
            ]),
        ),
    ])
}

fn worker_prog() -> Prog<PoolState> {
    Prog::seq(vec![
        Prog::act(|s: &mut PoolState, v| s.site = v.site("pool.c", 40, "worker")),
        Prog::scope(
            |s: &mut PoolState, _| (s.site, [s.rank as i64, 0]),
            Prog::while_loop(
                |s: &PoolState, _| !s.stopped,
                Prog::seq(vec![
                    Prog::op_bind(
                        |s: &mut PoolState, _| TaskOp::Recv {
                            src: Some(Rank(0)),
                            tag: None,
                            site: s.site,
                        },
                        |s, m, _| {
                            let m = m.message();
                            if m.tag == TAG_STOP {
                                s.stopped = true;
                            } else {
                                s.task = m.payload.to_i64().unwrap();
                            }
                        },
                    ),
                    Prog::when(
                        |s: &PoolState, _| !s.stopped,
                        Prog::seq(vec![
                            Prog::op(|s: &mut PoolState, _| TaskOp::Compute {
                                cost_ns: s.cfg.base_cost * (1 + s.task as u64 % 3),
                                site: s.site,
                            }),
                            Prog::op(|s: &mut PoolState, _| TaskOp::Send {
                                dst: Rank(0),
                                tag: TAG_RESULT,
                                payload: Payload::from_i64(s.task),
                                site: s.site,
                                mode: SendMode::Buffered,
                            }),
                        ]),
                    ),
                ]),
            ),
        ),
    ])
}

/// Build the pool programs.
pub fn programs(cfg: &PoolConfig) -> Vec<RankProgram> {
    assert!(cfg.nprocs >= 2);
    let master = master_prog();
    let worker = worker_prog();
    (0..cfg.nprocs)
        .map(|r| {
            RankProgram::task(
                PoolState {
                    cfg: *cfg,
                    rank: r,
                    site: SiteId(0),
                    next_task: 0,
                    outstanding: 0,
                    done: 0,
                    src: Rank(0),
                    w: 0,
                    task: 0,
                    stopped: false,
                },
                if r == 0 {
                    master.clone()
                } else {
                    worker.clone()
                },
            )
        })
        .collect()
}

/// A reusable factory for debugger sessions.
pub fn factory(cfg: PoolConfig) -> impl Fn() -> Vec<RankProgram> + Send + Sync {
    move || programs(&cfg)
}

/// Extract the completion order recorded by the master's probes.
pub fn completion_order(store: &tracedbg_trace::TraceStore) -> Vec<u32> {
    store
        .by_rank(Rank(0))
        .iter()
        .map(|&id| store.record(id))
        .filter(|r| r.label.as_deref() == Some("completed_by"))
        .map(|r| r.args[0] as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_mpsim::{Engine, EngineConfig, RecorderConfig, SchedPolicy};

    fn run_with(
        policy: SchedPolicy,
        replay: Option<tracedbg_mpsim::ReplayLog>,
    ) -> (Vec<u32>, tracedbg_mpsim::ReplayLog) {
        let cfg = PoolConfig::default();
        let mut e = Engine::launch(
            EngineConfig {
                policy,
                recorder: RecorderConfig::full(),
                replay,
                ..Default::default()
            },
            programs(&cfg),
        );
        assert!(e.run().is_completed());
        let store = e.trace_store();
        (completion_order(&store), e.match_log())
    }

    #[test]
    fn all_tasks_complete() {
        let (order, _) = run_with(SchedPolicy::RoundRobin, None);
        assert_eq!(order.len(), PoolConfig::default().tasks);
    }

    #[test]
    fn replay_pins_wildcard_order_across_seeds() {
        let (order1, log) = run_with(SchedPolicy::Seeded(3), None);
        // Different seed, forced by the recorded log: same order.
        let (order2, _) = run_with(SchedPolicy::Seeded(1234), Some(log));
        assert_eq!(order1, order2);
    }

    #[test]
    fn different_seeds_can_differ() {
        // Not guaranteed for every seed pair, but these differ (and if the
        // pattern were fully deterministic the replay test above would be
        // vacuous).
        let orders: Vec<Vec<u32>> = (0..8)
            .map(|s| run_with(SchedPolicy::Seeded(s), None).0)
            .collect();
        assert!(
            orders.windows(2).any(|w| w[0] != w[1]),
            "expected some seed-dependent variation: {orders:?}"
        );
    }
}
