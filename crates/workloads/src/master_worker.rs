//! A master/worker pool with wildcard receives.
//!
//! The master hands out work items and collects results with
//! `MPI_ANY_SOURCE` receives — the nondeterministic construct §4.2's
//! replay control exists for. Under a perturbed scheduling seed the result
//! arrival order varies run to run; under replay it is pinned. Completion
//! order is recorded via probes so tests (and the replay ablation bench)
//! can compare orders across runs.

use tracedbg_mpsim::{Payload, ProcessCtx, ProgramFn, Rank, Tag};

const TAG_WORK: Tag = Tag(30);
const TAG_RESULT: Tag = Tag(31);
const TAG_STOP: Tag = Tag(32);

/// Pool parameters.
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    pub nprocs: usize,
    pub tasks: usize,
    /// Base simulated cost per task (ns); task `i` costs
    /// `base_cost * (1 + i % 3)` so workers finish out of order.
    pub base_cost: u64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            nprocs: 4,
            tasks: 9,
            base_cost: 50_000,
        }
    }
}

fn master(ctx: &mut ProcessCtx, cfg: &PoolConfig) {
    let site = ctx.site("pool.c", 10, "master");
    let cfg = *cfg;
    ctx.scope(site, [cfg.tasks as i64, 0], move |ctx| {
        let nworkers = cfg.nprocs - 1;
        let mut next_task = 0usize;
        let mut outstanding = 0usize;
        // Prime every worker with one task.
        for w in 1..=nworkers {
            if next_task < cfg.tasks {
                ctx.send(
                    Rank(w as u32),
                    TAG_WORK,
                    Payload::from_i64(next_task as i64),
                    site,
                );
                next_task += 1;
                outstanding += 1;
            }
        }
        // Collect results with wildcard receives; keep the pipeline full.
        let mut done = 0usize;
        while done < cfg.tasks {
            let m = ctx.recv_any(Some(TAG_RESULT), site);
            done += 1;
            outstanding -= 1;
            // Record the nondeterministic completion order.
            ctx.probe("completed_by", m.src.0 as i64, site);
            if next_task < cfg.tasks {
                ctx.send(m.src, TAG_WORK, Payload::from_i64(next_task as i64), site);
                next_task += 1;
                outstanding += 1;
            }
        }
        assert_eq!(outstanding, 0);
        // Dismiss the pool.
        for w in 1..=nworkers {
            ctx.send(Rank(w as u32), TAG_STOP, Payload::empty(), site);
        }
    });
}

fn worker(ctx: &mut ProcessCtx, cfg: &PoolConfig, rank: usize) {
    let site = ctx.site("pool.c", 40, "worker");
    let cfg = *cfg;
    ctx.scope(site, [rank as i64, 0], move |ctx| loop {
        let m = ctx.recv(Some(Rank(0)), None, site);
        if m.tag == TAG_STOP {
            break;
        }
        let task = m.payload.to_i64().unwrap() as u64;
        ctx.compute(cfg.base_cost * (1 + task % 3), site);
        ctx.send(Rank(0), TAG_RESULT, Payload::from_i64(task as i64), site);
    });
}

/// Build the pool programs.
pub fn programs(cfg: &PoolConfig) -> Vec<ProgramFn> {
    assert!(cfg.nprocs >= 2);
    let mut out: Vec<ProgramFn> = Vec::new();
    let c0 = *cfg;
    out.push(Box::new(move |ctx| master(ctx, &c0)));
    for r in 1..cfg.nprocs {
        let c = *cfg;
        out.push(Box::new(move |ctx| worker(ctx, &c, r)));
    }
    out
}

/// A reusable factory for debugger sessions.
pub fn factory(cfg: PoolConfig) -> impl Fn() -> Vec<ProgramFn> + Send + Sync {
    move || programs(&cfg)
}

/// Extract the completion order recorded by the master's probes.
pub fn completion_order(store: &tracedbg_trace::TraceStore) -> Vec<u32> {
    store
        .by_rank(Rank(0))
        .iter()
        .map(|&id| store.record(id))
        .filter(|r| r.label.as_deref() == Some("completed_by"))
        .map(|r| r.args[0] as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_mpsim::{Engine, EngineConfig, RecorderConfig, SchedPolicy};

    fn run_with(
        policy: SchedPolicy,
        replay: Option<tracedbg_mpsim::ReplayLog>,
    ) -> (Vec<u32>, tracedbg_mpsim::ReplayLog) {
        let cfg = PoolConfig::default();
        let mut e = Engine::launch(
            EngineConfig {
                policy,
                recorder: RecorderConfig::full(),
                replay,
                ..Default::default()
            },
            programs(&cfg),
        );
        assert!(e.run().is_completed());
        let store = e.trace_store();
        (completion_order(&store), e.match_log())
    }

    #[test]
    fn all_tasks_complete() {
        let (order, _) = run_with(SchedPolicy::RoundRobin, None);
        assert_eq!(order.len(), PoolConfig::default().tasks);
    }

    #[test]
    fn replay_pins_wildcard_order_across_seeds() {
        let (order1, log) = run_with(SchedPolicy::Seeded(3), None);
        // Different seed, forced by the recorded log: same order.
        let (order2, _) = run_with(SchedPolicy::Seeded(1234), Some(log));
        assert_eq!(order1, order2);
    }

    #[test]
    fn different_seeds_can_differ() {
        // Not guaranteed for every seed pair, but these differ (and if the
        // pattern were fully deterministic the replay test above would be
        // vacuous).
        let orders: Vec<Vec<u32>> = (0..8)
            .map(|s| run_with(SchedPolicy::Seeded(s), None).0)
            .collect();
        assert!(
            orders.windows(2).any(|w| w[0] != w[1]),
            "expected some seed-dependent variation: {orders:?}"
        );
    }
}
