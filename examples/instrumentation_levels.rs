//! The §2 instrumentation spectrum, end to end.
//!
//! Runs the same script program under the three strategies the paper
//! compares — AIMS-style source-to-source instrumentation at two
//! resolutions (§2.1), UserMonitor-only (§2.2), and PMPI comm-only
//! wrappers (§2.3) — and shows the trade-off the paper describes: effort
//! vs. history resolution vs. overhead.
//!
//! ```sh
//! cargo run --example instrumentation_levels
//! ```

use tracedbg::prelude::*;
use tracedbg::workloads::script::{self, InstrumentLevel};

const SRC: &str = r#"
fn worker
  recv from 0 tag 1 into x
  compute 20000
  let y = x * 2
  send 0 tag 2 y
end
fn main
  if rank == 0
    loop w 1 nprocs
      send w tag 1 ( w + 100 )
    end
    loop w 1 nprocs
      recv from any tag 2 into r
    end
  else
    call worker
  end
end
"#;

fn run(src: &str, recorder: RecorderConfig) -> (usize, usize, u64) {
    let parsed = script::parse(src).expect("parse");
    let mut e = Engine::launch(
        EngineConfig::with_recorder(recorder),
        script::programs(&parsed, 4, "levels.script"),
    );
    assert!(e.run().is_completed());
    let invocations: u64 = e.invocations().iter().sum();
    let store = e.trace_store();
    let probes = store
        .records()
        .iter()
        .filter(|r| r.kind == EventKind::Probe)
        .count();
    (store.len(), probes, invocations)
}

fn main() {
    // §2.1: the uinst analog — a real source-to-source pass.
    let fn_level = script::instrument_source(SRC, InstrumentLevel::Functions).unwrap();
    let stmt_level = script::instrument_source(SRC, InstrumentLevel::Statements).unwrap();
    println!("--- source after function-level instrumentation (excerpt) ---");
    for line in fn_level.lines().take(8) {
        println!("{line}");
    }
    println!("...\n");

    let rows = [
        (
            "uninstrumented source, full tracing",
            SRC.to_string(),
            RecorderConfig::full(),
        ),
        (
            "fn-level source instr. (§2.1)",
            fn_level,
            RecorderConfig::full(),
        ),
        (
            "stmt-level source instr. (§2.1)",
            stmt_level,
            RecorderConfig::full(),
        ),
        (
            "UserMonitor only (§2.2)",
            SRC.to_string(),
            RecorderConfig::markers_only(),
        ),
        (
            "PMPI comm wrappers (§2.3)",
            SRC.to_string(),
            RecorderConfig::comm_only(),
        ),
    ];
    println!(
        "{:<38} {:>8} {:>8} {:>12}",
        "strategy", "records", "probes", "monitor-calls"
    );
    let mut prev_probes = None;
    for (name, src, rc) in rows {
        let (records, probes, invocations) = run(&src, rc);
        println!("{name:<38} {records:>8} {probes:>8} {invocations:>12}");
        if name.contains("stmt-level") {
            // Statement-level strictly refines function-level.
            assert!(probes > prev_probes.unwrap_or(0));
        }
        prev_probes = Some(probes);
    }
    println!(
        "\nsame program, same results — history resolution and overhead scale\n\
         with the chosen instrumentation strategy, exactly the paper's spectrum."
    );
}
