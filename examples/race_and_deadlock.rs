//! Communication supervision (§4.4): message races under wildcard
//! receives, nondeterminism control on replay, and deadlock detection.
//!
//! ```sh
//! cargo run --example race_and_deadlock
//! ```

use tracedbg::causality::detect_races;
use tracedbg::prelude::*;
use tracedbg::workloads::master_worker::{self, completion_order, PoolConfig};

fn run_pool(
    policy: SchedPolicy,
    replay: Option<tracedbg::mpsim::ReplayLog>,
) -> (Vec<u32>, tracedbg::mpsim::ReplayLog, TraceStore) {
    let cfg = PoolConfig::default();
    let mut engine = Engine::launch(
        EngineConfig {
            policy,
            recorder: RecorderConfig::full(),
            replay,
            ..Default::default()
        },
        master_worker::programs(&cfg),
    );
    assert!(engine.run().is_completed());
    let store = engine.trace_store();
    let order = completion_order(&store);
    (order, engine.match_log(), store)
}

fn main() {
    // 1. A master/worker pool with ANY_SOURCE receives is nondeterministic:
    //    different scheduling seeds give different completion orders.
    let (order_a, log, store) = run_pool(SchedPolicy::Seeded(3), None);
    let (order_b, _, _) = run_pool(SchedPolicy::Seeded(17), None);
    println!("completion order, seed 3 : {order_a:?}");
    println!("completion order, seed 17: {order_b:?}");

    // 2. Race detection: every wildcard receive that had alternatives.
    let matching = MessageMatching::build(&store);
    let hb = HbIndex::build(&store, &matching);
    let races = detect_races(&store, &matching, &hb);
    println!(
        "race detection: {} of the wildcard receives had alternative senders",
        races.len()
    );
    assert!(!races.is_empty(), "the pool pattern must race");

    // 3. Nondeterminism control (§4.2): replay under a hostile seed with
    //    the recorded match log — the order is pinned.
    let (order_replay, _, _) = run_pool(SchedPolicy::Seeded(999_999), Some(log));
    println!("replayed order           : {order_replay:?}");
    assert_eq!(order_a, order_replay, "replay must pin the receive order");
    println!("replay reproduced the recorded causality under a different seed.\n");

    // 4. Deadlock detection: a circular receive chain.
    let factory: ProgramFactory = Box::new(|| {
        let mk = |me: u32, wait_on: u32| -> ProgramFn {
            Box::new(move |ctx| {
                let site = ctx.site("cycle.rs", 5, "node");
                ctx.compute(10_000, site);
                let _ = ctx.recv_from(Rank(wait_on), Tag(0), site);
                let _ = me;
            })
        };
        vec![mk(0, 1).into(), mk(1, 2).into(), mk(2, 0).into()]
    });
    let mut session = Session::launch(SessionConfig::default(), factory);
    let status = session.run();
    println!("cyclic program outcome: {status:?}");
    assert!(status.is_deadlocked());
    let report = HistoryReport::analyze(&session.trace());
    println!("{report}");
    assert_eq!(report.circular_waits.len(), 1);
    assert_eq!(report.circular_waits[0].ranks.len(), 3);
}
