//! The paper's running debugging story (§4.1, Figures 5–7): a distributed
//! Strassen multiply hangs; the trace display shows processes 0 and 7
//! blocked on each other; history analysis finds the missed message; a
//! stopline + replay + stepping pins the bug to the `jres` send
//! destination in `MatrSend`.
//!
//! ```sh
//! cargo run --example find_missed_message
//! ```

use tracedbg::prelude::*;
use tracedbg::workloads::strassen::{self, StrassenConfig, Variant};

fn main() {
    // Run the buggy program.
    let cfg = StrassenConfig::figures(Variant::JresBug);
    let factory: ProgramFactory = Box::new(strassen::factory(cfg));
    let mut session = Session::launch(
        SessionConfig {
            recorder: RecorderConfig::full(),
            ..Default::default()
        },
        factory,
    );

    println!("running the buggy Strassen on 8 processes...");
    let status = session.run();
    println!("outcome: {status:?}\n");
    assert!(status.is_deadlocked(), "the bug must deadlock the run");

    // Figure 5: the time-space diagram shows 0 and 7 blocked in receives.
    let trace = session.trace();
    let matching = MessageMatching::build(&trace);
    let model = TimelineModel::build(&trace, &matching, false);
    println!("--- Figure 5 view: blocked receives are '?' bars ---");
    println!("{}", render_ascii(&model, 110));

    // §4.4 history analysis: the missed message and the starving rank.
    let report = HistoryReport::analyze(&trace);
    println!("--- history analysis ---\n{report}\n");
    assert_eq!(report.circular_waits.len(), 1);

    // Figure 6 diagnosis: processes 1-6 receive 2 messages, 7 only 1.
    println!("received per worker: {:?}", &report.received_counts[1..]);

    // Set a stopline before the first distribution send and replay.
    let first_send_t = trace
        .records()
        .iter()
        .find(|r| r.kind == EventKind::Send)
        .map(|r| r.t_start)
        .unwrap();
    let stopline = Stopline::vertical(&trace, first_send_t.saturating_sub(1));
    println!("\nstopline before the first send: {:?}", stopline.markers);
    session.replay_to(&stopline);
    println!("replayed; markers {:?}", session.markers());

    // Step process 0 through MatrSend, watching the probed destination.
    println!("\nstepping P0 through MatrSend (probe 'jres' = B-part destination):");
    let mut observed = Vec::new();
    for _ in 0..40 {
        session.step(Rank(0));
        if let Some(dest) = session.latest_probe(Rank(0), "jres") {
            if observed.last() != Some(&dest) {
                observed.push(dest);
                println!(
                    "  at marker {:>3}: send B-part to rank {dest}",
                    session.markers().get(Rank(0))
                );
            }
        }
    }
    // Figure 7's conclusion: the destinations are 0..6 where 1..7 were
    // meant — "jres should be replaced by jres+1 in line 161".
    assert_eq!(observed.first(), Some(&0));
    println!(
        "\nBUG FOUND: MatrSend (strassen.c:161) sends the second submatrix to `jres`;\n\
         it should send to `jres+1` — worker 7 never gets its data, and rank 0\n\
         deadlocks against it waiting for the missing result."
    );
}
