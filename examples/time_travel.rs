//! Frontiers and time travel on the LU wavefront (Figure 8 + §4.2 undo).
//!
//! Select an event in the middle of a wavefront pipeline, compute its
//! past/future frontiers and concurrency region, use the past frontier as
//! a stopline, then demonstrate the parallel undo.
//!
//! ```sh
//! cargo run --example time_travel
//! ```

use tracedbg::causality::ConcurrencyRegion;
use tracedbg::prelude::*;
use tracedbg::workloads::lu::{self, LuConfig};

fn main() {
    let cfg = LuConfig::default();
    let factory: ProgramFactory = Box::new(lu::factory(cfg));
    let mut session = Session::launch(SessionConfig::default(), factory);
    assert!(session.run().is_completed());
    let trace = session.trace();
    let matching = MessageMatching::build(&trace);
    let hb = HbIndex::build(&trace, &matching);

    // Pick the middle stage's receive in the middle sweep.
    let mid_rank = Rank((cfg.nprocs / 2) as u32);
    let recvs: Vec<_> = trace
        .by_rank(mid_rank)
        .iter()
        .copied()
        .filter(|&id| trace.record(id).kind == EventKind::RecvDone)
        .collect();
    let selected = recvs[recvs.len() / 2];
    let rec = trace.record(selected);
    println!(
        "selected event: {:?} marker {} on {:?} at t={}",
        rec.kind, rec.marker, rec.rank, rec.t_end
    );

    // Figure 8: past and future frontiers around the selection.
    let past = Frontier::past_of(&trace, &hb, selected);
    let future = Frontier::future_of(&trace, &hb, selected);
    let region = ConcurrencyRegion::of(&hb, selected);
    println!(
        "concurrency region: {} events are concurrent with the selection",
        region.concurrent_events(&trace).len()
    );

    let mut model = TimelineModel::build(&trace, &matching, false);
    model.add_mark(&trace, selected, "selection");
    model.add_frontier(&trace, &past, "past frontier");
    model.add_frontier(&trace, &future, "future frontier");
    println!("\n{}", render_ascii(&model, 110));

    // Use the past frontier as a stopline: stop every process right after
    // the last point where it could have affected the selection.
    let stopline = Stopline::past_frontier(&trace, &hb, selected);
    println!("past-frontier stopline: {:?}", stopline.markers);
    assert!(stopline.is_consistent(&trace, &matching));
    session.replay_to(&stopline);
    let at_frontier = session.markers();
    println!("stopped at {at_frontier:?}");

    // Travel forward a little...
    session.step_all();
    session.step_all();
    println!("after two global steps: {:?}", session.markers());

    // ...and undo back.
    assert!(session.undo());
    println!("after undo: {:?}", session.markers());
    assert!(session.undo());
    assert_eq!(session.markers(), at_frontier);
    println!("second undo returned to the frontier stop. time travel works.");
}
