//! Communication supervision as a lint pass: run the rule engine over a
//! clean trace, a buggy trace, and a buggy workload script.
//!
//! ```sh
//! cargo run --example lint_report
//! ```

use tracedbg::lint::{lint_script, lint_trace, report, rule_catalog, LintConfig};
use tracedbg::prelude::*;
use tracedbg::workloads::{ring, script};

fn trace_of(factory: ProgramFactory) -> TraceStore {
    let mut session = Session::launch(SessionConfig::default(), factory);
    session.run();
    session.trace()
}

fn main() {
    let cfg = LintConfig::default();

    // 1. A correct program lints clean.
    let clean = trace_of(Box::new(|| ring::programs(&ring::RingConfig::default())));
    let diags = lint_trace(&clean, &cfg);
    println!("ring workload: {}", report::summary_line(&diags));
    assert!(diags.is_empty(), "the ring must lint clean");

    // 2. A buggy program: P0 leaks a send nobody receives, and P1 posts a
    //    receive for a tag that is never sent.
    let buggy = trace_of(Box::new(|| {
        let p0: ProgramFn = Box::new(|ctx| {
            let site = ctx.site("buggy.rs", 4, "main");
            ctx.send(Rank(1), Tag(7), Payload::from_i64(1), site);
            // Wrong tag: nobody ever receives this one.
            ctx.send(Rank(1), Tag(9), Payload::from_i64(2), site);
        });
        let p1: ProgramFn = Box::new(|ctx| {
            let site = ctx.site("buggy.rs", 11, "main");
            let _ = ctx.recv_from(Rank(0), Tag(7), site);
        });
        vec![p0.into(), p1.into()]
    }));
    let diags = lint_trace(&buggy, &cfg);
    println!("\nbuggy trace:");
    print!("{}", report::render_human(&diags));
    assert!(diags.iter().any(|d| d.rule.0 == "TDL001"));

    // 3. The script front end catches bugs before anything runs.
    let src = "\
fn main
  if rank == 0
    send 99 tag 1 rank
    send 0 tag 3 rank
  else
    recv from 0 tag 2 into x
    call helper
  end
end
";
    let parsed = script::parse(src).expect("script parses");
    let diags = lint_script(&parsed, 4, "buggy.script", &cfg);
    println!("\nbuggy script (4 procs):");
    print!("{}", report::render_human(&diags));
    assert!(diags.iter().any(|d| d.rule.0 == "SDL101"));
    assert!(diags.iter().any(|d| d.rule.0 == "SDL102"));

    // 4. The rule catalog, as shown by `tracedbg lint rules`.
    println!("\nrule catalog:");
    for info in rule_catalog() {
        println!(
            "  {}  {:<7}  {}",
            info.id,
            info.severity.to_string(),
            info.description
        );
    }
}
