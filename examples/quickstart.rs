//! Quickstart: trace a small program, look at its history, replay to a
//! stopline.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tracedbg::prelude::*;

fn main() {
    // 1. Write a message passing program against the simulated runtime.
    //    Three processes: P0 scatters a value, P1/P2 square it and send it
    //    back.
    let factory: ProgramFactory = Box::new(|| {
        let p0: ProgramFn = Box::new(|ctx| {
            let site = ctx.site("quickstart.rs", 20, "main");
            for w in 1..=2u32 {
                ctx.send(Rank(w), Tag(1), Payload::from_i64(w as i64 + 10), site);
            }
            for _ in 0..2 {
                let m = ctx.recv_any(Some(Tag(2)), site);
                println!("master got {} from P{}", m.payload.to_i64().unwrap(), m.src);
            }
        });
        let worker = |_w: u32| -> ProgramFn {
            Box::new(move |ctx| {
                let site = ctx.site("quickstart.rs", 32, "worker");
                let m = ctx.recv_from(Rank(0), Tag(1), site);
                let x = m.payload.to_i64().unwrap();
                ctx.compute(50_000, site); // simulated work
                ctx.send(Rank(0), Tag(2), Payload::from_i64(x * x), site);
            })
        };
        vec![p0.into(), worker(1).into(), worker(2).into()]
    });

    // 2. Debug it in a session.
    let mut session = Session::launch(SessionConfig::default(), factory);
    assert!(session.run().is_completed());

    // 3. The collected history: stats, analysis, time-space diagram.
    let trace = session.trace();
    println!("\n--- history ({} events) ---", trace.len());
    let report = HistoryReport::analyze(&trace);
    println!("{report}\n");

    let matching = MessageMatching::build(&trace);
    let model = TimelineModel::build(&trace, &matching, false);
    println!("{}", render_ascii(&model, 100));

    // 4. Set a stopline mid-execution and replay to it: every process
    //    stops at a consistent state.
    let (_, t_end) = trace.time_bounds();
    let stopline = Stopline::vertical(&trace, t_end / 2);
    println!(
        "replaying to stopline {} -> markers {:?}",
        stopline.origin, stopline.markers
    );
    assert!(stopline.is_consistent(&trace, &matching));
    let status = session.replay_to(&stopline);
    println!("after replay: {status:?}");
    println!("markers now: {:?}", session.markers());

    // 5. Step one process by one event, then run everything to the end.
    //    (P0 is blocked in a receive at this stopline, so stepping it
    //    would just keep it waiting — step a worker instead.)
    let before = session.markers().get(Rank(1));
    session.step(Rank(1));
    println!("after step of P1: {:?}", session.markers());
    assert_eq!(session.markers().get(Rank(1)), before + 1);
    assert!(session.continue_all().is_completed());
    println!("done.");
}
