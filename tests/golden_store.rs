//! Golden store-format corpus: every golden text trace must round-trip
//! text → on-disk store → text byte-identically, and the *committed*
//! store directories under `tests/golden/store/` must keep opening and
//! yielding exactly the events of their `.trc` counterparts — this is
//! what pins the v1 on-disk format: a writer change that shifts a single
//! byte, or a reader change that breaks compatibility with existing
//! stores, fails here.
//!
//! Re-bless after an intentional format change:
//!
//! ```text
//! scripts/bless.sh          # re-blesses both corpora
//! ```

use std::io::BufReader;
use std::path::PathBuf;
use tracedbg::store::{ingest_store, DiskStore, StoreOptions};
use tracedbg::trace::file::{read_text, write_text, TraceFile};
use tracedbg::trace::TraceSource;

/// Small segments so even modest goldens span several files.
const SEGMENT_EVENTS: usize = 32;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn golden_names() -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(golden_dir())
        .expect("tests/golden exists")
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "trc"))
                .then(|| p.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    names.sort();
    assert!(!names.is_empty(), "golden corpus is empty");
    names
}

fn read_golden(name: &str) -> (String, TraceFile) {
    let path = golden_dir().join(format!("{name}.trc"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{name}: cannot read {}: {e}", path.display()));
    let file = read_text(BufReader::new(text.as_bytes()))
        .unwrap_or_else(|e| panic!("{name}: cannot parse: {e}"));
    (text, file)
}

fn render(file: &TraceFile) -> String {
    let mut buf = Vec::new();
    write_text(&mut buf, file).expect("in-memory trace write");
    String::from_utf8(buf).expect("trace text is UTF-8")
}

/// text → store → text is the identity on every golden trace.
#[test]
fn golden_traces_roundtrip_through_the_store() {
    let scratch = std::env::temp_dir().join(format!("tracedbg-golden-rt-{}", std::process::id()));
    for name in golden_names() {
        let (text, file) = read_golden(&name);
        let n_ranks = file.n_ranks;
        let mem = file.into_store();
        let dir = scratch.join(&name);
        let disk = ingest_store(
            &mem,
            &dir,
            StoreOptions {
                segment_events: SEGMENT_EVENTS,
            },
        )
        .unwrap_or_else(|e| panic!("{name}: ingest failed: {e}"));
        let back = TraceFile::new(
            disk.events()
                .unwrap_or_else(|e| panic!("{name}: read back failed: {e}")),
            disk.sites().clone(),
            n_ranks,
        );
        let round = render(&back);
        assert_eq!(
            round, text,
            "{name}: text → store → text did not round-trip byte-identically"
        );
        disk.verify()
            .unwrap_or_else(|e| panic!("{name}: integrity audit failed: {e}"));
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

/// The committed store directories are byte-stable (writer determinism)
/// and remain readable (format compatibility).
#[test]
fn committed_store_goldens_stay_compatible() {
    let bless = std::env::var_os("BLESS").is_some();
    for name in golden_names() {
        let (text, file) = read_golden(&name);
        let n_ranks = file.n_ranks;
        let mem = file.into_store();
        let committed = golden_dir().join("store").join(&name);
        if bless {
            ingest_store(
                &mem,
                &committed,
                StoreOptions {
                    segment_events: SEGMENT_EVENTS,
                },
            )
            .unwrap_or_else(|e| panic!("{name}: bless failed: {e}"));
            continue;
        }
        // Reader compatibility: the committed directory opens and yields
        // exactly the golden events.
        assert!(
            committed.is_dir(),
            "{name}: missing committed store golden {}; run scripts/bless.sh",
            committed.display()
        );
        let disk = DiskStore::open(&committed)
            .unwrap_or_else(|e| panic!("{name}: committed store no longer opens: {e}"));
        let back = TraceFile::new(
            disk.events()
                .unwrap_or_else(|e| panic!("{name}: committed store read failed: {e}")),
            disk.sites().clone(),
            n_ranks,
        );
        assert_eq!(
            render(&back),
            text,
            "{name}: committed store yields different events than {name}.trc"
        );
        // Writer determinism: rebuilding from the text produces the
        // committed directory byte-for-byte.
        let scratch = std::env::temp_dir().join(format!(
            "tracedbg-golden-fresh-{}-{name}",
            std::process::id()
        ));
        ingest_store(
            &mem,
            &scratch,
            StoreOptions {
                segment_events: SEGMENT_EVENTS,
            },
        )
        .unwrap_or_else(|e| panic!("{name}: rebuild failed: {e}"));
        let mut entries: Vec<String> = std::fs::read_dir(&committed)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        entries.sort();
        let mut fresh: Vec<String> = std::fs::read_dir(&scratch)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        fresh.sort();
        assert_eq!(entries, fresh, "{name}: store file set diverged");
        for f in &entries {
            let want = std::fs::read(committed.join(f)).unwrap();
            let got = std::fs::read(scratch.join(f)).unwrap();
            assert_eq!(
                want, got,
                "{name}/{f}: writer no longer reproduces the committed bytes; \
                 if the format change is intentional, re-bless with scripts/bless.sh"
            );
        }
        let _ = std::fs::remove_dir_all(&scratch);
    }
}
