//! Golden-trace corpus: canonical traces of the seed workloads under the
//! deterministic scheduler, byte-for-byte.
//!
//! Any change to the engine, the cost model, the recorder, or a workload
//! that shifts a single event or timestamp fails here with the first
//! divergent line. If the change is intentional, re-bless the corpus:
//!
//! ```text
//! scripts/bless.sh          # == BLESS=1 cargo test --test golden
//! ```
//!
//! and review the resulting `tests/golden/*.trc` diff like any other code.

use std::path::PathBuf;
use tracedbg::prelude::*;
use tracedbg::trace::file::{write_text, TraceFile};
use tracedbg::workloads::{
    fib, heat, lu, master_worker, racy, random_comm, ring, script, strassen,
};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Run deterministically and render the canonical text trace. Workloads
/// that deadlock by design (`strassen-bug`) still trace deterministically.
fn canonical_trace<P: Into<tracedbg::mpsim::RankProgram>>(programs: Vec<P>) -> String {
    let mut e = Engine::launch(
        EngineConfig::with_recorder(RecorderConfig::full()),
        programs,
    );
    let _ = e.run();
    let store = e.trace_store();
    let file = TraceFile::new(
        store.records().to_vec(),
        store.sites().clone(),
        store.n_ranks(),
    );
    let mut buf = Vec::new();
    write_text(&mut buf, &file).expect("in-memory trace write");
    String::from_utf8(buf).expect("trace text is UTF-8")
}

fn check<P: Into<tracedbg::mpsim::RankProgram>>(name: &str, programs: Vec<P>) {
    let text = canonical_trace(programs);
    let path = golden_dir().join(format!("{name}.trc"));
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &text).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{name}: missing golden file {} ({e}); bless the corpus with scripts/bless.sh",
            path.display()
        )
    });
    if text != want {
        let line = text
            .lines()
            .zip(want.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1);
        let detail = match line {
            Some(n) => format!(
                "first divergence at line {n}:\n  got : {}\n  want: {}",
                text.lines().nth(n - 1).unwrap_or("<end of trace>"),
                want.lines().nth(n - 1).unwrap_or("<end of trace>"),
            ),
            None => format!(
                "line count changed: got {}, want {}",
                text.lines().count(),
                want.lines().count()
            ),
        };
        panic!(
            "{name}: canonical trace drifted from the golden corpus; {detail}\n\
             if the change is intentional, re-bless with scripts/bless.sh"
        );
    }
}

#[test]
fn golden_ring() {
    check("ring", ring::programs(&ring::RingConfig::default()));
}

#[test]
fn golden_heat() {
    check("heat", heat::programs(&heat::HeatConfig::default()));
}

#[test]
fn golden_lu() {
    check("lu", lu::programs(&lu::LuConfig::default()));
}

#[test]
fn golden_pool() {
    check(
        "pool",
        master_worker::programs(&master_worker::PoolConfig::default()),
    );
}

#[test]
fn golden_strassen() {
    check(
        "strassen",
        strassen::programs(&strassen::StrassenConfig::figures(
            strassen::Variant::Correct,
        )),
    );
}

#[test]
fn golden_strassen_bug() {
    check(
        "strassen-bug",
        strassen::programs(&strassen::StrassenConfig::figures(
            strassen::Variant::JresBug,
        )),
    );
}

#[test]
fn golden_fib() {
    check("fib-8", vec![fib::program(8)]);
}

#[test]
fn golden_random() {
    let pat = random_comm::generate(42, 4, 12);
    check("random-12", random_comm::programs(&pat, 42));
}

#[test]
fn golden_racy_wildcard() {
    check(
        "racy-wildcard",
        racy::wildcard_race(&racy::RacyConfig::default()),
    );
}

#[test]
fn golden_racy_deadlock() {
    check(
        "racy-deadlock",
        racy::orphan_deadlock(&racy::RacyConfig::default()),
    );
}

#[test]
fn golden_script_pingpong() {
    let src =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/scripts/pingpong.script");
    let text = std::fs::read_to_string(&src).expect("pingpong script exists");
    let parsed = script::parse(&text).expect("pingpong script parses");
    check(
        "script-pingpong",
        script::programs(&parsed, 4, "examples/scripts/pingpong.script"),
    );
}
