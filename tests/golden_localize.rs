//! Golden localization reports: `tracedbg localize` on the planted-bug
//! corpus must reproduce the committed `tests/golden/localize/*.json`
//! byte-for-byte. Any change to the scoring model, the divergence
//! analysis, or the report schema shifts these bytes — making every
//! ranking change a conscious, reviewed event.
//!
//! Re-bless after an intentional scoring change:
//!
//! ```text
//! scripts/bless.sh          # re-blesses all golden corpora
//! ```

use std::path::PathBuf;
use tracedbg::explore::ProgramSource;
use tracedbg::localize::{localize, LocalizeConfig, LocalizeReport};
use tracedbg::mpsim::Rank;
use tracedbg::trace::schedule::{Decision, Fault, ScheduleArtifact};
use tracedbg::workloads::planted::{
    planted_orphan_factory, planted_pipeline_factory, planted_wildcard_factory, PlantedConfig,
};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/localize")
}

/// The corpus: each workload with its canonical failing recipe (the same
/// artifacts `crates/localize/tests/known_bugs.rs` asserts accuracy on).
fn corpus() -> Vec<(&'static str, ProgramSource, ScheduleArtifact)> {
    let cfg = PlantedConfig::default();
    let mut wildcard = ScheduleArtifact::new("planted-wildcard", cfg.nprocs, 0);
    wildcard.decisions = vec![Decision::Turn {
        rank: Rank(cfg.bug_rank),
    }];
    let mut orphan = ScheduleArtifact::new("planted-orphan", cfg.nprocs, 0);
    orphan.decisions = vec![Decision::Turn {
        rank: Rank(cfg.bug_rank),
    }];
    let mut pipeline = ScheduleArtifact::new("planted-pipeline", cfg.nprocs, 0);
    pipeline.faults = vec![Fault::Delay {
        src: Rank(0),
        dst: Rank(cfg.bug_rank),
        nth: 1,
        extra_ns: cfg.work * 2,
    }];
    vec![
        (
            "planted-wildcard",
            Box::new(planted_wildcard_factory(cfg)) as ProgramSource,
            wildcard,
        ),
        (
            "planted-orphan",
            Box::new(planted_orphan_factory(cfg)) as ProgramSource,
            orphan,
        ),
        (
            "planted-pipeline",
            Box::new(planted_pipeline_factory(cfg)) as ProgramSource,
            pipeline,
        ),
    ]
}

#[test]
fn localize_reports_match_the_committed_goldens() {
    let bless = std::env::var_os("BLESS").is_some();
    tracedbg::mpsim::set_quiet_panics(true);
    for (name, src, artifact) in corpus() {
        let report = localize(&src, &artifact, &LocalizeConfig::default());
        let json = report.to_json();
        let path = golden_dir().join(format!("{name}.json"));
        if bless {
            std::fs::create_dir_all(golden_dir()).expect("create tests/golden/localize");
            std::fs::write(&path, format!("{json}\n"))
                .unwrap_or_else(|e| panic!("{name}: bless failed: {e}"));
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{name}: missing golden {}: {e}; run scripts/bless.sh",
                path.display()
            )
        });
        assert_eq!(
            json,
            want.trim_end(),
            "{name}: localization report drifted from the committed golden; \
             if the ranking change is intentional, re-bless with scripts/bless.sh"
        );
        // The committed golden must itself be a well-formed, sealed report.
        let back = LocalizeReport::from_json(want.trim_end()).expect("golden parses");
        assert!(back.digest_ok(), "{name}: committed golden digest broken");
    }
}
