//! Golden profiling reports: `tracedbg profile` on the planted-bug
//! corpus must reproduce the committed `tests/golden/profile/*.json`
//! byte-for-byte. Any change to the wait-state classifier, the
//! critical-path extraction, or the report schema shifts these bytes —
//! making every attribution change a conscious, reviewed event.
//!
//! Re-bless after an intentional change:
//!
//! ```text
//! scripts/bless.sh          # re-blesses all golden corpora
//! ```

use std::path::PathBuf;
use tracedbg::explore::{execute_metered, ProgramSource};
use tracedbg::mpsim::{Rank, SchedPolicy};
use tracedbg::profile::{ProfileInput, ProfileReport};
use tracedbg::trace::schedule::{Decision, Fault, ScheduleArtifact};
use tracedbg::workloads::planted::{
    planted_orphan_factory, planted_pipeline_factory, planted_wildcard_factory, PlantedConfig,
};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/profile")
}

/// The corpus: each planted workload with its canonical failing recipe
/// (the same artifacts the localize goldens pin).
fn corpus() -> Vec<(&'static str, ProgramSource, ScheduleArtifact)> {
    let cfg = PlantedConfig::default();
    let mut wildcard = ScheduleArtifact::new("planted-wildcard", cfg.nprocs, 0);
    wildcard.decisions = vec![Decision::Turn {
        rank: Rank(cfg.bug_rank),
    }];
    let mut orphan = ScheduleArtifact::new("planted-orphan", cfg.nprocs, 0);
    orphan.decisions = vec![Decision::Turn {
        rank: Rank(cfg.bug_rank),
    }];
    let mut pipeline = ScheduleArtifact::new("planted-pipeline", cfg.nprocs, 0);
    pipeline.faults = vec![Fault::Delay {
        src: Rank(0),
        dst: Rank(cfg.bug_rank),
        nth: 1,
        extra_ns: cfg.work * 2,
    }];
    vec![
        (
            "planted-wildcard",
            Box::new(planted_wildcard_factory(cfg)) as ProgramSource,
            wildcard,
        ),
        (
            "planted-orphan",
            Box::new(planted_orphan_factory(cfg)) as ProgramSource,
            orphan,
        ),
        (
            "planted-pipeline",
            Box::new(planted_pipeline_factory(cfg)) as ProgramSource,
            pipeline,
        ),
    ]
}

#[test]
fn profile_reports_match_the_committed_goldens() {
    let bless = std::env::var_os("BLESS").is_some();
    tracedbg::mpsim::set_quiet_panics(true);
    for (name, src, artifact) in corpus() {
        let run = execute_metered(
            &src,
            SchedPolicy::Scripted(artifact.decisions.clone()),
            &artifact.faults,
            false,
        );
        let report = ProfileReport::build(
            &run.store,
            ProfileInput {
                source: "schedule",
                workload: name,
                procs: artifact.procs,
                seed: artifact.seed,
                flight_dropped: 0,
            },
        );
        let json = report.to_json();
        let path = golden_dir().join(format!("{name}.json"));
        if bless {
            std::fs::create_dir_all(golden_dir()).expect("create tests/golden/profile");
            std::fs::write(&path, format!("{json}\n"))
                .unwrap_or_else(|e| panic!("{name}: bless failed: {e}"));
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{name}: missing golden {}: {e}; run scripts/bless.sh",
                path.display()
            )
        });
        assert_eq!(
            json,
            want.trim_end(),
            "{name}: profiling report drifted from the committed golden; \
             if the attribution change is intentional, re-bless with scripts/bless.sh"
        );
        // The committed golden must itself be a well-formed, sealed
        // report that keeps the planted rank in the top-2 of the blame
        // ranking and satisfies the makespan inequality.
        let back = ProfileReport::from_json(want.trim_end()).expect("golden parses");
        assert!(back.digest_ok(), "{name}: committed golden digest broken");
        assert!(back.critical_path_len <= back.makespan, "{name}");
        assert!(back.makespan <= back.busy_total + back.wait_total, "{name}");
        let ranking = back.blame_ranking();
        assert!(
            ranking.iter().take(2).any(|&r| r == 2),
            "{name}: planted rank 2 not in blame top-2: {ranking:?}"
        );
    }
}
