//! Checkpoint-restore latency: the task engine's restore path clones
//! frozen task frames and must never pay the legacy respawn cost
//! (spawn an OS thread per rank, fast-forward it through the reply
//! log). This pins the perf contract as a test, not just a bench: at
//! 64 ranks a task restore is required to beat a thread respawn
//! restore by at least 5x on medians.

use std::time::Instant;
use tracedbg::mpsim::{Engine, EngineCheckpoint, EngineConfig, RecorderConfig};
use tracedbg::workloads::ring::{self, RingConfig};

const CFG: RingConfig = RingConfig {
    nprocs: 64,
    rounds: 8,
    hop_cost: 0,
    tag_stride: 0,
};

/// Run the ring to completion once for the marker targets, then stop a
/// second engine halfway and snapshot it.
fn halfway_checkpoint<P, F>(mut programs: F) -> EngineCheckpoint
where
    P: Into<tracedbg::mpsim::RankProgram>,
    F: FnMut() -> Vec<P>,
{
    let launch = |ps: Vec<P>| {
        Engine::launch(
            EngineConfig {
                recorder: RecorderConfig::markers_only(),
                checkpoints: true,
                ..Default::default()
            },
            ps,
        )
    };
    let mut straight = launch(programs());
    assert!(straight.run().is_completed());
    let target = straight.markers();
    let mut stopped = launch(programs());
    for m in target.iter() {
        stopped.set_threshold(m.rank, Some((m.count / 2).max(1)));
    }
    assert!(stopped.run().is_stopped());
    stopped.snapshot()
}

/// Median wall time of `runs` invocations of `f`, nanoseconds.
fn median_ns(runs: usize, mut f: impl FnMut()) -> u128 {
    let mut ns: Vec<u128> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    ns.sort_unstable();
    ns[ns.len() / 2]
}

#[test]
fn task_restore_is_5x_faster_than_thread_respawn() {
    let task_cp = halfway_checkpoint(|| ring::programs(&CFG));
    let thread_cp = halfway_checkpoint(|| ring::thread_programs(&CFG));
    // Warmup + 9 timed restores each; medians are robust to a stray
    // slow iteration on a loaded CI box.
    let runs = 9;
    let task_ns = median_ns(runs, || {
        let e = Engine::restore(&task_cp, ring::programs(&CFG));
        assert_eq!(e.markers(), task_cp.markers());
    });
    let thread_ns = median_ns(runs, || {
        let e = Engine::restore(&thread_cp, ring::thread_programs(&CFG));
        assert_eq!(e.markers(), thread_cp.markers());
    });
    assert!(
        task_ns * 5 <= thread_ns,
        "task restore must be >=5x faster than thread respawn: \
         task={task_ns}ns thread={thread_ns}ns (ratio {:.1}x)",
        thread_ns as f64 / task_ns as f64
    );
}

#[test]
fn task_restore_continues_to_the_same_digest() {
    // The latency win is only a win if the restored engine is the same
    // machine: continue both the stopped original and the restored copy
    // to completion and require identical digests.
    let launch = || {
        Engine::launch(
            EngineConfig {
                recorder: RecorderConfig::markers_only(),
                checkpoints: true,
                ..Default::default()
            },
            ring::programs(&CFG),
        )
    };
    let mut straight = launch();
    assert!(straight.run().is_completed());
    let target = straight.markers();
    let mut stopped = launch();
    for m in target.iter() {
        stopped.set_threshold(m.rank, Some((m.count / 2).max(1)));
    }
    assert!(stopped.run().is_stopped());
    let cp = stopped.snapshot();
    stopped.clear_thresholds();
    stopped.resume_trapped();
    assert!(stopped.run().is_completed());

    let mut restored = Engine::restore(&cp, ring::programs(&CFG));
    restored.clear_thresholds();
    restored.resume_trapped();
    assert!(restored.run().is_completed());
    assert_eq!(restored.digest(), stopped.digest());
    assert_eq!(restored.markers(), stopped.markers());
}
