//! Cross-crate integration tests: full debugging stories end to end.

use std::io::Cursor;
use tracedbg::causality::{cut_of_time, verify_cut, ConcurrencyRegion, Frontier, HbIndex};
use tracedbg::prelude::*;
use tracedbg::trace::file::{read_text, write_text, TraceFile};
use tracedbg::tracegraph::{ActionGraph, CallGraph, CommGraph, TraceGraph};
use tracedbg::workloads::lu::{self, LuConfig};
use tracedbg::workloads::master_worker::{self, completion_order, PoolConfig};
use tracedbg::workloads::ring::{self, RingConfig};
use tracedbg::workloads::strassen::{self, StrassenConfig, Variant};

fn strassen_session(variant: Variant) -> Session {
    let cfg = StrassenConfig::figures(variant);
    Session::launch(
        SessionConfig {
            recorder: RecorderConfig::full(),
            ..Default::default()
        },
        Box::new(strassen::factory(cfg)),
    )
}

#[test]
fn lint_catches_the_jres_bug() {
    // The paper's bug hunt (§4.1) takes stoplines, replay, and probes; the
    // lint pass flags the same run in one shot: the misdirected send shows
    // up as a leaked send, the starved ranks as a wait cycle.
    let mut session = strassen_session(Variant::JresBug);
    assert!(session.run().is_deadlocked());
    let diags = tracedbg::lint::lint_trace(&session.trace(), &LintConfig::default());
    assert!(diags.iter().any(|d| d.rule.0 == "TDL001"), "{diags:?}");
    assert!(diags.iter().any(|d| d.rule.0 == "TDL006"), "{diags:?}");
    assert!(tracedbg::lint::report::has_errors(&diags));
}

#[test]
fn full_bug_hunt_story() {
    // The §4.1 narrative as assertions: deadlock → analysis → stopline →
    // replay → step → probe reveals the wrong destination.
    let mut session = strassen_session(Variant::JresBug);
    assert!(session.run().is_deadlocked());
    let trace = session.trace();
    let report = HistoryReport::analyze(&trace);
    assert_eq!(report.circular_waits.len(), 1);
    assert_eq!(
        report.circular_waits[0].ranks,
        vec![Rank(0), Rank(7)],
        "figure 5: ranks 0 and 7 wait on each other"
    );
    assert_eq!(&report.received_counts[1..7], &[2, 2, 2, 2, 2, 2]);
    assert_eq!(report.received_counts[7], 1, "figure 6: P7 starves");
    assert!(!report.unmatched_sends.is_empty(), "the missed message");

    // Stopline before the first send; replay; the stop is consistent.
    let first_send_t = trace
        .records()
        .iter()
        .find(|r| r.kind == EventKind::Send)
        .unwrap()
        .t_start;
    let sl = Stopline::vertical(&trace, first_send_t.saturating_sub(1));
    let matching = MessageMatching::build(&trace);
    assert!(sl.is_consistent(&trace, &matching));
    assert!(session.replay_to(&sl).is_stopped());

    // Step P0 until the first B-part send probe appears: destination 0,
    // where 1 was meant (jres vs jres+1).
    let mut first_dest = None;
    for _ in 0..60 {
        session.step(Rank(0));
        if let Some(d) = session.latest_probe(Rank(0), "jres") {
            first_dest = Some(d);
            break;
        }
    }
    assert_eq!(first_dest, Some(0), "the buggy destination is exposed");
}

#[test]
fn correct_strassen_verifies_and_draws() {
    let mut session = strassen_session(Variant::Correct);
    assert!(session.run().is_completed());
    let trace = session.trace();
    // Figure 3 shape: 14 distribution sends from P0, 7 result sends.
    let sends_from_0 = trace
        .records()
        .iter()
        .filter(|r| r.kind == EventKind::Send && r.rank == Rank(0))
        .count();
    assert_eq!(sends_from_0, 14);
    let matching = MessageMatching::build(&trace);
    assert!(matching.is_clean());
    assert_eq!(matching.matched.len(), 21);

    // Every renderer accepts the full trace.
    let model = TimelineModel::build(&trace, &matching, false);
    let ascii = render_ascii(&model, 100);
    assert!(ascii.contains("P7"));
    let svg = render_svg(&model, 900.0);
    assert!(svg.contains("</svg>"));

    // Graph abstractions.
    let tg = TraceGraph::build(&trace);
    assert!(tg.n_nodes() > 8);
    let cg = CallGraph::project(&tg, Rank(0));
    assert!(cg.functions.iter().any(|f| f == "MatrSend"));
    let comm = CommGraph::build(&trace, &matching);
    assert_eq!(comm.n_nodes(), 21);
    let actions = ActionGraph::build(&trace);
    assert!(!actions.of(Rank(0), "MatrSend").is_empty());
}

#[test]
fn trace_file_roundtrip_preserves_analysis() {
    let mut session = strassen_session(Variant::Correct);
    session.run();
    let trace = session.trace();
    let file = TraceFile::new(
        trace.records().to_vec(),
        trace.sites().clone(),
        trace.n_ranks(),
    );
    let mut buf = Vec::new();
    write_text(&mut buf, &file).unwrap();
    let back = read_text(Cursor::new(&buf)).unwrap().into_store();
    assert_eq!(back.len(), trace.len());
    let mm1 = MessageMatching::build(&trace);
    let mm2 = MessageMatching::build(&back);
    assert_eq!(mm1.matched.len(), mm2.matched.len());
    // Happens-before survives the round trip.
    let hb1 = HbIndex::build(&trace, &mm1);
    let hb2 = HbIndex::build(&back, &mm2);
    for id in trace.ids().take(50) {
        assert_eq!(
            hb1.clock(id).components(),
            hb2.clock(id).components(),
            "clock mismatch at {id:?}"
        );
    }
}

#[test]
fn every_vertical_cut_of_a_real_trace_is_consistent() {
    let mut session = strassen_session(Variant::Correct);
    session.run();
    let trace = session.trace();
    let mm = MessageMatching::build(&trace);
    let (lo, hi) = trace.time_bounds();
    let step = ((hi - lo) / 64).max(1);
    let mut t = lo;
    while t <= hi {
        let cut = cut_of_time(&trace, t);
        assert!(
            verify_cut(&trace, &mm, &cut).is_empty(),
            "vertical cut at t={t} inconsistent"
        );
        t += step;
    }
}

#[test]
fn frontier_stoplines_on_lu_are_consistent_and_replayable() {
    let cfg = LuConfig::default();
    let mut session = Session::launch(SessionConfig::default(), Box::new(lu::factory(cfg)));
    assert!(session.run().is_completed());
    let trace = session.trace();
    let mm = MessageMatching::build(&trace);
    let hb = HbIndex::build(&trace, &mm);
    // Select a middle receive.
    let mid = Rank((cfg.nprocs / 2) as u32);
    let recv = trace
        .by_rank(mid)
        .iter()
        .copied()
        .find(|&id| trace.record(id).kind == EventKind::RecvDone)
        .unwrap();
    let past = Stopline::past_frontier(&trace, &hb, recv);
    let future = Stopline::future_frontier(&trace, &hb, recv);
    assert!(past.is_consistent(&trace, &mm));
    assert!(future.is_consistent(&trace, &mm));
    // On every rank except the selected one, the past frontier precedes
    // (or meets) the exclusive future cut — the concurrency region lies
    // between them. (On the selected rank the past includes the event
    // itself while the future cut stops just before it.)
    for r in 0..trace.n_ranks() {
        if Rank(r as u32) == mid {
            continue;
        }
        assert!(
            past.markers.get(Rank(r as u32)) <= future.markers.get(Rank(r as u32)),
            "rank {r}: past {:?} future {:?}",
            past.markers,
            future.markers
        );
    }
    // Replay to the past frontier: markers land exactly on it.
    session.replay_to(&past);
    assert_eq!(session.markers(), past.markers);

    // Concurrency region is consistent with the frontier markers.
    let region = ConcurrencyRegion::of(&hb, recv);
    for id in region.concurrent_events(&trace) {
        let f = Frontier::past_of(&trace, &hb, recv);
        let rec = trace.record(id);
        if let Some(m) = f.marker_of(rec.rank) {
            assert!(rec.marker > m.count, "concurrent event inside the past");
        }
    }
}

#[test]
fn replay_reproduces_timestamps_exactly() {
    // Determinism: a replay regenerates the identical time-space diagram.
    let cfg = PoolConfig::default();
    let run = |policy: SchedPolicy, replay| {
        let mut e = Engine::launch(
            EngineConfig {
                policy,
                recorder: RecorderConfig::full(),
                replay,
                ..Default::default()
            },
            master_worker::programs(&cfg),
        );
        assert!(e.run().is_completed());
        let store = e.trace_store();
        let recs: Vec<(u32, u64, u64, u64)> = store
            .records()
            .iter()
            .map(|r| (r.rank.0, r.marker, r.t_start, r.t_end))
            .collect();
        (recs, e.match_log())
    };
    let (recs1, log) = run(SchedPolicy::Seeded(5), None);
    let (recs2, _) = run(SchedPolicy::Seeded(777), Some(log));
    assert_eq!(recs1, recs2, "replayed trace must be bit-identical");
}

#[test]
fn undo_across_multiple_stops_on_ring() {
    let cfg = RingConfig::default();
    let mut session = Session::launch(SessionConfig::default(), Box::new(ring::factory(cfg)));
    assert!(session.run().is_completed());
    let final_markers = session.markers();
    // Replay to an early stopline, then walk forward with global steps.
    let trace = session.trace();
    let sl = Stopline::vertical(&trace, trace.time_bounds().1 / 4);
    session.replay_to(&sl);
    let stops: Vec<MarkerVector> = (0..3)
        .map(|_| {
            session.step_all();
            session.markers()
        })
        .collect();
    // Undo unwinds the stops in reverse order.
    assert!(session.undo());
    assert_eq!(session.markers(), stops[1]);
    assert!(session.undo());
    assert_eq!(session.markers(), stops[0]);
    // Continue to completion: same final state as the recording run.
    assert!(session.continue_all().is_completed());
    assert_eq!(session.markers(), final_markers);
}

#[test]
fn command_interface_drives_a_session() {
    let cfg = RingConfig {
        nprocs: 3,
        rounds: 2,
        hop_cost: 1_000,
        tag_stride: 0,
    };
    let session = Session::launch(SessionConfig::default(), Box::new(ring::factory(cfg)));
    let mut ci = CommandInterface::new(session);
    let transcript = ci.script(&["run", "analyze", "markers"]);
    assert!(transcript.contains("completed"), "{transcript}");
    assert!(transcript.contains("matched message(s)"), "{transcript}");
    let t2 = ci.execute("stopline t 1");
    assert!(t2.contains("stopline"), "{t2}");
    let t3 = ci.execute("replay");
    assert!(t3.contains("stopped") || t3.contains("completed"), "{t3}");
}

#[test]
fn wildcard_completion_order_is_pinned_by_replay() {
    let cfg = PoolConfig {
        nprocs: 5,
        tasks: 12,
        base_cost: 10_000,
    };
    let run = |policy: SchedPolicy, replay| {
        let mut e = Engine::launch(
            EngineConfig {
                policy,
                recorder: RecorderConfig::full(),
                replay,
                ..Default::default()
            },
            master_worker::programs(&cfg),
        );
        assert!(e.run().is_completed());
        let s = e.trace_store();
        (completion_order(&s), e.match_log())
    };
    let (o1, log) = run(SchedPolicy::Seeded(11), None);
    let (o2, _) = run(SchedPolicy::Seeded(4242), Some(log));
    assert_eq!(o1, o2);
    assert_eq!(o1.len(), 12);
}

#[test]
fn comm_only_strategy_still_supports_matching() {
    // PMPI-style instrumentation records only communication, but the
    // trace graph's message arcs and the matching still work.
    let cfg = RingConfig::default();
    let mut e = Engine::launch(
        EngineConfig::with_recorder(RecorderConfig::comm_only()),
        ring::programs(&cfg),
    );
    assert!(e.run().is_completed());
    let store = e.trace_store();
    assert_eq!(store.of_kind(EventKind::FnEnter).len(), 0);
    let mm = MessageMatching::build(&store);
    assert!(mm.is_clean());
    assert_eq!(mm.matched.len(), cfg.nprocs * cfg.rounds);
}

#[test]
fn crash_postmortem_replay() {
    // §4.1's opening scenario: "in a situation where a program crashes and
    // a post-mortem debugging session sheds no light on the bug, the user
    // can instrument the program and get an execution trace to the point
    // of the crash ... by setting a stopline and replaying, the user can
    // have the execution stop before the problem occurs."
    let factory: ProgramFactory = Box::new(|| {
        let p0: ProgramFn = Box::new(|ctx| {
            let s = ctx.site("crash.rs", 4, "main");
            for i in 0..10i64 {
                ctx.probe("i", i, s);
                ctx.compute(1_000, s);
                if i == 7 {
                    panic!("index out of bounds at iteration {i}");
                }
            }
        });
        let p1: ProgramFn = Box::new(|ctx| {
            let s = ctx.site("crash.rs", 20, "bystander");
            ctx.compute(500, s);
        });
        vec![p0.into(), p1.into()]
    });
    let mut session = Session::launch(
        SessionConfig {
            recorder: RecorderConfig::full(),
            ..Default::default()
        },
        factory,
    );
    // 1. The crash.
    match session.run() {
        SessionStatus::Panicked { rank, message } => {
            assert_eq!(*rank, Rank(0));
            assert!(message.contains("iteration 7"), "{message}");
        }
        other => panic!("{other:?}"),
    }
    // 2. The trace reaches the point of the crash.
    let trace = session.trace();
    assert_eq!(session.latest_probe(Rank(0), "i"), Some(7));
    // 3. Stop before the problem occurs: one event before the end of the
    //    crashed rank's history.
    let final_markers = trace.final_markers();
    let sl = Stopline {
        markers: MarkerVector::from_counts(vec![
            // Two events back: before the fatal iteration's probe.
            final_markers.get(Rank(0)) - 2,
            final_markers.get(Rank(1)),
        ]),
        origin: "before the crash".into(),
    };
    session.replay_to(&sl);
    assert!(session.status().is_stopped(), "{:?}", session.status());
    // The fatal iteration has not executed yet in the replay.
    assert_eq!(session.latest_probe(Rank(0), "i"), Some(7 - 1));
    // Standard debugging from here: one step reproduces the crash
    // deterministically.
    session.step(Rank(0));
    session.step(Rank(0));
    match session.continue_all() {
        SessionStatus::Panicked { message, .. } => {
            assert!(message.contains("iteration 7"), "{message}");
        }
        other => panic!("the replayed crash must reproduce: {other:?}"),
    }
}

#[test]
fn markers_only_strategy_supports_stopline_replay() {
    // The cheapest §2.2 mode: no trace records, but replay still stops at
    // exact markers. Record a reachable stop state by trapping rank 0
    // mid-run, then replay to exactly that state.
    let cfg = RingConfig::default();
    let run_cfg = EngineConfig::with_recorder(RecorderConfig::markers_only());
    let mut rec_engine = Engine::launch(run_cfg.clone(), ring::programs(&cfg));
    assert!(rec_engine.run().is_completed());
    let final_markers = rec_engine.markers();
    let log = rec_engine.match_log();

    // Trap rank 0 halfway through its events on a fresh recording run.
    let half = final_markers.get(Rank(0)) / 2;
    let mut stop_engine = Engine::launch(run_cfg.clone(), ring::programs(&cfg));
    stop_engine.set_threshold(Rank(0), Some(half));
    assert!(stop_engine.run().is_stopped());
    let stop_state = stop_engine.markers();
    assert_eq!(stop_state.get(Rank(0)), half);

    // Replay to that exact state under forced matching.
    let mut replay_engine = Engine::launch(
        EngineConfig {
            replay: Some(log),
            ..run_cfg
        },
        ring::programs(&cfg),
    );
    replay_engine.arm_stopline(&stop_state);
    let out = replay_engine.run();
    assert!(out.is_stopped(), "{out:?}");
    assert_eq!(replay_engine.markers(), stop_state);
}

#[test]
fn perturbed_run_records_a_schedule_that_replays_exactly() {
    // Satellite of the explore work: a run under an arbitrary perturbation
    // seed records its decision sequence; feeding that sequence back as a
    // scripted schedule must regenerate the trace event for event,
    // timestamps included.
    use tracedbg::trace::diff::{diff_traces, DiffMode};
    use tracedbg::workloads::random_comm;
    let pat = random_comm::generate(2024, 5, 30);
    let mut recorded = Engine::launch(
        EngineConfig {
            policy: SchedPolicy::Seeded(0xfeed),
            recorder: RecorderConfig::full(),
            ..Default::default()
        },
        random_comm::programs(&pat, 2024),
    );
    assert!(recorded.run().is_completed());
    let script = recorded.schedule_log();
    assert!(!script.is_empty());
    let recorded_trace = recorded.trace_store();

    let mut replayed = Engine::launch(
        EngineConfig {
            policy: SchedPolicy::Scripted(script),
            recorder: RecorderConfig::full(),
            ..Default::default()
        },
        random_comm::programs(&pat, 2024),
    );
    assert!(replayed.run().is_completed());
    assert!(!replayed.schedule_diverged(), "every decision must apply");
    let divs = diff_traces(&recorded_trace, &replayed.trace_store(), DiffMode::Exact);
    assert!(
        divs.is_empty(),
        "replay diverged:\n{}",
        divs.iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn explorer_finding_replays_through_the_debugger() {
    // The full loop at the facade level: explore a racy workload, take the
    // shrunk artifact, and re-execute it with the debugger's
    // schedule-driven replay.
    use tracedbg::workloads::racy::{wildcard_race_factory, RacyConfig};
    let cfg = ExploreConfig {
        workload: "racy-wildcard".into(),
        seed: 3,
        runs: 32,
        strategy: ExploreStrategy::Systematic,
        ..Default::default()
    };
    let report =
        Explorer::new(cfg, Box::new(wildcard_race_factory(RacyConfig::default()))).explore();
    let finding = report
        .findings
        .iter()
        .find(|f| f.class == "panic")
        .expect("the wildcard race is within a 32-run budget");
    assert!(finding.confirmed);

    tracedbg::mpsim::set_quiet_panics(true);
    let replay = replay_schedule(
        &finding.artifact,
        Box::new(wildcard_race_factory(RacyConfig::default())),
    );
    tracedbg::mpsim::set_quiet_panics(false);
    assert_eq!(replay.class, "panic");
    assert!(!replay.diverged);
    assert!(replay.detail.contains("worker 1"), "{}", replay.detail);
}

#[test]
fn stats_stream_identically_from_every_trace_plane() {
    // `tracedbg stats <path>` renders `TraceStats::from_source`; the
    // number stream must be identical whether the plane is the in-memory
    // store, a re-parsed `.trc` text file, or an ingested DiskStore
    // directory (read without materializing).
    let cfg = RingConfig {
        nprocs: 4,
        rounds: 3,
        hop_cost: 100,
        tag_stride: 10,
    };
    let mut e = Engine::launch(
        EngineConfig::with_recorder(RecorderConfig::full()),
        ring::programs(&cfg),
    );
    assert!(e.run().is_completed());
    let store = e.trace_store();
    let live = format!("{}", TraceStats::from_source(&store).unwrap());

    let file = TraceFile::new(
        store.records().to_vec(),
        store.sites().clone(),
        store.n_ranks(),
    );
    let mut text = Vec::new();
    write_text(&mut text, &file).unwrap();
    let reread = read_text(Cursor::new(text)).unwrap().into_store();
    assert_eq!(
        format!("{}", TraceStats::from_source(&reread).unwrap()),
        live
    );

    let dir = std::env::temp_dir().join(format!("tracedbg-stats-plane-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    tracedbg::store::ingest_records(
        store.records(),
        store.sites(),
        store.n_ranks(),
        &dir,
        StoreOptions::default(),
    )
    .unwrap();
    let disk = DiskStore::open(&dir).unwrap();
    let from_disk = format!("{}", TraceStats::from_source(&disk).unwrap());
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(from_disk, live, "DiskStore plane diverged");
}

#[test]
fn profile_report_blames_the_planted_rank_through_the_facade() {
    // End-to-end through the `tracedbg` facade: run the planted pipeline
    // bug under its canonical delay fault and check the profiler pins the
    // planted rank in the top-2 of the blame ranking, with the makespan
    // inequality intact.
    use tracedbg::profile::{ProfileInput, ProfileReport};
    use tracedbg::trace::schedule::Fault;
    use tracedbg::workloads::planted::{planted_pipeline_factory, PlantedConfig};
    let cfg = PlantedConfig::default();
    tracedbg::mpsim::set_quiet_panics(true);
    let mut e = Engine::launch(
        EngineConfig {
            recorder: RecorderConfig::full(),
            faults: tracedbg::mpsim::FaultPlan::new(vec![Fault::Delay {
                src: Rank(0),
                dst: Rank(cfg.bug_rank),
                nth: 1,
                extra_ns: cfg.work * 2,
            }]),
            ..Default::default()
        },
        planted_pipeline_factory(cfg)(),
    );
    e.run();
    tracedbg::mpsim::set_quiet_panics(false);
    let store = e.trace_store();
    let report = ProfileReport::build(
        &store,
        ProfileInput {
            source: "test",
            workload: "planted-pipeline",
            procs: store.n_ranks(),
            seed: 0,
            flight_dropped: 0,
        },
    );
    assert!(report.digest_ok());
    assert!(report.critical_path_len <= report.makespan);
    assert!(report.makespan <= report.busy_total + report.wait_total);
    let ranking = report.blame_ranking();
    assert!(
        ranking.iter().take(2).any(|&r| r == cfg.bug_rank),
        "planted rank {} not in blame top-2: {ranking:?}",
        cfg.bug_rank
    );
}
