//! Property-based tests over real engine executions.
//!
//! Random deadlock-free communication patterns (see
//! `tracedbg_workloads::random_comm`) are executed on the engine and the
//! paper's invariants are checked on the resulting traces:
//!
//! * every pattern completes, every message matches (no lost messages);
//! * every vertical time slice is a consistent cut (§4.1's stopline
//!   consistency theorem);
//! * happens-before is a strict partial order consistent with the
//!   concurrency-region classification;
//! * replay under a different perturbation seed reproduces the recorded
//!   trace exactly;
//! * trace files round-trip;
//! * dissemination conserves primitive arcs.

use proptest::prelude::*;
use tracedbg::causality::{cut_of_time, verify_cut, ConcurrencyRegion, HbIndex};
use tracedbg::lint::{lint_trace, LintConfig};
use tracedbg::prelude::*;
use tracedbg::trace::file::{read_text, write_text, TraceFile};
use tracedbg::tracegraph::TraceGraph;
use tracedbg::workloads::random_comm;

fn run_pattern(
    seed: u64,
    nprocs: usize,
    n_transfers: usize,
    policy: SchedPolicy,
    replay: Option<tracedbg::mpsim::ReplayLog>,
) -> (TraceStore, tracedbg::mpsim::ReplayLog) {
    let pat = random_comm::generate(seed, nprocs, n_transfers);
    let mut e = Engine::launch(
        EngineConfig {
            policy,
            recorder: RecorderConfig::full(),
            replay,
            ..Default::default()
        },
        random_comm::programs(&pat, seed),
    );
    let out = e.run();
    assert!(out.is_completed(), "pattern must complete: {out:?}");
    (e.trace_store(), e.match_log())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn patterns_complete_and_match_fully(
        seed in 0u64..10_000,
        nprocs in 2usize..6,
        n in 1usize..40,
    ) {
        let (store, _) = run_pattern(seed, nprocs, n, SchedPolicy::RoundRobin, None);
        let mm = MessageMatching::build(&store);
        prop_assert!(mm.is_clean());
        prop_assert_eq!(mm.matched.len(), n);
    }

    #[test]
    fn vertical_cuts_are_always_consistent(
        seed in 0u64..10_000,
        nprocs in 2usize..6,
        n in 1usize..30,
        slice in 0u64..100,
    ) {
        let (store, _) = run_pattern(seed, nprocs, n, SchedPolicy::RoundRobin, None);
        let mm = MessageMatching::build(&store);
        let (lo, hi) = store.time_bounds();
        let t = lo + (hi - lo) * slice / 100;
        let cut = cut_of_time(&store, t);
        prop_assert!(verify_cut(&store, &mm, &cut).is_empty(),
            "cut {:?} at t={} violated", cut, t);
    }

    #[test]
    fn happens_before_is_a_strict_partial_order(
        seed in 0u64..10_000,
        nprocs in 2usize..5,
        n in 1usize..20,
    ) {
        let (store, _) = run_pattern(seed, nprocs, n, SchedPolicy::RoundRobin, None);
        let mm = MessageMatching::build(&store);
        let hb = HbIndex::build(&store, &mm);
        let ids: Vec<_> = store.ids().collect();
        // Irreflexivity + antisymmetry on sampled pairs; transitivity via
        // a sampled triple.
        for (i, &a) in ids.iter().enumerate().step_by(3) {
            prop_assert!(!hb.happens_before(&store, a, a));
            for &b in ids.iter().skip(i).step_by(5) {
                if hb.happens_before(&store, a, b) {
                    prop_assert!(!hb.happens_before(&store, b, a));
                }
            }
        }
        for &a in ids.iter().step_by(4) {
            for &b in ids.iter().step_by(6) {
                for &c in ids.iter().step_by(7) {
                    if hb.happens_before(&store, a, b) && hb.happens_before(&store, b, c) {
                        prop_assert!(hb.happens_before(&store, a, c));
                    }
                }
            }
        }
    }

    #[test]
    fn concurrency_region_agrees_with_hb(
        seed in 0u64..10_000,
        nprocs in 2usize..5,
        n in 2usize..20,
        pick in 0usize..1000,
    ) {
        let (store, _) = run_pattern(seed, nprocs, n, SchedPolicy::RoundRobin, None);
        let mm = MessageMatching::build(&store);
        let hb = HbIndex::build(&store, &mm);
        let ids: Vec<_> = store.ids().collect();
        let sel = ids[pick % ids.len()];
        let region = ConcurrencyRegion::of(&hb, sel);
        use tracedbg::causality::frontier::Region;
        for &e in &ids {
            if e == sel { continue; }
            match region.classify_event(&store, e) {
                Region::Past => prop_assert!(hb.happens_before(&store, e, sel)),
                Region::Future => prop_assert!(hb.happens_before(&store, sel, e)),
                Region::Concurrent => prop_assert!(hb.concurrent(&store, sel, e)),
            }
        }
    }

    #[test]
    fn replay_reproduces_traces_under_any_seed(
        seed in 0u64..10_000,
        perturb in 0u64..10_000,
        nprocs in 2usize..5,
        n in 1usize..25,
    ) {
        let (s1, log) = run_pattern(seed, nprocs, n, SchedPolicy::Seeded(seed), None);
        let (s2, _) = run_pattern(seed, nprocs, n, SchedPolicy::Seeded(perturb), Some(log));
        let key = |s: &TraceStore| -> Vec<(u32, u64, u64, u64)> {
            s.records().iter().map(|r| (r.rank.0, r.marker, r.t_start, r.t_end)).collect()
        };
        prop_assert_eq!(key(&s1), key(&s2));
    }

    #[test]
    fn trace_files_roundtrip(
        seed in 0u64..10_000,
        nprocs in 2usize..5,
        n in 1usize..20,
    ) {
        let (store, _) = run_pattern(seed, nprocs, n, SchedPolicy::RoundRobin, None);
        let file = TraceFile::new(store.records().to_vec(), store.sites().clone(), store.n_ranks());
        let mut buf = Vec::new();
        write_text(&mut buf, &file).unwrap();
        let back = read_text(std::io::Cursor::new(&buf)).unwrap();
        prop_assert_eq!(back.records, store.records().to_vec());
    }

    #[test]
    fn dissemination_conserves_primitive_arcs(
        seed in 0u64..10_000,
        nprocs in 2usize..5,
        n in 1usize..40,
        limit in 2usize..64,
    ) {
        let (store, _) = run_pattern(seed, nprocs, n, SchedPolicy::RoundRobin, None);
        let full = TraceGraph::build(&store);
        let capped = TraceGraph::build_with_limit(&store, Some(limit));
        prop_assert_eq!(full.n_primitive_arcs(), capped.n_primitive_arcs());
        prop_assert!(capped.n_arcs() <= full.n_arcs());
    }

    /// Correct programs must lint clean: the rule engine may not cry wolf
    /// on any deadlock-free random pattern.
    #[test]
    fn clean_patterns_lint_clean(
        seed in 0u64..10_000,
        nprocs in 2usize..6,
        n in 1usize..30,
    ) {
        let (store, _) = run_pattern(seed, nprocs, n, SchedPolicy::RoundRobin, None);
        let diags = lint_trace(&store, &LintConfig::default());
        prop_assert!(diags.is_empty(), "clean pattern produced diagnostics: {diags:?}");
    }

    #[test]
    fn stopline_replay_lands_exactly(
        seed in 0u64..10_000,
        nprocs in 2usize..5,
        n in 2usize..20,
        slice in 1u64..99,
    ) {
        let pat = random_comm::generate(seed, nprocs, n);
        let factory: ProgramFactory = {
            let pat = pat.clone();
            Box::new(move || random_comm::programs(&pat, seed))
        };
        let mut session = Session::launch(SessionConfig::default(), factory);
        prop_assert!(session.run().is_completed());
        let trace = session.trace();
        let (lo, hi) = trace.time_bounds();
        let t = lo + (hi - lo) * slice / 100;
        let sl = Stopline::vertical(&trace, t);
        session.replay_to(&sl);
        prop_assert_eq!(session.markers(), sl.markers);
        // And the run can always be completed from there.
        prop_assert!(session.continue_all().is_completed());
    }
}

/// The seed workloads (deterministic, known-correct) lint clean.
#[test]
fn seed_workloads_lint_clean() {
    use tracedbg::workloads::{ring, strassen};
    let run = |programs: Vec<tracedbg::mpsim::RankProgram>| -> TraceStore {
        let mut e = Engine::launch(
            EngineConfig {
                recorder: RecorderConfig::full(),
                ..Default::default()
            },
            programs,
        );
        assert!(e.run().is_completed());
        e.trace_store()
    };
    let cfg = LintConfig::default();
    let ring_trace = run(ring::programs(&ring::RingConfig::default()));
    let diags = lint_trace(&ring_trace, &cfg);
    assert!(diags.is_empty(), "ring: {diags:?}");
    let strassen_trace = run(strassen::programs(&strassen::StrassenConfig::figures(
        strassen::Variant::Correct,
    )));
    let diags = lint_trace(&strassen_trace, &cfg);
    assert!(diags.is_empty(), "strassen: {diags:?}");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// MPI ordering guarantees survive arbitrary schedule perturbation:
    /// per (src, dst) pair, sends are sequenced in program order and
    /// receives complete in send order (non-overtaking). On failure
    /// proptest prints the counterexample, including `sched` — the
    /// perturbation seed that broke the ordering.
    #[test]
    fn fifo_and_non_overtaking_hold_under_any_schedule(
        seed in 0u64..10_000,
        sched in 0u64..10_000,
        nprocs in 2usize..6,
        n in 1usize..40,
    ) {
        use std::collections::HashMap;
        let (store, _) = run_pattern(seed, nprocs, n, SchedPolicy::Seeded(sched), None);
        let mut sends: HashMap<(u32, u32), Vec<(u64, u64)>> = HashMap::new();
        let mut recvs: HashMap<(u32, u32), Vec<(u64, u64)>> = HashMap::new();
        for r in store.records() {
            let Some(m) = &r.msg else { continue };
            let lane = (m.src.0, m.dst.0);
            match r.kind {
                // Marker = position in the executing process's own history,
                // so sorting by it recovers program order on that process.
                EventKind::Send => sends.entry(lane).or_default().push((r.marker, m.seq)),
                EventKind::RecvDone => recvs.entry(lane).or_default().push((r.marker, m.seq)),
                _ => {}
            }
        }
        for (pair, mut evs) in sends {
            evs.sort_unstable();
            for w in evs.windows(2) {
                prop_assert!(
                    w[0].1 < w[1].1,
                    "send seq out of order on {pair:?} under perturbation seed {sched}"
                );
            }
        }
        for (pair, mut evs) in recvs {
            evs.sort_unstable();
            for w in evs.windows(2) {
                prop_assert!(
                    w[0].1 < w[1].1,
                    "non-overtaking violated on {pair:?} under perturbation seed {sched}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Wide-rank snapshot/restore identity under faults (the task-engine
// checkpoint plane at scale).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    /// Snapshot a 128-rank butterfly mid-run — under an injected crash,
    /// hang, or message delay — restore it, and run both the original
    /// and the restored engine to the end: outcome, state digest, and
    /// faulted-rank set must be identical. Task frames are cloned on
    /// restore (no respawn, no reply fast-forward), so any divergence
    /// here is a checkpoint-plane bug, not scheduling noise.
    #[test]
    fn wide_snapshot_restore_is_identical_under_faults(
        fault_sel in 0usize..3,
        fault_rank in 0u32..128,
        after_ops in 0u64..8,
        extra_ns in 1u64..500_000,
        snap_at in 20usize..280,
    ) {
        use tracedbg::mpsim::FaultPlan;
        use tracedbg::trace::schedule::Fault;
        use tracedbg::workloads::wide::{butterfly_programs, ButterflyConfig};

        let cfg = ButterflyConfig { nprocs: 128 };
        let fault = match fault_sel {
            0 => Fault::Crash { rank: Rank(fault_rank), after_ops },
            1 => Fault::Hang { rank: Rank(fault_rank), after_ops },
            _ => Fault::Delay {
                src: Rank(fault_rank),
                // Stage-0 partner: the one channel guaranteed to carry
                // a message.
                dst: Rank(fault_rank ^ 1),
                nth: 0,
                extra_ns,
            },
        };
        let ecfg = EngineConfig {
            recorder: RecorderConfig::markers_only(),
            checkpoints: true,
            faults: FaultPlan::new(vec![fault]),
            ..Default::default()
        };
        // Ground truth: the straight faulted run (crash/hang starves the
        // butterfly into deadlock; delay-only runs still complete).
        let mut straight = Engine::launch(ecfg.clone(), butterfly_programs(&cfg));
        let straight_out = straight.run();

        // Same run, snapshotted mid-flight at a decision index.
        let mut snapped = Engine::launch(ecfg, butterfly_programs(&cfg));
        snapped.set_snapshot_at(snap_at);
        let _ = snapped.run();
        let Some(cp) = snapped.take_pending_snapshot() else {
            // The run ended before the snapshot point armed — nothing to
            // restore in this case.
            continue;
        };
        let mut restored = Engine::restore(&cp, butterfly_programs(&cfg));
        let restored_out = restored.run();
        prop_assert_eq!(
            format!("{straight_out:?}"),
            format!("{restored_out:?}"),
            "restored run outcome diverged"
        );
        prop_assert_eq!(restored.digest(), straight.digest(), "state digest diverged");
        prop_assert_eq!(restored.faulted(), straight.faulted(), "faulted set diverged");
    }
}
