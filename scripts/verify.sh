#!/usr/bin/env bash
# Full offline verification: what CI runs, what a PR must keep green.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --offline --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --offline --release

echo "==> cargo test -q"
cargo test --offline -q

echo "==> lint smoke: seed workloads must be clean"
./target/release/tracedbg run ring --trace target/verify_ring.trc >/dev/null
./target/release/tracedbg lint target/verify_ring.trc
./target/release/tracedbg lint script:examples/scripts/pingpong.script --procs 4

echo "==> explore smoke: the seeded races must be found and must reproduce"
rm -rf target/verify_explore
# `explore` exits non-zero when it finds violations — here that is the
# expected outcome, so success (no findings) is the failure case.
if ./target/release/tracedbg explore racy-wildcard --procs 3 --runs 48 --seed 7 \
    --out target/verify_explore >/dev/null; then
  echo "explore failed to find the seeded wildcard race" >&2; exit 1
fi
if ./target/release/tracedbg explore racy-deadlock --procs 3 --runs 48 --seed 7 \
    --strategy systematic --out target/verify_explore >/dev/null; then
  echo "explore failed to find the seeded orphan deadlock" >&2; exit 1
fi
for class in racy-wildcard-panic racy-deadlock-deadlock; do
  art=$(ls target/verify_explore/${class}-*.sched.json | head -n 1)
  ./target/release/tracedbg replay --schedule "$art" >/dev/null \
    || { echo "schedule $art did not reproduce its failure" >&2; exit 1; }
done

echo "verify: OK"
