#!/usr/bin/env bash
# Full offline verification: what CI runs, what a PR must keep green.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --offline --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --offline --release

echo "==> cargo test -q"
cargo test --offline -q

echo "==> lint smoke: seed workloads must be clean"
./target/release/tracedbg run ring --trace target/verify_ring.trc >/dev/null
./target/release/tracedbg lint target/verify_ring.trc
./target/release/tracedbg lint script:examples/scripts/pingpong.script --procs 4

echo "verify: OK"
