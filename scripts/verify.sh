#!/usr/bin/env bash
# Full offline verification: what CI runs, what a PR must keep green.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --offline --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --offline --release

echo "==> cargo test -q"
cargo test --offline -q

echo "==> lint smoke: seed workloads must be clean"
./target/release/tracedbg run ring --trace target/verify_ring.trc >/dev/null
./target/release/tracedbg lint target/verify_ring.trc
./target/release/tracedbg lint script:examples/scripts/pingpong.script --procs 4

echo "==> store smoke: ingest/query round-trip, run --store tee, corruption battery"
rm -rf target/verify_store target/verify_store_run
./target/release/tracedbg ingest target/verify_ring.trc --out target/verify_store >/dev/null
# The store must render exactly the trace it was built from.
diff <(./target/release/tracedbg view target/verify_ring.trc) \
     <(./target/release/tracedbg view target/verify_store) >/dev/null \
  || { echo "store view diverged from the source trace" >&2; exit 1; }
# One query per index family; each touches only its own index section.
for sel in "--rank 0" "--tag 20" "--kind SN" "--window 0:100000"; do
  ./target/release/tracedbg query target/verify_store $sel --count \
    | grep -q 'match(es)' \
    || { echo "store query $sel failed" >&2; exit 1; }
done
# The streaming sink path: a store teed off a live run renders the same
# trace as the one recorded to .trc (the engine is deterministic).
./target/release/tracedbg run ring --store target/verify_store_run >/dev/null
diff <(./target/release/tracedbg view target/verify_ring.trc) \
     <(./target/release/tracedbg view target/verify_store_run) >/dev/null \
  || { echo "run --store tee diverged from the recorded trace" >&2; exit 1; }
# Corruption robustness: typed-error battery incl. the byte-flip fuzz loop.
cargo test --offline -q -p tracedbg-store --test corruption >/dev/null

echo "==> analyze smoke: static analysis renders, JSON schema keys, DPOR findings identity"
./target/release/tracedbg analyze sdl:ring --procs 4 >/dev/null
# Capture instead of piping into `grep -q`: an early-exiting reader would
# hit the writer with a broken pipe mid-print.
dot=$(./target/release/tracedbg analyze sdl:ring --procs 4 --dot)
printf '%s' "$dot" | grep -q 'digraph' \
  || { echo "analyze --dot did not emit a digraph" >&2; exit 1; }
for wl in sdl:ring sdl:racy-wildcard; do
  out=$(./target/release/tracedbg analyze "$wl" --procs 4 --json)
  for key in '"workload"' '"nprocs"' '"complete"' '"sites"' '"may_match"' \
      '"independent_rank_pairs"' '"deadlocked_ranks"'; do
    printf '%s' "$out" | grep -q "$key" \
      || { echo "analyze $wl --json is missing $key" >&2; exit 1; }
  done
done
# Sleep-set DPOR must report exactly the findings of the full search on
# the racy script workloads (same classes, same counts), at any --jobs.
for wl in sdl:racy-wildcard sdl:racy-deadlock; do
  full=$(./target/release/tracedbg explore "$wl" --procs 3 --runs 300 --seed 7 \
      --strategy systematic --jobs 1 --json --out target/verify_dpor_full || true)
  dpor=$(./target/release/tracedbg explore "$wl" --procs 3 --runs 300 --seed 7 \
      --strategy systematic --jobs 4 --dpor --json --out target/verify_dpor_on || true)
  full_classes=$(printf '%s' "$full" | grep -o '"class":"[^"]*"' | sort)
  dpor_classes=$(printf '%s' "$dpor" | grep -o '"class":"[^"]*"' | sort)
  if [ -z "$full_classes" ] || [ "$full_classes" != "$dpor_classes" ]; then
    echo "explore $wl: --dpor findings diverged from the full search" >&2
    exit 1
  fi
done

echo "==> explore smoke: the seeded races must be found and must reproduce"
rm -rf target/verify_explore
# `explore` exits non-zero when it finds violations — here that is the
# expected outcome, so success (no findings) is the failure case.
if ./target/release/tracedbg explore racy-wildcard --procs 3 --runs 48 --seed 7 \
    --out target/verify_explore >/dev/null; then
  echo "explore failed to find the seeded wildcard race" >&2; exit 1
fi
if ./target/release/tracedbg explore racy-deadlock --procs 3 --runs 48 --seed 7 \
    --strategy systematic --out target/verify_explore >/dev/null; then
  echo "explore failed to find the seeded orphan deadlock" >&2; exit 1
fi
for class in racy-wildcard-panic racy-deadlock-deadlock; do
  art=$(ls target/verify_explore/${class}-*.sched.json | head -n 1)
  ./target/release/tracedbg replay --schedule "$art" >/dev/null \
    || { echo "schedule $art did not reproduce its failure" >&2; exit 1; }
done

echo "==> parallel determinism smoke: --jobs 4 reports exactly the --jobs 1 findings"
for wl in racy-wildcard racy-deadlock; do
  seq=$(./target/release/tracedbg explore "$wl" --procs 3 --runs 48 --seed 7 \
      --jobs 1 --json --out target/verify_explore_j1 || true)
  par=$(./target/release/tracedbg explore "$wl" --procs 3 --runs 48 --seed 7 \
      --jobs 4 --json --out target/verify_explore_j4 || true)
  # Reports differ only in the resolved jobs field; findings must be
  # byte-identical.
  seq_norm=$(printf '%s' "$seq" | sed 's/"jobs":[0-9]*/"jobs":0/')
  par_norm=$(printf '%s' "$par" | sed 's/"jobs":[0-9]*/"jobs":0/')
  if [ -z "$seq" ] || [ "$seq_norm" != "$par_norm" ]; then
    echo "explore $wl: --jobs 4 diverged from --jobs 1" >&2
    exit 1
  fi
done

echo "==> localize smoke: explore -> localize -> replay-to-suspect, .trc and store-dir feeds"
rm -rf target/verify_localize && mkdir -p target/verify_localize
# The planted corpus workload: exploration must find the planted panic.
if ./target/release/tracedbg explore planted-wildcard --procs 4 --runs 48 --seed 7 \
    --out target/verify_localize >/dev/null; then
  echo "explore failed to find the planted wildcard bug" >&2; exit 1
fi
art=$(ls target/verify_localize/planted-wildcard-panic-*.sched.json | head -n 1)
# The report must be byte-identical across --jobs (it has no jobs field).
for jobs in 1 4; do
  ./target/release/tracedbg localize --schedule "$art" --jobs "$jobs" --json \
    > "target/verify_localize/report_j${jobs}.json" \
    || { echo "localize --jobs $jobs failed on $art" >&2; exit 1; }
done
cmp -s target/verify_localize/report_j1.json target/verify_localize/report_j4.json \
  || { echo "localize report diverged across --jobs" >&2; exit 1; }
grep -q '"verdict":"localized"' target/verify_localize/report_j1.json \
  || { echo "localize did not localize the planted bug" >&2; exit 1; }
# Graph-diff feeds: the recorded failing trace — as a .trc file and as an
# ingested store directory — must both yield the replay-fed report bytes.
./target/release/tracedbg replay --schedule "$art" \
  --trace target/verify_localize/fail.trc >/dev/null \
  || { echo "failing artifact did not reproduce for the trace feed" >&2; exit 1; }
./target/release/tracedbg ingest target/verify_localize/fail.trc \
  --out target/verify_localize/fail-store >/dev/null
for feed in fail.trc fail-store; do
  ./target/release/tracedbg localize --schedule "$art" \
    --trace "target/verify_localize/$feed" --json \
    > "target/verify_localize/report_${feed}.json" \
    || { echo "localize --trace $feed failed" >&2; exit 1; }
  cmp -s target/verify_localize/report_j1.json \
    "target/verify_localize/report_${feed}.json" \
    || { echo "localize --trace $feed diverged from the replay-fed report" >&2; exit 1; }
done
# Round trip: the report's divergence markers are a replayable stopline.
./target/release/tracedbg replay --schedule "$art" \
    --to-suspect target/verify_localize/report_j1.json \
  | grep -q 'stopped at the divergence frontier' \
  || { echo "replay --to-suspect did not reach the frontier" >&2; exit 1; }

echo "==> profile smoke: wait/blame report, --jobs identity, Perfetto export, frontier replay"
rm -rf target/verify_profile && mkdir -p target/verify_profile
# Profile the planted-bug artifact the localize stage produced: the
# planted rank must carry blame, and the report must be --jobs-invariant.
for jobs in 1 4; do
  ./target/release/tracedbg profile --schedule "$art" --jobs "$jobs" --json \
    > "target/verify_profile/report_j${jobs}.json" \
    || { echo "profile --jobs $jobs failed on $art" >&2; exit 1; }
done
cmp -s target/verify_profile/report_j1.json target/verify_profile/report_j4.json \
  || { echo "profile report diverged across --jobs" >&2; exit 1; }
# Schema and invariant checks on the sealed report.
jq -e '.version and .makespan >= .critical_path_len
       and .busy_total + .wait_total >= .makespan
       and (.ranks | length) == .procs
       and (.blame | length) == .procs
       and (.frontier_markers | length) == .procs
       and .digest > 0' target/verify_profile/report_j1.json >/dev/null \
  || { echo "profile report failed the schema/invariant check" >&2; exit 1; }
# The planted rank must rank in the top-2 of the blame vector.
jq -e '[.ranks[] | {rank, blamed}] | sort_by(-.blamed) | .[0:2] | map(.rank) | index(2) != null' \
    target/verify_profile/report_j1.json >/dev/null \
  || { echo "planted rank 2 is not in the top-2 of the blame ranking" >&2; exit 1; }
# A .trc trace and its ingested store directory must profile identically.
./target/release/tracedbg profile target/verify_localize/fail.trc --json \
  | sed 's/"source":"[a-z]*"/"source":"x"/; s/"workload":"[^"]*"/"workload":"x"/' \
  > target/verify_profile/from_trc.json
./target/release/tracedbg profile target/verify_localize/fail-store --json \
  | sed 's/"source":"[a-z]*"/"source":"x"/; s/"workload":"[^"]*"/"workload":"x"/' \
  > target/verify_profile/from_store.json
# The digest covers source/workload provenance, which legitimately
# differs between planes; compare with both normalized and digest dropped.
for f in from_trc from_store; do
  jq 'del(.digest)' "target/verify_profile/${f}.json" > "target/verify_profile/${f}.norm.json"
done
cmp -s target/verify_profile/from_trc.norm.json target/verify_profile/from_store.norm.json \
  || { echo "profile diverged between .trc and store-dir inputs" >&2; exit 1; }
# Perfetto export: a valid trace-event JSON with all four slice planes.
./target/release/tracedbg profile --schedule "$art" \
  --perfetto target/verify_profile/trace.perfetto.json >/dev/null
jq -e '.traceEvents | length > 0
       and ([.[] | .ph] | unique | contains(["M","X","s","f"]))
       and ([.[] | select(.cat == "critical")] | length > 0)
       and ([.[] | select(.cat == "wait")] | length > 0)' \
    target/verify_profile/trace.perfetto.json >/dev/null \
  || { echo "Perfetto export is not a well-formed trace-event JSON" >&2; exit 1; }
# Round trip: the report's frontier markers are a replayable stopline.
./target/release/tracedbg profile --schedule "$art" \
  --out target/verify_profile/report.json >/dev/null
./target/release/tracedbg replay --schedule "$art" \
    --to-critical-path target/verify_profile/report.json \
  | grep -q 'stopped at the critical-path frontier' \
  || { echo "replay --to-critical-path did not reach the frontier" >&2; exit 1; }
# stats over recorded planes: .trc and store-dir must render byte-identically.
diff <(./target/release/tracedbg stats target/verify_localize/fail.trc) \
     <(./target/release/tracedbg stats target/verify_localize/fail-store) >/dev/null \
  || { echo "stats diverged between .trc and store-dir inputs" >&2; exit 1; }

echo "==> metrics smoke: schema keys, cross-jobs digest identity, disabled-path guard"
rm -rf target/verify_metrics && mkdir -p target/verify_metrics
./target/release/tracedbg stats ring --procs 4 \
  --metrics target/verify_metrics/stats.json >/dev/null
for key in '"version"' '"source"' '"workload"' '"procs"' '"seed"' '"jobs"' \
    '"event"' '"event_digest"' '"timing"' '"engine"' '"wall_ms"'; do
  grep -q "$key" target/verify_metrics/stats.json \
    || { echo "stats metrics report is missing $key" >&2; exit 1; }
done
# Event-derived counters must be byte-identical across worker counts.
for jobs in 1 4; do
  ./target/release/tracedbg explore racy-wildcard --procs 3 --runs 48 --seed 7 \
    --jobs "$jobs" --metrics "target/verify_metrics/m${jobs}.json" \
    --out "target/verify_metrics/art${jobs}" >/dev/null || true
done
d1=$(grep -o '"event_digest":"[^"]*"' target/verify_metrics/m1.json)
d4=$(grep -o '"event_digest":"[^"]*"' target/verify_metrics/m4.json)
if [ -z "$d1" ] || [ "$d1" != "$d4" ]; then
  echo "metrics event_digest diverged across --jobs: '$d1' vs '$d4'" >&2
  exit 1
fi
# Disabled path: explore without --metrics must not write a report file.
./target/release/tracedbg explore racy-wildcard --procs 3 --runs 48 --seed 7 \
  --out target/verify_metrics/plain >/dev/null || true
if [ -e target/verify_metrics/plain/metrics.json ]; then
  echo "explore wrote metrics.json without --metrics" >&2
  exit 1
fi

echo "==> checkpoint smoke: undo twice via checkpoints matches from-scratch replay"
ckpt_undo_script() {
  ./target/release/tracedbg debug ring --procs 4 --checkpoint-every "$1" \
    -e run -e "stopline markers 10 10 10 10" -e replay \
    -e "stopline markers 6 6 6 6" -e replay \
    -e undo -e undo -e markers
}
fast=$(ckpt_undo_script 1)
slow=$(ckpt_undo_script 0)
if [ -z "$fast" ] || [ "$fast" != "$slow" ]; then
  echo "checkpointed undo transcript diverged from from-scratch replay:" >&2
  diff <(printf '%s\n' "$slow") <(printf '%s\n' "$fast") >&2 || true
  exit 1
fi
# Restore determinism on failure artifacts: snapshot mid-schedule, restore,
# and require the continued run byte-identical to the straight one.
for class in racy-wildcard-panic racy-deadlock-deadlock; do
  art=$(ls target/verify_explore/${class}-*.sched.json | head -n 1)
  ./target/release/tracedbg replay --schedule "$art" --from-checkpoint >/dev/null \
    || { echo "checkpointed replay of $art was not byte-identical" >&2; exit 1; }
done

echo "==> wide-rank smoke: 1024 ranks run, undo via checkpoints, artifact restore"
rm -rf target/verify_wide && mkdir -p target/verify_wide
# Two recordings of a 1024-rank ring must be byte-identical — determinism
# does not degrade with width on the task engine.
./target/release/tracedbg run ring --procs 1024 --trace target/verify_wide/a.trc >/dev/null
./target/release/tracedbg run ring --procs 1024 --trace target/verify_wide/b.trc >/dev/null
cmp -s target/verify_wide/a.trc target/verify_wide/b.trc \
  || { echo "1024-rank ring trace is not deterministic" >&2; exit 1; }
# The wide generators run end to end from the CLI.
./target/release/tracedbg run stencil --procs 1024 >/dev/null
./target/release/tracedbg run butterfly --procs 1024 >/dev/null
# Checkpointed undo at width matches from-scratch replay, transcript for
# transcript — the 4-rank checkpoint audit above, at 1024 ranks.
wide_undo() {
  ./target/release/tracedbg debug ring --procs 1024 --checkpoint-every "$1" \
    -e run -e "stopline t 100000000" -e replay -e undo -e markers
}
wide_fast=$(wide_undo 1)
wide_slow=$(wide_undo 0)
if [ -z "$wide_fast" ] || [ "$wide_fast" != "$wide_slow" ]; then
  echo "1024-rank checkpointed undo diverged from from-scratch replay" >&2
  exit 1
fi
# Snapshot/restore byte-identity on a 1024-rank failure artifact: inject
# faults until the ring fails, then replay the artifact --from-checkpoint.
if ./target/release/tracedbg explore ring --procs 1024 --runs 12 --seed 3 \
    --faults --strategy random --out target/verify_wide >/dev/null; then
  echo "explore --faults found nothing on the 1024-rank ring" >&2; exit 1
fi
wide_art=$(ls target/verify_wide/ring-*.sched.json | head -n 1)
./target/release/tracedbg replay --schedule "$wide_art" --from-checkpoint >/dev/null \
  || { echo "1024-rank checkpointed replay was not byte-identical" >&2; exit 1; }

echo "==> perf gate: engine + checkpoint suites vs committed baselines"
# Flag any median >25% over the committed BENCH_*.json trajectory. On a
# loaded or single-core box the microsecond-scale rows can swing past the
# threshold from scheduler noise alone, so regressions warn by default;
# set VERIFY_BENCH_STRICT=1 (quiet dedicated hardware) to make them fatal.
rm -rf target/verify_bench_gate
for suite in engine checkpoint; do
  ./target/release/tracedbg bench --filter "$suite" --out target/verify_bench_gate >/dev/null
  if ! ./scripts/bench_diff.sh "BENCH_${suite}.json" \
      "target/verify_bench_gate/BENCH_${suite}.json"; then
    if [ "${VERIFY_BENCH_STRICT:-0}" = "1" ]; then
      echo "BENCH_${suite} regressed beyond the 25% gate" >&2; exit 1
    fi
    echo "WARNING: BENCH_${suite} exceeded the 25% gate (advisory on shared hardware)" >&2
  fi
done

echo "==> bench smoke: --quick must exit 0 and emit schema-valid BENCH_*.json"
rm -rf target/verify_bench
./target/release/tracedbg bench --quick --out target/verify_bench >/dev/null
for suite in parse causality replay engine checkpoint explore explore_dpor store localize profile; do
  f=target/verify_bench/BENCH_${suite}.json
  [ -s "$f" ] || { echo "bench smoke did not write $f" >&2; exit 1; }
  # Every row carries the six-field schema the serializer unit test pins.
  for key in '"name"' '"iters"' '"median_ns"' '"p10_ns"' '"p90_ns"' '"jobs"'; do
    grep -q "$key" "$f" || { echo "$f is missing $key" >&2; exit 1; }
  done
done
# bench_diff sanity: a file diffed against itself reports no regressions,
# and a suite present in only one snapshot reports ADDED/REMOVED, exit 0.
./scripts/bench_diff.sh target/verify_bench/BENCH_parse.json \
  target/verify_bench/BENCH_parse.json >/dev/null \
  || { echo "bench_diff.sh flagged a self-diff" >&2; exit 1; }
./scripts/bench_diff.sh /dev/null target/verify_bench/BENCH_parse.json \
  | grep -q '^ADDED' \
  || { echo "bench_diff.sh mishandled a suite with no baseline" >&2; exit 1; }
./scripts/bench_diff.sh target/verify_bench/BENCH_parse.json /dev/null \
  | grep -q '^REMOVED' \
  || { echo "bench_diff.sh mishandled a removed suite" >&2; exit 1; }

echo "verify: OK"
