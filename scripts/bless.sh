#!/usr/bin/env bash
# Regenerate the golden-trace corpus (tests/golden/*.trc) from the current
# engine. Review the resulting diff before committing — a blessed drift is
# a semantic change to the runtime.
set -euo pipefail
cd "$(dirname "$0")/.."

BLESS=1 cargo test --offline --test golden "$@"
echo "golden corpus re-blessed; review: git diff tests/golden/"
