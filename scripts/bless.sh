#!/usr/bin/env bash
# Regenerate the golden corpora from the current engine:
#   tests/golden/*.trc           — canonical text traces
#   tests/golden/store/<name>    — on-disk store format (pins the v1 byte layout)
#   tests/golden/localize/*.json — localization reports on the planted corpus
#   tests/golden/profile/*.json  — profiling reports on the planted corpus
# Review the resulting diff before committing — a blessed drift is a
# semantic change to the runtime or a break of store-format compatibility.
set -euo pipefail
cd "$(dirname "$0")/.."

BLESS=1 cargo test --offline --test golden "$@"
BLESS=1 cargo test --offline --test golden_store "$@"
BLESS=1 cargo test --offline --test golden_localize "$@"
BLESS=1 cargo test --offline --test golden_profile "$@"
echo "golden corpora re-blessed; review: git diff tests/golden/"
