#!/usr/bin/env bash
# Compare two BENCH_<suite>.json files (the single-line arrays written by
# `tracedbg bench`) and flag median-time regressions.
#
#   usage: bench_diff.sh BASELINE.json CURRENT.json [THRESHOLD_PCT]
#
# Prints one line per benchmark (REGRESS / IMPROVE / ok / NEW) and exits
# non-zero iff any benchmark's median regressed by more than the threshold
# (default 25%).
set -euo pipefail

base=${1:?usage: bench_diff.sh BASELINE.json CURRENT.json [THRESHOLD_PCT]}
cur=${2:?usage: bench_diff.sh BASELINE.json CURRENT.json [THRESHOLD_PCT]}
pct=${3:-25}

[ -s "$base" ] || { echo "bench_diff: no such file $base" >&2; exit 2; }
[ -s "$cur" ] || { echo "bench_diff: no such file $cur" >&2; exit 2; }

# One "name median_ns" pair per record.
extract() {
  tr '{' '\n' <"$1" | sed -n 's/.*"name":"\([^"]*\)".*"median_ns":\([0-9]*\).*/\1 \2/p'
}

awk -v pct="$pct" -v basefile="$base" '
  NR == FNR { base[$1] = $2; next }
  {
    name = $1; now = $2
    if (!(name in base)) {
      printf "NEW      %-26s %38d ns\n", name, now
      next
    }
    was = base[name]
    delta = was > 0 ? (now - was) * 100.0 / was : 0
    flag = delta > pct ? "REGRESS" : (delta < -pct ? "IMPROVE" : "ok")
    printf "%-8s %-26s %15d -> %15d ns  (%+.1f%%)\n", flag, name, was, now, delta
    if (delta > pct) bad++
  }
  END {
    if (bad > 0) {
      printf "bench_diff: %d benchmark(s) regressed by more than %s%% vs %s\n", bad, pct, basefile
      exit 1
    }
  }
' <(extract "$base") <(extract "$cur")
