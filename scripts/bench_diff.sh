#!/usr/bin/env bash
# Compare two BENCH_<suite>.json files (the single-line arrays written by
# `tracedbg bench`) and flag median-time regressions.
#
#   usage: bench_diff.sh BASELINE.json CURRENT.json [THRESHOLD_PCT]
#
# Prints one line per benchmark (REGRESS / IMPROVE / ok / ADDED / REMOVED)
# and exits non-zero iff any benchmark's median regressed by more than the
# threshold (default 25%). A suite file that exists in only one of the two
# snapshots is not an error: every benchmark in it is reported as ADDED
# (no baseline) or REMOVED (no current), and the diff exits 0.
set -euo pipefail

base=${1:?usage: bench_diff.sh BASELINE.json CURRENT.json [THRESHOLD_PCT]}
cur=${2:?usage: bench_diff.sh BASELINE.json CURRENT.json [THRESHOLD_PCT]}
pct=${3:-25}

# One "name median_ns" pair per record.
extract() {
  tr '{' '\n' <"$1" | sed -n 's/.*"name":"\([^"]*\)".*"median_ns":\([0-9]*\).*/\1 \2/p'
}

# A suite present in only one snapshot: report, don't error.
if [ ! -s "$base" ] && [ ! -s "$cur" ]; then
  echo "bench_diff: neither $base nor $cur exists" >&2
  exit 2
elif [ ! -s "$base" ]; then
  extract "$cur" | awk '{ printf "ADDED    %-26s %38d ns  (suite not in baseline)\n", $1, $2 }'
  exit 0
elif [ ! -s "$cur" ]; then
  extract "$base" | awk '{ printf "REMOVED  %-26s %38d ns  (suite not in current)\n", $1, $2 }'
  exit 0
fi

awk -v pct="$pct" -v basefile="$base" '
  NR == FNR { base[$1] = $2; order[++n] = $1; next }
  {
    name = $1; now = $2
    if (!(name in base)) {
      printf "ADDED    %-26s %38d ns\n", name, now
      next
    }
    seen[name] = 1
    was = base[name]
    delta = was > 0 ? (now - was) * 100.0 / was : 0
    flag = delta > pct ? "REGRESS" : (delta < -pct ? "IMPROVE" : "ok")
    printf "%-8s %-26s %15d -> %15d ns  (%+.1f%%)\n", flag, name, was, now, delta
    if (delta > pct) bad++
  }
  END {
    for (i = 1; i <= n; i++)
      if (!(order[i] in seen))
        printf "REMOVED  %-26s %38d ns\n", order[i], base[order[i]]
    if (bad > 0) {
      printf "bench_diff: %d benchmark(s) regressed by more than %s%% vs %s\n", bad, pct, basefile
      exit 1
    }
  }
' <(extract "$base") <(extract "$cur")
